"""The automated root-cause driver: symptom in, ranked causes out.

Given a symptom spec and a way to run Scrub queries
(:data:`~repro.rca.runner.QueryRunner`), the driver performs the loop a
troubleshooter would:

1. **Confirm & localize** — one sliding-window query over the whole
   trace computes the symptom metric's time series; a mean-shift scan
   finds the change point and checks the anomaly is real.
2. **Dimension scan** — one tumbling-window GROUP BY query per
   candidate dimension (quantile scans add ``HAVING COUNT(*) >= k`` to
   prune meaningless groups).  Good-phase vs bad-phase populations are
   contrasted per dimension value, Fast-Dimensional-Analysis style:
   each value gets support, confidence, lift and a combined score.
3. **Drill down** — the top candidate is fixed in a WHERE clause and
   the remaining dimensions are re-scanned inside that slice; a
   two-dimension itemset survives only if it scores strictly better
   than its parent (apriori-flavoured pruning).

Scoring is intentionally simple and fully explainable:

* rate metrics ("clicks dropped", "bids surged") score by *explained
  fraction* of the total rate shift times the value's own *confidence*
  (how completely its traffic appeared/vanished);
* quantile metrics ("p95 latency up") score by *sibling-isolated*
  shift: a value's quantile shift minus the median shift of its sibling
  values, normalized by the baseline level and damped by support.  The
  isolation term is what separates a genuinely degraded exchange from
  every city appearing slower because degraded traffic mixes into all
  of them.

Cross-phase exact summaries (medians across window series) use the one
exact-percentile implementation, :func:`repro.cluster.metrics.percentile`.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Sequence

from ..cluster.metrics import percentile
from ..core.central.results import ResultSet, WindowResult
from .report import Candidate, Itemset, RootCauseReport
from .runner import QueryRunner
from .symptom import QuantileMetric, SymptomSpec

__all__ = ["RootCauseDriver"]

_EPS = 1e-9


class RootCauseDriver:
    """Drives successive Scrub queries to explain one symptom.

    ``fault_time`` may pin the change point when it is known (e.g. a
    deploy timestamp); by default the driver localizes it itself from
    the sliding confirmation series.
    """

    def __init__(
        self,
        run: QueryRunner,
        symptom: SymptomSpec,
        trace_seconds: float,
        fault_time: Optional[float] = None,
        drill_down: bool = True,
        max_candidates: int = 10,
        min_score: float = 0.02,
        min_shift_fraction: float = 0.25,
        refine_margin: float = 1.10,
    ) -> None:
        if trace_seconds <= 0:
            raise ValueError("trace_seconds must be positive")
        self._run = run
        self.symptom = symptom
        self.trace_seconds = trace_seconds
        self.fault_time = fault_time
        self.drill_down = drill_down
        self.max_candidates = max_candidates
        self.min_score = min_score
        self.min_shift_fraction = min_shift_fraction
        self.refine_margin = refine_margin

    # -- query construction -----------------------------------------------------

    def confirmation_query(self) -> str:
        sym = self.symptom
        return (
            f"SELECT {sym.metric.select_list()} FROM {sym.event_type} "
            f"START 0 DURATION {self.trace_seconds:g} "
            f"WINDOW {sym.window_seconds:g}s SLIDE {sym.slide_seconds:g}s;"
        )

    def scan_query(self, dimension: str, where: Optional[str] = None) -> str:
        sym = self.symptom
        parts = [f"SELECT {dimension}, {sym.metric.select_list()} FROM {sym.event_type}"]
        if where:
            parts.append(f"WHERE {where}")
        parts.append(f"START 0 DURATION {self.trace_seconds:g}")
        parts.append(f"WINDOW {sym.window_seconds:g}s")
        parts.append(f"GROUP BY {dimension}")
        if isinstance(sym.metric, QuantileMetric):
            # Tiny groups produce garbage quantiles; HAVING filters them
            # after aggregation, before the group reaches the driver.
            parts.append(f"HAVING COUNT(*) >= {sym.min_group_count}")
        return " ".join(parts) + ";"

    # -- main entry -------------------------------------------------------------

    def diagnose(self) -> RootCauseReport:
        sym = self.symptom
        queries = [self.confirmation_query()] + [
            self.scan_query(dim) for dim in sym.dimensions
        ]
        results = self._run(queries)
        transcript = list(queries)

        series = self._series(results[0])
        change_point, confirmed, good_metric, bad_metric = self._localize(series)
        good_span = (0.0, change_point)
        bad_span = (change_point, self.trace_seconds)
        report = RootCauseReport(
            symptom=sym,
            confirmed=confirmed,
            change_point=change_point,
            good_span=good_span,
            bad_span=bad_span,
            good_metric=good_metric,
            bad_metric=bad_metric,
            queries=transcript,
        )
        if not confirmed:
            return report

        candidates: list[Candidate] = []
        for dim, result in zip(sym.dimensions, results[1:]):
            candidates.extend(
                self._score_dimension(dim, result, change_point, good_metric)
            )
        candidates.sort(
            key=lambda c: (-c.score, -c.lift, -c.support, c.dimension, str(c.value))
        )
        report.candidates = [
            c for c in candidates if c.score >= self.min_score
        ][: self.max_candidates]

        if self.drill_down and report.candidates:
            self._drill_down(report, change_point, good_metric)
        return report

    # -- phase localization -----------------------------------------------------

    def _series(self, result: ResultSet) -> list[tuple[float, float]]:
        """(window_start, metric value) per sliding window, in order."""
        out: list[tuple[float, float]] = []
        for window in result.windows:
            # Partial head/tail windows (sliding windows overlapping the
            # trace edges) under-count and would skew the mean-shift scan.
            if window.window_start < 0 or window.window_end > self.trace_seconds:
                continue
            value = self._window_metric(window.rows[0].values if window.rows else ())
            if value is not None:
                out.append((window.window_start, value))
        return out

    def _window_metric(self, values: Sequence[Any]) -> Optional[float]:
        """Metric value from one (count[, quantile]) row tail."""
        if not values:
            return None
        if isinstance(self.symptom.metric, QuantileMetric):
            return values[1] if values[1] is not None else None
        return values[0] / self.symptom.window_seconds  # events per second

    def _localize(
        self, series: list[tuple[float, float]]
    ) -> tuple[float, bool, float, float]:
        """Change point + confirmation from the sliding metric series.

        Scans every split of the series and keeps the one maximizing the
        mean shift in the symptom's direction, snapped to the tumbling
        scan grid.  The shift must exceed ``min_shift_fraction`` of the
        baseline level to count as confirmed.

        For tail metrics (quantiles) the detected onset is conservative:
        a sliding window only partially overlapping the fault already
        reads degraded, so the change point can land up to one window
        early.  Early is the safe direction — the baseline phase stays
        uncontaminated, which is what the contrast scoring needs.
        """
        sym = self.symptom
        min_side = 2
        if self.fault_time is not None:
            cp = self.fault_time
        elif len(series) < 2 * min_side:
            cp = self.trace_seconds / 2.0
        else:
            best_shift = -math.inf
            cp = self.trace_seconds / 2.0
            for i in range(min_side, len(series) - min_side + 1):
                before = [v for _, v in series[:i]]
                after = [v for _, v in series[i:]]
                shift = _mean(after) - _mean(before)
                if sym.direction == "down":
                    shift = -shift
                if shift > best_shift:
                    best_shift = shift
                    cp = series[i][0]
        # Snap to the tumbling grid so scan windows never straddle it.
        w = sym.window_seconds
        cp = max(w, min(self.trace_seconds - w, round(cp / w) * w))

        good_values = [v for t, v in series if t + w <= cp]
        bad_values = [v for t, v in series if t >= cp]
        good_metric = percentile(good_values, 50.0) if good_values else 0.0
        bad_metric = percentile(bad_values, 50.0) if bad_values else 0.0
        shift = bad_metric - good_metric
        if sym.direction == "down":
            shift = -shift
        confirmed = bool(
            good_values
            and bad_values
            and shift > self.min_shift_fraction * max(abs(good_metric), _EPS)
        )
        return cp, confirmed, good_metric, bad_metric

    # -- dimension scoring ------------------------------------------------------

    def _collect(
        self, result: ResultSet, change_point: float
    ) -> dict[Any, dict[str, Any]]:
        """Per-value phase stats from one GROUP BY scan."""
        stats: dict[Any, dict[str, Any]] = {}
        quantile = isinstance(self.symptom.metric, QuantileMetric)
        for window in result.windows:
            phase = self._phase(window, change_point)
            if phase is None:
                continue
            for row in window.rows:
                value = row[0]
                n = row[1]
                entry = stats.setdefault(
                    value,
                    {"good_n": 0, "bad_n": 0, "good_qs": [], "bad_qs": []},
                )
                entry[f"{phase}_n"] += n
                if quantile and row[2] is not None:
                    entry[f"{phase}_qs"].append(row[2])
        return stats

    def _phase(self, window: WindowResult, change_point: float) -> Optional[str]:
        if window.window_end <= change_point:
            return "good"
        if window.window_start >= change_point:
            return "bad"
        return None  # straddles the change point; ignore

    def _score_dimension(
        self,
        dimension: str,
        result: ResultSet,
        change_point: float,
        baseline: float,
    ) -> list[Candidate]:
        stats = self._collect(result, change_point)
        if not stats:
            return []
        if isinstance(self.symptom.metric, QuantileMetric):
            return self._score_quantile(dimension, stats, baseline)
        return self._score_rate(dimension, stats, change_point)

    def _score_rate(
        self,
        dimension: str,
        stats: dict[Any, dict[str, Any]],
        change_point: float,
    ) -> list[Candidate]:
        up = self.symptom.direction == "up"
        good_len = max(change_point, _EPS)
        bad_len = max(self.trace_seconds - change_point, _EPS)
        total_good_n = sum(e["good_n"] for e in stats.values())
        total_bad_n = sum(e["bad_n"] for e in stats.values())
        total_delta = total_bad_n / bad_len - total_good_n / good_len
        if not up:
            total_delta = -total_delta
        total_delta = max(total_delta, _EPS)

        out = []
        for value, entry in stats.items():
            good_rate = entry["good_n"] / good_len
            bad_rate = entry["bad_n"] / bad_len
            delta = bad_rate - good_rate if up else good_rate - bad_rate
            if delta <= 0:
                continue
            explained = min(delta / total_delta, 1.0)
            own_rate = bad_rate if up else good_rate
            confidence = min(delta / max(own_rate, _EPS), 1.0)
            good_share = entry["good_n"] / max(total_good_n, _EPS)
            bad_share = entry["bad_n"] / max(total_bad_n, _EPS)
            support = bad_share if up else good_share
            lift = (
                (bad_share + _EPS) / (good_share + _EPS)
                if up
                else (good_share + _EPS) / (bad_share + _EPS)
            )
            # A value absent from its baseline phase has unbounded lift;
            # cap it so reports stay readable and sorts deterministic.
            lift = min(lift, 1000.0)
            out.append(
                Candidate(
                    dimension=dimension,
                    value=value,
                    score=explained * confidence,
                    support=support,
                    confidence=confidence,
                    lift=lift,
                    good_value=good_rate,
                    bad_value=bad_rate,
                )
            )
        return out

    def _score_quantile(
        self,
        dimension: str,
        stats: dict[Any, dict[str, Any]],
        baseline: float,
    ) -> list[Candidate]:
        up = self.symptom.direction == "up"
        total_bad_n = sum(e["bad_n"] for e in stats.values())

        # Per-phase level per value: exact median across its window
        # quantiles (repro.cluster.metrics.percentile — satellite of the
        # QUANTILE sketch, cross-checked in the differential tests).
        levels: dict[Any, tuple[float, float]] = {}
        for value, entry in stats.items():
            if not entry["good_qs"] or not entry["bad_qs"]:
                continue
            good_q = percentile(entry["good_qs"], 50.0)
            bad_q = percentile(entry["bad_qs"], 50.0)
            levels[value] = (good_q, bad_q)
        if not levels:
            return []
        shifts = {
            value: (bad_q - good_q if up else good_q - bad_q)
            for value, (good_q, bad_q) in levels.items()
        }
        sibling_median = percentile(list(shifts.values()), 50.0)

        out = []
        for value, (good_q, bad_q) in levels.items():
            isolation = shifts[value] - sibling_median
            if isolation <= 0:
                continue
            support = stats[value]["bad_n"] / max(total_bad_n, _EPS)
            score = isolation / max(baseline, _EPS) * math.sqrt(support)
            out.append(
                Candidate(
                    dimension=dimension,
                    value=value,
                    score=score,
                    support=support,
                    confidence=max(shifts[value], 0.0) / max(good_q, _EPS),
                    lift=bad_q / max(good_q, _EPS),
                    good_value=good_q,
                    bad_value=bad_q,
                )
            )
        return out

    # -- drill-down -------------------------------------------------------------

    def _drill_down(
        self, report: RootCauseReport, change_point: float, baseline: float
    ) -> None:
        parent = report.candidates[0]
        other_dims = [d for d in self.symptom.dimensions if d != parent.dimension]
        if not other_dims:
            return
        where = f"{parent.dimension} = {_literal(parent.value)}"
        queries = [self.scan_query(dim, where=where) for dim in other_dims]
        results = self._run(queries)
        report.queries.extend(queries)

        itemsets = []
        for dim, result in zip(other_dims, results):
            for sub in self._score_dimension(dim, result, change_point, baseline):
                # Keep a pair only when restricting to it beats the
                # single-dimension parent by a real margin.
                if sub.score > parent.score * self.refine_margin:
                    itemsets.append(
                        Itemset(
                            items=(
                                (parent.dimension, parent.value),
                                (sub.dimension, sub.value),
                            ),
                            score=sub.score,
                            support=sub.support * parent.support,
                            confidence=sub.confidence,
                        )
                    )
        itemsets.sort(key=lambda i: (-i.score, i.items[1][0], str(i.items[1][1])))
        report.itemsets = itemsets


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _literal(value: Any) -> str:
    """Render a Python value as a query-language literal."""
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
