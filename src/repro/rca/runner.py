"""Query runners: how the RCA driver reaches a Scrub deployment.

The driver only needs one capability — "run this batch of query texts
against the symptomatic workload and give me the result sets".  Against
a live deployment that is just submit + finish.  Against the simulated
cluster a *trace replay* stands in for wall-clock time: every rca_*
scenario is rebuilt from its seed, so each batch of queries observes
the identical event stream (the simulation's analogue of re-querying a
retention window).
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from ..core.central.results import ResultSet

__all__ = ["QueryRunner", "ScenarioRunner"]

#: The driver's view of a deployment: query texts in, result sets out
#: (index-aligned with the input).
QueryRunner = Callable[[Sequence[str]], List[ResultSet]]


class ScenarioRunner:
    """Replays a seeded scenario factory once per batch of queries.

    *scenario_factory* must return a fresh ``Scenario`` each call (all
    the ``rca_*`` builders do); determinism of the builders guarantees
    each replay carries the same events, so successive query rounds are
    mutually consistent.
    """

    def __init__(
        self,
        scenario_factory: Callable[[], "object"],
        trace_seconds: float,
        settle_seconds: float = 10.0,
    ) -> None:
        if trace_seconds <= 0:
            raise ValueError("trace_seconds must be positive")
        self.scenario_factory = scenario_factory
        self.trace_seconds = trace_seconds
        self.settle_seconds = settle_seconds
        self.replays = 0

    def __call__(self, queries: Sequence[str]) -> List[ResultSet]:
        scenario = self.scenario_factory()
        cluster = scenario.cluster
        handles = [cluster.submit(text) for text in queries]
        scenario.start(until=self.trace_seconds)
        cluster.run_until(self.trace_seconds + self.settle_seconds)
        self.replays += 1
        return [cluster.finish(handle.query_id) for handle in handles]
