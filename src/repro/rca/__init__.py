"""repro.rca: automated root-cause analysis over the Scrub query language.

Turns a symptom ("clicks dropped", "bid latency p99 up") into a ranked
:class:`~repro.rca.report.RootCauseReport` by issuing successive Scrub
queries — sliding-window confirmation, per-dimension group-by contrast
of the good vs bad phases, and an itemset drill-down — against either a
live deployment or a replayable simulated scenario.
"""

from .driver import RootCauseDriver
from .report import Candidate, Itemset, RootCauseReport
from .runner import QueryRunner, ScenarioRunner
from .symptom import (
    DEFAULT_DIMENSIONS,
    CountMetric,
    Metric,
    QuantileMetric,
    SymptomSpec,
    symptom_from_extras,
)

__all__ = [
    "Candidate",
    "CountMetric",
    "DEFAULT_DIMENSIONS",
    "Itemset",
    "Metric",
    "QuantileMetric",
    "QueryRunner",
    "RootCauseDriver",
    "RootCauseReport",
    "ScenarioRunner",
    "SymptomSpec",
    "symptom_from_extras",
]
