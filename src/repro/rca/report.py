"""Root-cause reports: ranked candidates with the evidence behind them.

A report is the driver's only output.  Every number a candidate carries
is explainable back to the Scrub query results that produced it, and
``queries`` keeps the full transcript of what the driver asked — the
troubleshooter can re-run any of it by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from .symptom import SymptomSpec

__all__ = ["Candidate", "Itemset", "RootCauseReport"]


@dataclass(frozen=True)
class Candidate:
    """One (dimension, value) explanation for the symptom.

    * ``support`` — the anomalous population's share carrying this
      value (for "down" symptoms: the baseline population's share,
      since the anomaly is an absence);
    * ``confidence`` — how completely this value's own metric moved
      (1.0 = its traffic is entirely new / entirely gone / its quantile
      fully degraded);
    * ``lift`` — this value's prevalence or level in the bad phase
      relative to its baseline;
    * ``score`` — the ranking key combining the above (see driver).
    """

    dimension: str
    value: Any
    score: float
    support: float
    confidence: float
    lift: float
    good_value: float
    bad_value: float

    def describe(self) -> str:
        return (
            f"{self.dimension}={self.value!r}: score={self.score:.3f} "
            f"support={self.support:.2f} confidence={self.confidence:.2f} "
            f"lift={self.lift:.2f} "
            f"(good={self.good_value:.3f} bad={self.bad_value:.3f})"
        )


@dataclass(frozen=True)
class Itemset:
    """A conjunction of (dimension, value) pairs from the drill-down
    round, kept only when it explains the symptom strictly better than
    its single-dimension parent (FDA-style pruning)."""

    items: tuple[tuple[str, Any], ...]
    score: float
    support: float
    confidence: float

    def describe(self) -> str:
        conj = " AND ".join(f"{d}={v!r}" for d, v in self.items)
        return (
            f"{conj}: score={self.score:.3f} "
            f"support={self.support:.2f} confidence={self.confidence:.2f}"
        )


@dataclass
class RootCauseReport:
    """Ranked explanation of one symptom."""

    symptom: SymptomSpec
    confirmed: bool
    change_point: Optional[float]
    good_span: tuple[float, float]
    bad_span: tuple[float, float]
    good_metric: float
    bad_metric: float
    candidates: list[Candidate] = field(default_factory=list)
    itemsets: list[Itemset] = field(default_factory=list)
    queries: list[str] = field(default_factory=list)

    def top(self, k: int = 3) -> list[Candidate]:
        return self.candidates[:k]

    def rank_of(self, dimension: str, value: Any) -> Optional[int]:
        """1-based rank of a (dimension, value) candidate, or None."""
        for i, cand in enumerate(self.candidates, start=1):
            if cand.dimension == dimension and cand.value == value:
                return i
        return None

    def best_rank(self, truth: Iterable[tuple[str, Any]]) -> Optional[int]:
        """Best rank across a set of acceptable answers (the scenario's
        ``extras["truth"]`` contract), or None if none was ranked."""
        ranks = [
            r for d, v in truth if (r := self.rank_of(d, v)) is not None
        ]
        return min(ranks) if ranks else None

    def render(self, max_candidates: int = 5) -> str:
        """Human-readable transcript-style summary."""
        lines = [f"symptom: {self.symptom.describe()}"]
        if not self.confirmed:
            lines.append("NOT CONFIRMED: no significant shift between phases")
        else:
            lines.append(
                f"confirmed: metric {self.good_metric:.3f} -> {self.bad_metric:.3f} "
                f"around t={self.change_point:g}s "
                f"(good {self.good_span[0]:g}..{self.good_span[1]:g}s, "
                f"bad {self.bad_span[0]:g}..{self.bad_span[1]:g}s)"
            )
        if self.candidates:
            lines.append("ranked causes:")
            for i, cand in enumerate(self.candidates[:max_candidates], start=1):
                lines.append(f"  {i}. {cand.describe()}")
        elif self.confirmed:
            lines.append("no dimension value explains the shift")
        if self.itemsets:
            lines.append("refined itemsets:")
            for itemset in self.itemsets:
                lines.append(f"  - {itemset.describe()}")
        lines.append(f"queries issued: {len(self.queries)}")
        return "\n".join(lines)
