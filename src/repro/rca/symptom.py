"""Symptom specifications: what "looks wrong", stated queryably.

A :class:`SymptomSpec` names an event stream, a metric over it (event
rate or a latency quantile), the direction of the anomaly, and the
candidate dimensions to investigate.  The RCA driver turns the spec
into Scrub queries; nothing here touches the cluster.

The Facebook/LinkedIn fast-dimensional-analysis line of work frames
root-causing as *population contrast*: a baseline (good) period against
an anomalous (bad) period, scored per dimension value.  The spec is the
contract between the fault library (``repro.adplatform.workload``
``rca_*`` scenarios) and the driver: scenario ``extras["symptom"]``
round-trips through :func:`symptom_from_extras`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Union

__all__ = [
    "CountMetric",
    "QuantileMetric",
    "Metric",
    "SymptomSpec",
    "symptom_from_extras",
    "DEFAULT_DIMENSIONS",
]

#: Candidate dimensions per event type — the fields worth grouping by
#: when no explicit list is given.  All are BID/CLICK payload fields.
DEFAULT_DIMENSIONS: dict[str, tuple[str, ...]] = {
    "bid": (
        "exchange_id",
        "city",
        "country",
        "campaign_id",
        "line_item_id",
        "publisher_id",
    ),
    "click": ("campaign_id", "line_item_id", "exchange_id", "user_id"),
    "impression": ("campaign_id", "line_item_id", "exchange_id", "publisher_id"),
}


@dataclass(frozen=True)
class CountMetric:
    """The metric is the event rate (COUNT(*) per second)."""

    def select_list(self) -> str:
        return "COUNT(*) AS n"

    def describe(self) -> str:
        return "event rate"


@dataclass(frozen=True)
class QuantileMetric:
    """The metric is a quantile of a numeric event field.

    Each scan query carries both COUNT(*) (for support) and
    QUANTILE(field, q) (the metric itself, computed by the mergeable
    sketch so shard-pool runs agree bit-for-bit with serial ones).
    """

    field: str
    q: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.q <= 1.0:
            raise ValueError(f"quantile q must be in [0, 1], got {self.q}")

    def select_list(self) -> str:
        return f"COUNT(*) AS n, QUANTILE({self.field}, {self.q:g}) AS m"

    def describe(self) -> str:
        return f"p{self.q * 100:g}({self.field})"


Metric = Union[CountMetric, QuantileMetric]


@dataclass(frozen=True)
class SymptomSpec:
    """One observed anomaly, ready to be investigated.

    ``direction`` is the direction of the *anomaly*: ``"up"`` (the
    metric surged) or ``"down"`` (it collapsed).  ``window_seconds`` is
    the tumbling scan granularity; ``slide_seconds`` the sliding step of
    the confirmation/localization query.  ``min_group_count`` feeds the
    HAVING clause that prunes statistically meaningless groups from
    quantile scans.
    """

    name: str
    event_type: str
    metric: Metric = field(default_factory=CountMetric)
    direction: str = "up"
    dimensions: tuple[str, ...] = ()
    window_seconds: float = 30.0
    slide_seconds: float = 10.0
    min_group_count: int = 5

    def __post_init__(self) -> None:
        if self.direction not in ("up", "down"):
            raise ValueError(f"direction must be 'up' or 'down', got {self.direction!r}")
        if self.window_seconds <= 0 or self.slide_seconds <= 0:
            raise ValueError("window and slide must be positive")
        if self.slide_seconds > self.window_seconds:
            raise ValueError("slide must not exceed the window")
        if not self.dimensions:
            dims = DEFAULT_DIMENSIONS.get(self.event_type)
            if dims is None:
                raise ValueError(
                    f"no default dimensions for event type {self.event_type!r}; "
                    "pass dimensions= explicitly"
                )
            object.__setattr__(self, "dimensions", dims)

    def describe(self) -> str:
        arrow = "surged" if self.direction == "up" else "dropped"
        return f"{self.metric.describe()} of '{self.event_type}' {arrow}"


def symptom_from_extras(
    extras: Mapping[str, Any], name: str = "symptom", **overrides: Any
) -> SymptomSpec:
    """Build a spec from an rca_* scenario's ``extras["symptom"]`` hint,
    a plain ``(event_type, metric, direction)`` tuple where *metric* is
    ``"count"`` or ``("quantile", field, q)``."""
    event_type, metric_hint, direction = extras["symptom"]
    metric: Metric
    if metric_hint == "count":
        metric = CountMetric()
    else:
        kind, fieldname, q = metric_hint
        if kind != "quantile":
            raise ValueError(f"unknown metric hint {metric_hint!r}")
        metric = QuantileMetric(fieldname, q)
    return SymptomSpec(
        name=name,
        event_type=event_type,
        metric=metric,
        direction=direction,
        **overrides,
    )
