"""Operator tooling: the interactive Scrub shell."""

from .shell import SCENARIOS, ScrubShell, main

__all__ = ["SCENARIOS", "ScrubShell", "main"]
