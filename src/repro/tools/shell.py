"""An interactive Scrub shell over a live simulated platform.

Runs one of the ad-platform workload scenarios on the simulated cluster
and gives the troubleshooter a REPL: type a Scrub query, the simulation
advances through the query's span, and the windows print as they would
arrive.  This is the closest experience to the production tool the
paper describes — queries against a system that is serving traffic
*right now*.

Usage::

    python -m repro.tools.shell                # spam scenario, interactive
    python -m repro.tools.shell --scenario exclusions
    echo 'select COUNT(*) from bid duration 30s;' | python -m repro.tools.shell

Shell commands (anything else is parsed as a Scrub query):

    \\events            list event types and their fields
    \\hosts             list hosts, services, datacenters
    \\fleet             (live mode) membership with last-seen age, epoch,
                       armed-query costs and quarantine counts
    \\queries           list running queries
    \\rates             (live mode) closed-loop sampling controllers:
                       applied rates, rate version, achieved vs target CI
    \\pool              (live mode) shard-pool health: transport, respawns,
                       per-worker ring depth/high-water/spills
    \\run <seconds>     advance virtual time without a query
    \\csv               print the last result set as CSV
    \\json              print the last result set as JSON
    \\help              this text
    \\quit              exit

With ``--connect HOST:PORT`` the shell attaches to a running ``scrubd``
daemon (see ``repro.live``) instead of a simulation: queries run against
the live agents registered there, in wall-clock time.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Optional, TextIO

from ..adplatform import (
    Scenario,
    ab_test_scenario,
    cannibalization_scenario,
    exclusion_scenario,
    frequency_cap_scenario,
    new_exchange_scenario,
    spam_scenario,
)
from ..core.central.results import ResultSet
from ..core.query.errors import ScrubError

__all__ = ["LiveShell", "ScrubShell", "SCENARIOS", "main"]

SCENARIOS: dict[str, Callable[[], Scenario]] = {
    "spam": lambda: spam_scenario(users=300, pageview_rate=10.0),
    "new-exchange": lambda: new_exchange_scenario(activation_time=60.0),
    "ab-test": lambda: ab_test_scenario(),
    "exclusions": lambda: exclusion_scenario(),
    "cannibalization": lambda: cannibalization_scenario(),
    "frequency-cap": lambda: frequency_cap_scenario(),
}

#: Traffic keeps flowing this long; queries outliving it see silence.
TRAFFIC_HORIZON = 3600.0


class ScrubShell:
    """Line-oriented front end over a running scenario."""

    def __init__(
        self,
        scenario: Scenario,
        out: TextIO = sys.stdout,
    ) -> None:
        self.scenario = scenario
        self.cluster = scenario.cluster
        self.out = out
        self.last_results: Optional[ResultSet] = None
        scenario.start(until=TRAFFIC_HORIZON)
        # Let the platform warm up so first queries see steady traffic.
        self.cluster.run_for(2.0)

    # -- output ---------------------------------------------------------------

    def _print(self, text: str = "") -> None:
        print(text, file=self.out)

    # -- command dispatch ----------------------------------------------------------

    def handle(self, line: str) -> bool:
        """Process one input line; returns False when the shell should exit."""
        line = line.strip()
        if not line or line.startswith("--"):
            return True
        if line.startswith("\\"):
            return self._command(line)
        self._query(line)
        return True

    def _command(self, line: str) -> bool:
        parts = line.split()
        cmd, args = parts[0], parts[1:]
        if cmd in ("\\quit", "\\q", "\\exit"):
            return False
        if cmd == "\\help":
            self._print(__doc__ or "")
        elif cmd == "\\events":
            for schema in self.cluster.registry:
                fields = ", ".join(
                    f"{f.name}:{f.ftype.value}" for f in schema
                )
                self._print(f"  {schema.name}({fields})")
        elif cmd == "\\hosts":
            for host in self.cluster.hosts():
                services = ",".join(sorted(host.services)) or "-"
                self._print(
                    f"  {host.name:28s} {host.datacenter:8s} {services}"
                )
        elif cmd == "\\queries":
            running = self.cluster.server.running_query_ids
            self._print(f"  {len(running)} running: {list(running)}")
        elif cmd == "\\run":
            seconds = float(args[0]) if args else 10.0
            self.cluster.run_for(seconds)
            self._print(f"  t = {self.cluster.now:.1f}s")
        elif cmd == "\\csv":
            if self.last_results is None:
                self._print("  no results yet")
            else:
                self._print(self.last_results.to_csv().rstrip())
        elif cmd == "\\json":
            if self.last_results is None:
                self._print("  no results yet")
            else:
                self._print(self.last_results.to_json(indent=2))
        else:
            self._print(f"  unknown command {cmd}; \\help lists commands")
        return True

    def _query(self, text: str) -> None:
        try:
            handle = self.cluster.submit(text)
        except ScrubError as exc:
            self._print(f"  error: {exc}")
            return
        span = handle.expires_at - handle.activates_at
        self._print(
            f"  {handle.query_id}: installed on "
            f"{len(handle.targeted_hosts)} host(s), span {span:g}s — running..."
        )
        margin = self.cluster.server.drain_margin + 2.0
        self.cluster.run_until(handle.expires_at + margin)
        results = self.cluster.server.finish(handle.query_id)
        self.last_results = results
        self._print(results.pretty())
        if results.total_host_dropped:
            self._print(f"  ! {results.total_host_dropped} events dropped on hosts")
        for window in results.windows:
            for name, est in window.estimates.items():
                self._print(
                    f"  ~ [{window.window_start:g},{window.window_end:g}) "
                    f"{name} = {est}"
                )

    # -- loop ------------------------------------------------------------------------

    def run(self, source: TextIO = sys.stdin, prompt: bool = True) -> None:
        interactive = prompt and source.isatty()
        while True:
            if interactive:
                self.out.write(f"scrub[t={self.cluster.now:.0f}s]> ")
                self.out.flush()
            line = source.readline()
            if not line:
                break
            if not self.handle(line):
                break


class LiveShell:
    """The same REPL against a running ``scrubd`` daemon (wall-clock)."""

    def __init__(self, address: tuple[str, int], out: TextIO = sys.stdout) -> None:
        from ..live.client import ControlClient

        self.address = address
        self.client = ControlClient(address)
        self.out = out
        self.last_results: Optional[ResultSet] = None
        #: Seconds past a query's span end before collecting (covers the
        #: daemon's window grace and in-flight host flushes).
        self.collect_margin = 3.0

    def _print(self, text: str = "") -> None:
        print(text, file=self.out)

    def handle(self, line: str) -> bool:
        line = line.strip()
        if not line or line.startswith("--"):
            return True
        if line.startswith("\\"):
            return self._command(line)
        self._query(line)
        return True

    def _command(self, line: str) -> bool:
        cmd = line.split()[0]
        if cmd in ("\\quit", "\\q", "\\exit"):
            return False
        if cmd == "\\help":
            self._print(__doc__ or "")
        elif cmd == "\\hosts":
            for host in self._stats().get("hosts", []):
                services = ",".join(host["services"]) or "-"
                self._print(
                    f"  {host['host']:28s} {host['datacenter']:8s} {services}"
                )
        elif cmd == "\\fleet":
            self._fleet()
        elif cmd == "\\rates":
            self._rates()
        elif cmd == "\\pool":
            self._pool()
        elif cmd == "\\queries":
            stats = self._stats()
            self._print(
                f"  running: {stats.get('running', [])}  "
                f"finished: {stats.get('finished', [])}"
            )
            rollouts = stats.get("rollouts", {})
            for query_id, ro in sorted(rollouts.items()):
                line = (
                    f"    {query_id}: rollout {ro['state']} stage {ro['stage']}, "
                    f"{len(ro['installed'])}/{len(ro['order'])} host(s)"
                )
                if ro.get("abort"):
                    abort = ro["abort"]
                    line += (
                        f" — aborted: {abort['reason']} on {abort['host']}"
                    )
                self._print(line)
        elif cmd == "\\csv":
            self._print(
                self.last_results.to_csv().rstrip()
                if self.last_results is not None
                else "  no results yet"
            )
        elif cmd == "\\json":
            self._print(
                self.last_results.to_json(indent=2)
                if self.last_results is not None
                else "  no results yet"
            )
        else:
            self._print(f"  unknown command {cmd}; \\help lists commands")
        return True

    def _stats(self) -> dict:
        return self.client.stats()

    def _fleet(self) -> None:
        """The ``\\fleet`` command: full membership (live, disconnected,
        stale) with last-seen age, epoch, armed-query load and how often
        each host's governor has quarantined a query."""
        stats = self._stats()
        quarantines = stats.get("quarantines", {})
        quarantine_counts: dict[str, int] = {}
        for hosts in quarantines.values():
            for host in hosts:
                quarantine_counts[host] = quarantine_counts.get(host, 0) + 1
        members = stats.get("fleet", [])
        if not members:
            self._print("  fleet is empty (no host has ever registered)")
            return
        self._print(
            f"  {'host':20s} {'state':12s} {'seen':>7s} {'epoch':>20s} "
            f"{'armed':>5s} {'ewma_ns':>9s} {'quar':>4s}"
        )
        for member in members:
            costs = member.get("query_costs", {})
            ewmas = [
                c["ewma_ns"]
                for c in costs.values()
                if isinstance(c, dict) and "ewma_ns" in c
            ]
            peak = f"{max(ewmas):.0f}" if ewmas else "-"
            self._print(
                f"  {member['host']:20s} {member['state']:12s} "
                f"{member['last_seen_age']:6.1f}s {member['epoch']:>20d} "
                f"{len(costs):>5d} {peak:>9s} "
                f"{quarantine_counts.get(member['host'], 0):>4d}"
            )

    def _rates(self) -> None:
        """The ``\\rates`` command: closed-loop sampling controllers —
        applied rates, rate version, achieved vs target CI, and the
        degradation state (docs/SCALING.md §6)."""
        controllers = self._stats().get("controllers", {})
        if not controllers:
            self._print("  no TARGET CI queries running")
            return
        self._print(
            f"  {'query':8s} {'state':12s} {'ver':>4s} {'hosts':>9s} "
            f"{'ev rate':>8s} {'target':>7s} {'achieved':>9s}  note"
        )
        for query_id, ctl in sorted(controllers.items()):
            achieved = ctl.get("achieved_relative_error")
            note = ""
            if ctl.get("frozen_reason"):
                note = f"frozen: {ctl['frozen_reason']}"
            elif ctl.get("rate_limited"):
                limited = ctl["rate_limited"]
                note = (
                    f"{limited['reason']}: achievable "
                    f"{limited['achievable_relative_error']:.1%}"
                )
            hosts = f"{ctl['host_count']}/{ctl['total_hosts']}"
            measured = f"{achieved:.1%}" if achieved is not None else "-"
            self._print(
                f"  {query_id:8s} {ctl['state']:12s} {ctl['version']:>4d} "
                f"{hosts:>9s} {ctl['event_rate']:>8.4f} "
                f"{ctl['target_relative_error']:>6.1%} {measured:>9s}  {note}"
            )

    def _pool(self) -> None:
        """The ``\\pool`` command: shard-pool health and ring transport —
        per-worker ring depth, high-water, spills, and descriptor counts
        (docs/SCALING.md §"Shared-memory ring ingest")."""
        pool = self._stats().get("pool")
        if not pool:
            self._print("  central runs serial (scrubd started without --workers)")
            return
        self._print(
            f"  transport {pool.get('transport', 'pipe')}: "
            f"{pool['alive']}/{pool['workers']} worker(s) alive, "
            f"{pool['respawns']} respawn(s), "
            f"{pool.get('ring_spills', 0)} ring spill(s), "
            f"{pool.get('ring_bytes_in_place', 0)} byte(s) shipped in place"
        )
        rings = pool.get("rings", [])
        if not rings:
            return
        self._print(
            f"  {'shard':>5s} {'gen':>4s} {'mode':>4s} {'depth':>9s} "
            f"{'high':>9s} {'cap':>9s} {'descs':>8s} {'spills':>7s}"
        )
        for ring in rings:
            self._print(
                f"  {ring['shard']:>5d} {ring['generation']:>4d} "
                f"{ring['transport']:>4s} {ring['depth']:>9d} "
                f"{ring['high_water']:>9d} {ring['capacity']:>9d} "
                f"{ring['descriptors']:>8d} {ring['spills']:>7d}"
            )

    def _query(self, text: str) -> None:
        try:
            handle = self.client.submit(text)
        except (ScrubError, ConnectionError, OSError) as exc:
            self._print(f"  error: {exc}")
            return
        span = handle["expires_at"] - handle["activates_at"]
        self._print(
            f"  {handle['query_id']}: installed on "
            f"{len(handle['targeted_hosts'])} host(s), span {span:g}s — running..."
        )
        time.sleep(max(0.0, handle["expires_at"] - time.time()) + self.collect_margin)
        results = self.client.finish(handle["query_id"])
        self.last_results = results
        self._print(results.pretty())
        if results.total_host_dropped:
            self._print(f"  ! {results.total_host_dropped} events dropped on hosts")

    def run(self, source: TextIO = sys.stdin, prompt: bool = True) -> None:
        interactive = prompt and source.isatty()
        while True:
            if interactive:
                self.out.write("scrub[live]> ")
                self.out.flush()
            line = source.readline()
            if not line:
                break
            if not self.handle(line):
                break


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Interactive Scrub shell over a simulated bidding platform "
        "or a live scrubd daemon."
    )
    parser.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default="spam",
        help="workload to run underneath the shell",
    )
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="attach to a running scrubd instead of simulating a cluster",
    )
    args = parser.parse_args(argv)

    if args.connect:
        from ..live.client import parse_address

        address = parse_address(args.connect)
        print(f"connected to scrubd at {address[0]}:{address[1]}; \\help for commands")
        LiveShell(address).run()
        return 0

    scenario = SCENARIOS[args.scenario]()
    print(f"scenario: {scenario.description}")
    print(f"hosts: {len(scenario.cluster.hosts())}; \\help for commands")
    shell = ScrubShell(scenario)
    shell.run()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
