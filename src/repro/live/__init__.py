"""repro.live — the real-deployment mode of the Scrub reproduction.

Everything in-process and simulated elsewhere in the tree becomes a
multi-process system here:

* :mod:`repro.live.protocol` — the length-prefixed binary wire protocol
  shared by every live component (agent data, agent control, query
  control), layered on the compact event encoding.
* :mod:`repro.live.transport` — :class:`SocketTransport`, a drop-not-block
  implementation of the two-method ``Transport`` protocol that ships
  batches to a ``scrubd`` daemon over TCP.
* :mod:`repro.live.server` — ``scrubd``, the standalone asyncio
  ScrubCentral daemon (shard workers, real-clock window ticks, query
  control channel).
* :mod:`repro.live.client` — :class:`LiveAgent` (embeds a ``ScrubAgent``
  in an application process) and :class:`ControlClient` (submit/poll/
  finish queries against a running ``scrubd``), plus the ``scrub-submit``
  entrypoint.
* :mod:`repro.live.journal` — :class:`QueryJournal`, the append-only
  control-plane journal behind ``scrubd --journal`` crash recovery.
* :mod:`repro.live.chaos` — :class:`ChaosProxy`, a frame-aware fault
  injection proxy for the integration tests (test-only).

See ``docs/LIVE_MODE.md`` for the two-terminal quickstart and the
failure-semantics table.
"""

from .chaos import ChaosProxy, FaultPlan
from .client import ControlClient, LiveAgent
from .journal import QueryJournal
from .server import ScrubDaemon
from .transport import SocketTransport

__all__ = [
    "ChaosProxy",
    "ControlClient",
    "FaultPlan",
    "LiveAgent",
    "QueryJournal",
    "ScrubDaemon",
    "SocketTransport",
]
