"""Live-mode clients: embed an agent in an application, or drive queries.

:class:`LiveAgent` is what an application process creates: a real
``ScrubAgent`` (same hot path, same drop-not-block buffer) whose
batches ship over a :class:`SocketTransport`, plus a control channel on
which ``scrubd`` pushes query installs.  Install pushes carry the query
*text*; the agent re-plans it locally against its own registry — the
planner is deterministic in (text, query id), so every process derives
identical host query objects and sampling decisions without shipping
compiled objects across the wire.

:class:`ControlClient` is the troubleshooter side: submit a query to a
running ``scrubd``, poll or finish it, read daemon stats.  The
``scrub-submit`` console entrypoint wraps it.
"""

from __future__ import annotations

import argparse
import socket
import sys
import threading
import time
from typing import Any, Callable, Iterable, Mapping, Optional

from ..core.agent.agent import ScrubAgent
from ..core.agent.governor import ImpactBudget
from ..core.central.results import ResultSet
from ..core.events import EventRegistry, EventSchema
from ..core.query.errors import ScrubError
from ..core.query.parser import parse_query
from ..core.query.planner import plan_query
from ..core.query.validator import validate_query
from .protocol import (
    MsgType,
    ProtocolError,
    decode_message,
    encode_message_frame,
    recv_frame,
    resultset_from_payload,
    schema_to_payload,
)
from .transport import JitteredBackoff, SocketTransport

__all__ = ["ControlClient", "LiveAgent", "main"]


class LiveAgentError(ScrubError):
    """A live agent could not register with or talk to scrubd."""

    def __init__(self, message: str, reason: Optional[str] = None) -> None:
        super().__init__(message)
        #: The daemon's structured error code (e.g. ``"duplicate-host"``),
        #: when the failure came from an ERROR frame.
        self.reason = reason


#: Rejection reasons that re-registering with the same hello cannot cure:
#: redialing would hammer the daemon with doomed registrations forever.
#: (``duplicate-host`` is handled separately — it means another live
#: session owns the name, which is a stand-down, not an error.)
_PERMANENT_REJECTIONS = frozenset({"schema-conflict"})


class LiveAgent:
    """A Scrub host agent connected to a remote ``scrubd``.

    Usage::

        live = LiveAgent(("127.0.0.1", 7421), "web-7", services=["Frontends"])
        live.define_event("pv", [("url", "string"), ("latency_ms", "double")])
        live.start()
        ...
        live.log("pv", url="/", latency_ms=12.5, request_id=rid)
    """

    def __init__(
        self,
        address: tuple[str, int],
        host: str,
        services: Iterable[str] = (),
        datacenter: str = "dc1",
        registry: Optional[EventRegistry] = None,
        clock: Callable[[], float] = time.time,
        buffer_capacity: int = 10_000,
        flush_batch_size: int = 500,
        outbox_capacity: int = 256,
        connect_timeout: float = 5.0,
        heartbeat_interval: float = 1.0,
        reconnect: bool = True,
        reconnect_backoff_base: float = 0.1,
        reconnect_backoff_cap: float = 2.0,
        impact_budget: Optional[ImpactBudget] = None,
    ) -> None:
        self.address = address
        self.host = host
        self.services = tuple(services)
        self.datacenter = datacenter
        self.registry = registry if registry is not None else EventRegistry()
        self._connect_timeout = connect_timeout
        self._heartbeat_interval = heartbeat_interval
        self._reconnect = reconnect
        self._backoff_base = reconnect_backoff_base
        self._backoff_cap = reconnect_backoff_cap
        self._backoff = JitteredBackoff(
            host, reconnect_backoff_base, reconnect_backoff_cap, salt="control"
        )
        self.transport = SocketTransport(
            address, host, outbox_capacity=outbox_capacity
        )
        self.agent = ScrubAgent(
            host=host,
            registry=self.registry,
            transport=self.transport,
            clock=clock,
            buffer_capacity=buffer_capacity,
            flush_batch_size=flush_batch_size,
            impact_budget=impact_budget,
        )
        self._control: Optional[socket.socket] = None
        self._reader: Optional[threading.Thread] = None
        self._heartbeater: Optional[threading.Thread] = None
        self._started = False
        self._closed = threading.Event()
        #: Session epoch: strictly increasing across (re)connections, so a
        #: restarted agent always supersedes its own stale registration.
        self.epoch = 0
        #: Another session of this host took the name over; stop redialing.
        self._superseded = False
        #: Set when redialing stopped for good on a permanent rejection
        #: (e.g. ``schema-conflict``): the error the application should
        #: see instead of a silent retry loop.  ``None`` while healthy.
        self.fatal_error: Optional[LiveAgentError] = None
        #: Control-channel re-registrations after the initial start().
        self.control_reconnects = 0
        self.heartbeats_sent = 0
        #: Effective installs: INSTALL pushes that actually armed a new
        #: query here (reconnect replays of an already-running query are
        #: deduplicated and not counted) — what rollout conservation
        #: tests assert on.
        self.installs_applied = 0

    # -- setup -------------------------------------------------------------------

    def define_event(self, name: str, fields: Any, doc: str = "") -> EventSchema:
        """Declare an event type; must happen before :meth:`start` so the
        schema rides along in the registration hello."""
        if self._started:
            raise LiveAgentError(
                "define events before start(); scrubd learns schemas from the hello"
            )
        return self.registry.define(name, fields, doc=doc)

    def start(self) -> None:
        """Register with scrubd and begin serving install pushes.

        The first registration is synchronous so callers see a rejection
        (duplicate host, schema conflict) immediately; afterwards a
        background thread serves pushes, renews the liveness lease with
        periodic heartbeats, and — unless ``reconnect=False`` — redials
        and re-registers whenever the control channel dies, at which
        point scrubd replays the installs this host should be running.
        A permanent rejection while redialing (e.g. ``schema-conflict``)
        ends the retry loop and is surfaced in :attr:`fatal_error`.
        """
        if self._started:
            return
        self._control = self._connect_control()
        self._started = True
        self._reader = threading.Thread(
            target=self._control_loop, name=f"scrub-control-{self.host}", daemon=True
        )
        self._reader.start()
        self._heartbeater = threading.Thread(
            target=self._heartbeat_loop,
            name=f"scrub-heartbeat-{self.host}",
            daemon=True,
        )
        self._heartbeater.start()

    def _connect_control(self) -> socket.socket:
        """Dial scrubd and register; returns the live control socket.
        Raises :class:`LiveAgentError` (with the daemon's error code in
        ``.reason``) on rejection."""
        epoch = time.time_ns()
        sock = socket.create_connection(self.address, timeout=self._connect_timeout)
        try:
            sock.sendall(
                encode_message_frame(
                    MsgType.AGENT_HELLO,
                    {
                        "host": self.host,
                        "epoch": epoch,
                        "services": list(self.services),
                        "datacenter": self.datacenter,
                        "schemas": [schema_to_payload(s) for s in self.registry],
                    },
                )
            )
            frame = recv_frame(sock)
            if frame is None:
                raise LiveAgentError("scrubd closed the connection during hello")
            msg_type, payload = frame
            if msg_type == MsgType.ERROR:
                message = decode_message(payload)
                raise LiveAgentError(
                    f"scrubd rejected agent {self.host!r}: {message.get('message')}",
                    reason=message.get("error"),
                )
            if msg_type != MsgType.HELLO_OK:
                raise LiveAgentError(f"unexpected {msg_type.name} during hello")
        except BaseException:
            try:
                sock.close()
            except OSError:
                pass
            raise
        sock.settimeout(None)
        self.epoch = epoch
        return sock

    # -- application-facing API -----------------------------------------------------

    def log(
        self,
        event_type: str,
        payload: Optional[Mapping[str, Any]] = None,
        *,
        request_id: int,
        timestamp: Optional[float] = None,
        **fields: Any,
    ) -> int:
        return self.agent.log(
            event_type, payload, request_id=request_id, timestamp=timestamp, **fields
        )

    def flush(self, now: Optional[float] = None) -> int:
        return self.agent.flush(now)

    def drain(self, timeout: float = 10.0) -> bool:
        """Flush and wait until scrubd has ingested everything shipped so
        far (False on timeout or a down link)."""
        self.agent.flush()
        return self.transport.drain(timeout)

    @property
    def installed_query_ids(self) -> tuple[str, ...]:
        return self.agent.active_query_ids

    def close(self) -> None:
        self._closed.set()
        sock = self._control  # the reader may null the attr concurrently
        if sock is not None:
            # shutdown() first: it sends the FIN and wakes the reader
            # thread blocked in recv(); a bare close() would do neither
            # while that syscall pins the kernel socket.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if self._reader is not None:
            self._reader.join(timeout=2.0)
        if self._heartbeater is not None:
            self._heartbeater.join(timeout=2.0)
        self.transport.close()

    # -- control channel (install pushes, reconnect) ---------------------------------

    def _control_loop(self) -> None:
        """Serve one control connection; when it dies, redial forever
        (capped backoff) unless closed, superseded by a newer session of
        the same host, or permanently rejected (``fatal_error``)."""
        while (
            not self._closed.is_set()
            and not self._superseded
            and self.fatal_error is None
        ):
            sock = self._control
            if sock is None:
                return
            self._serve(sock)
            try:
                sock.close()
            except OSError:
                pass
            self._control = None
            if (
                self._closed.is_set()
                or self._superseded
                or self.fatal_error is not None
                or not self._reconnect
            ):
                return
            self._control = self._redial()

    def _serve(self, sock: socket.socket) -> None:
        """Read frames until the connection dies or we are told to stop."""
        try:
            while not self._closed.is_set():
                frame = recv_frame(sock)
                if frame is None:
                    return  # scrubd went away; redial (queries expire locally)
                msg_type, payload = frame
                if msg_type == MsgType.INSTALL:
                    self._install(decode_message(payload))
                elif msg_type == MsgType.UNINSTALL:
                    self.agent.uninstall(decode_message(payload)["query_id"])
                elif msg_type == MsgType.SYNC:
                    self._reconcile(decode_message(payload))
                elif msg_type == MsgType.ERROR:
                    message = decode_message(payload)
                    reason = message.get("error")
                    if reason in ("superseded", "duplicate-host"):
                        # Another session owns this host name now; redialing
                        # would only evict it in turn.  Stand down.
                        self._superseded = True
                        return
                    if reason in _PERMANENT_REJECTIONS:
                        self.fatal_error = LiveAgentError(
                            f"scrubd rejected agent {self.host!r}: "
                            f"{message.get('message')}",
                            reason=reason,
                        )
                        return
                    # Anything else (e.g. lease-expired after a long stall)
                    # is cured by re-registering: fall out and redial.
                    return
        except (OSError, ProtocolError):
            return

    def _redial(self) -> Optional[socket.socket]:
        """Reconnect + re-register with full-jitter capped exponential
        backoff (seeded from the host name: a scrubd restart must not
        make the whole fleet redial in lockstep, yet each host's delay
        sequence stays reproducible).  A new epoch per attempt means our
        fresh session supersedes the stale registration scrubd may still
        hold for us."""
        self._backoff.reset()
        while not self._closed.is_set():
            try:
                sock = self._connect_control()
            except LiveAgentError as exc:
                if exc.reason == "duplicate-host":
                    self._superseded = True
                    return None
                if exc.reason in _PERMANENT_REJECTIONS:
                    # The same hello can only be rejected the same way
                    # again; stop redialing and surface the error.
                    self.fatal_error = exc
                    return None
                self._closed.wait(self._backoff.next_delay())
            except OSError:
                self._closed.wait(self._backoff.next_delay())
            else:
                self.control_reconnects += 1
                return sock
        return None

    def _install(self, message: dict[str, Any]) -> None:
        query_id = message.get("query_id")
        rates = message.get("rates")
        if query_id in self.agent.active_query_ids:
            # Replayed on reconnect — the query is already running, but
            # the push may carry a newer sampling-rate version than the
            # one applied here (a retune, or a post-crash journal
            # replay).  The agent's version compare makes stale or
            # duplicate replays a no-op, so applying is idempotent.
            if rates is not None:
                self._apply_rates(query_id, rates)
            return
        try:
            query = parse_query(message["query"])
            validated = validate_query(query, self.registry)
            plan = plan_query(validated, message["query_id"])
            for host_object in plan.host_objects:
                self.agent.install(
                    host_object, message["activates_at"], message["expires_at"]
                )
            self.installs_applied += 1
            if rates is not None:
                # A fresh install plans at the submitted rates; bring it
                # straight to the controller's current version.
                self._apply_rates(message["query_id"], rates)
        except Exception as exc:
            # A query this host cannot plan (e.g. stale schema) must not
            # kill the control loop; the host simply contributes nothing.
            print(
                f"scrub[{self.host}]: install of {message.get('query_id')} failed: {exc}",
                file=sys.stderr,
            )

    def _apply_rates(self, query_id: str, rates: dict[str, Any]) -> None:
        try:
            self.agent.retune(
                query_id,
                float(rates["event_rate"]),
                version=int(rates["version"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            print(
                f"scrub[{self.host}]: rate update for {query_id} ignored: {exc}",
                file=sys.stderr,
            )

    def _reconcile(self, message: dict[str, Any]) -> None:
        """SYNC carries the full set of query ids that should be live
        here; drop anything local the daemon no longer knows about (it
        finished, or died with a journal-less scrubd)."""
        wanted = set(message.get("query_ids", ()))
        for query_id in self.agent.active_query_ids:
            if query_id not in wanted:
                self.agent.uninstall(query_id)

    def _heartbeat_loop(self) -> None:
        """Renew the liveness lease; scrubd expires agents it has not
        heard from within its lease window."""
        while not self._closed.wait(self._heartbeat_interval):
            if self._superseded or self.fatal_error is not None:
                return
            sock = self._control
            if sock is None:
                continue
            try:
                sock.sendall(
                    encode_message_frame(
                        MsgType.HEARTBEAT,
                        {
                            "host": self.host,
                            "epoch": self.epoch,
                            "sent_at": time.time(),
                            # Per-query armed-cost counters so scrubd's
                            # STATS can show what each live query costs
                            # on this host (ewma_ns/routed/skipped).
                            "query_costs": self.agent.query_costs(),
                        },
                    )
                )
                self.heartbeats_sent += 1
            except OSError:
                continue  # the reader notices the dead socket and redials


class ControlClient:
    """Submit/poll/finish queries against a running ``scrubd``."""

    def __init__(self, address: tuple[str, int], timeout: float = 30.0) -> None:
        self.address = address
        self._timeout = timeout
        self._sock: Optional[socket.socket] = None

    # -- plumbing -----------------------------------------------------------------

    def _request(
        self, msg_type: MsgType, message: dict[str, Any]
    ) -> tuple[MsgType, dict[str, Any]]:
        if self._sock is None:
            self._sock = socket.create_connection(self.address, timeout=self._timeout)
        try:
            self._sock.sendall(encode_message_frame(msg_type, message))
            frame = recv_frame(self._sock)
        except OSError:
            self.close()
            raise
        if frame is None:
            self.close()
            raise ConnectionError("scrubd closed the control connection")
        reply_type, payload = frame
        reply = decode_message(payload) if payload else {}
        if reply_type == MsgType.ERROR:
            raise ScrubError(f"{reply.get('error')}: {reply.get('message')}")
        return reply_type, reply

    # -- commands ------------------------------------------------------------------

    def submit(
        self, query_text: str, rollout: Optional[dict[str, Any]] = None
    ) -> dict[str, Any]:
        """Returns the handle payload: query_id, columns, host placement,
        activates_at/expires_at.

        *rollout* opts the query into an incremental canary rollout:
        ``{"canary_hosts": N, "widen_factor": F, "bake_intervals": K,
        "max_ewma_ns": C}`` (only ``canary_hosts`` is required) — the
        daemon installs on N hosts first and widens geometrically while
        the canaries stay healthy (see ``repro.live.fleet``).
        """
        message: dict[str, Any] = {"query": query_text}
        if rollout is not None:
            message["rollout"] = rollout
        _type, reply = self._request(MsgType.SUBMIT, message)
        return reply

    def poll(self, query_id: str) -> ResultSet:
        _type, reply = self._request(MsgType.POLL, {"query_id": query_id})
        return resultset_from_payload(reply)

    def finish(self, query_id: str) -> ResultSet:
        _type, reply = self._request(MsgType.FINISH, {"query_id": query_id})
        return resultset_from_payload(reply)

    def stats(self) -> dict[str, Any]:
        _type, reply = self._request(MsgType.STATS, {})
        return reply

    def shutdown(self) -> None:
        self._request(MsgType.SHUTDOWN, {})
        self.close()

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ControlClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


def parse_address(text: str) -> tuple[str, int]:
    """``host:port`` (or bare ``:port`` / ``port``) → address tuple."""
    host, sep, port = text.rpartition(":")
    if not sep:
        host, port = "127.0.0.1", text
    return (host or "127.0.0.1", int(port))


def main(argv: Optional[list[str]] = None) -> int:
    """``scrub-submit``: run one query against a live scrubd."""
    parser = argparse.ArgumentParser(
        prog="scrub-submit",
        description="Submit a Scrub query to a running scrubd and print results.",
    )
    parser.add_argument("query", nargs="?", help="query text ('-' or omitted = stdin)")
    parser.add_argument(
        "--address", default="127.0.0.1:7421", help="scrubd host:port"
    )
    parser.add_argument(
        "--no-wait", action="store_true",
        help="submit and exit immediately (collect later with --finish)",
    )
    parser.add_argument(
        "--finish", metavar="QUERY_ID",
        help="collect (and end) a previously submitted query instead of submitting",
    )
    parser.add_argument(
        "--format", choices=("pretty", "csv", "json"), default="pretty"
    )
    parser.add_argument(
        "--margin", type=float, default=3.0,
        help="extra seconds past the span end before collecting",
    )
    parser.add_argument(
        "--canary", type=int, metavar="N", default=None,
        help="roll the query out incrementally: install on N canary "
        "hosts, bake, then widen while they stay healthy",
    )
    parser.add_argument(
        "--widen-factor", type=float, default=2.0,
        help="geometric growth per rollout stage (with --canary)",
    )
    parser.add_argument(
        "--bake-intervals", type=int, default=2,
        help="healthy daemon ticks per stage before widening (with --canary)",
    )
    parser.add_argument(
        "--max-ewma-ns", type=float, default=None,
        help="abort the rollout if any installed host's per-event cost "
        "EWMA exceeds this ceiling (with --canary)",
    )
    args = parser.parse_args(argv)

    rollout: Optional[dict[str, Any]] = None
    if args.canary is not None:
        rollout = {
            "canary_hosts": args.canary,
            "widen_factor": args.widen_factor,
            "bake_intervals": args.bake_intervals,
        }
        if args.max_ewma_ns is not None:
            rollout["max_ewma_ns"] = args.max_ewma_ns

    client = ControlClient(parse_address(args.address))
    try:
        if args.finish:
            _print_results(client.finish(args.finish), args.format)
            return 0
        text = args.query
        if text is None or text == "-":
            text = sys.stdin.read()
        handle = client.submit(text, rollout=rollout)
        span = handle["expires_at"] - handle["activates_at"]
        placement = f"installed on {len(handle['targeted_hosts'])} host(s)"
        if handle.get("rollout"):
            ro = handle["rollout"]
            placement = (
                f"canary on {len(ro['installed'])}/{len(ro['order'])} host(s)"
            )
        print(
            f"{handle['query_id']}: {placement}, span {span:g}s",
            file=sys.stderr,
        )
        if args.no_wait:
            print(handle["query_id"])
            return 0
        wait = max(0.0, handle["expires_at"] - time.time()) + args.margin
        time.sleep(wait)
        _print_results(client.finish(handle["query_id"]), args.format)
        return 0
    except (ScrubError, ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()


def _print_results(results: ResultSet, fmt: str) -> None:
    if fmt == "csv":
        print(results.to_csv().rstrip())
    elif fmt == "json":
        print(results.to_json(indent=2))
    else:
        print(results.pretty())
        if results.total_host_dropped:
            print(f"! {results.total_host_dropped} events dropped on hosts")


if __name__ == "__main__":
    raise SystemExit(main())
