"""SocketTransport: the host side of the live deployment.

Implements the two-method ``Transport`` protocol over TCP with the
paper's minimal-impact contract preserved end to end:

* ``send()`` **never blocks**: it moves the batch into a bounded outbox
  and returns.  When the outbox is full — or the link is down long
  enough to fill it — the batch is dropped *at the host* and its loss is
  counted, exactly like a full agent buffer.
* A background **flusher thread** owns the socket: it frames batches,
  reconnects with full-jitter capped exponential backoff (seeded per
  host name, so a daemon restart does not make the whole fleet redial
  in lockstep), and re-sends the ``DATA_HELLO`` after every reconnect.
* Dropped batches are not silently forgotten: their event count and
  matched-event counters are *carried* onto the next batch that does get
  through (``dropped`` and ``seen_counts``), so the central estimator
  still learns how much it missed.  The carry is capped so a long outage
  cannot grow host memory without bound.
"""

from __future__ import annotations

import queue
import random
import socket
import threading
from typing import Optional

from ..core.agent.transport import EventBatch
from .protocol import (
    MsgType,
    ProtocolError,
    decode_message,
    encode_batch_frame_into,
    encode_message_frame,
    recv_frame,
)

__all__ = ["JitteredBackoff", "SocketTransport"]

#: Entries kept in the carried seen-count map while the link is down.
CARRY_SEEN_CAP = 1024


class JitteredBackoff:
    """Full-jitter capped exponential backoff.

    Deterministic doubling makes every agent redial in lockstep after a
    scrubd restart — a thundering herd at fleet scale.  Full jitter
    (``uniform(0, ceiling)`` with the ceiling doubling up to the cap)
    spreads the herd across the whole window while keeping the same
    worst-case wait.  The RNG is seeded from the agent name (plus a
    per-channel salt), never from wall time, so a given host's delay
    sequence is reproducible in tests yet distinct across the fleet.
    """

    __slots__ = ("base", "cap", "_rng", "_ceiling")

    def __init__(self, name: str, base: float, cap: float, salt: str = "") -> None:
        self.base = base
        self.cap = cap
        # random.Random(str) seeds from the string's bytes, not hash():
        # stable across processes regardless of PYTHONHASHSEED.
        self._rng = random.Random(f"scrub-backoff:{salt}:{name}")
        self._ceiling = base

    def reset(self) -> None:
        """Start a fresh attempt run; the RNG stream keeps advancing."""
        self._ceiling = self.base

    def next_delay(self) -> float:
        delay = self._rng.uniform(0.0, self._ceiling)
        self._ceiling = min(self._ceiling * 2, self.cap)
        return delay


class _Drain:
    """A barrier token: set once every prior frame reached the daemon
    *and* was ingested (the daemon PONGs only after its shard workers
    pass the matching barrier)."""

    __slots__ = ("event", "ok", "token")

    def __init__(self, token: int) -> None:
        self.event = threading.Event()
        self.ok = False
        self.token = token


class SocketTransport:
    """Ship batches to a ``scrubd`` daemon; drop, never block."""

    def __init__(
        self,
        address: tuple[str, int],
        host: str,
        outbox_capacity: int = 256,
        connect_timeout: float = 2.0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        io_timeout: float = 10.0,
    ) -> None:
        self.address = address
        self.host = host
        self._outbox: "queue.Queue[object]" = queue.Queue(maxsize=outbox_capacity)
        self.outbox_capacity = outbox_capacity
        self._connect_timeout = connect_timeout
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._backoff = JitteredBackoff(host, backoff_base, backoff_cap, salt="data")
        self._io_timeout = io_timeout

        self.batches_sent = 0
        self.bytes_sent = 0
        self.dropped_batches = 0
        self.dropped_events = 0
        self.reconnects = 0

        # Loss carried onto the next enqueued batch.  Both the producer
        # (send() folding carry in / counting outbox drops) and the
        # flusher (_note_lost after a failed ship) mutate these, so a
        # lock guards every read-modify-write: an unsynchronized
        # interleaving could *lose* counts (producer zeroes the field
        # while the flusher's addition is in flight), violating the
        # conservation guarantee the estimator depends on.  The lock is
        # never held across I/O, so send() stays non-blocking.
        self._carry_lock = threading.Lock()
        self._carry_dropped = 0
        self._carry_seen: dict[tuple[str, int], int] = {}

        self._sock: Optional[socket.socket] = None
        # Owned by the flusher thread; reused across every shipped frame.
        self._wire_buf = bytearray()
        self._stop = threading.Event()
        self._drain_seq = 0
        self._thread = threading.Thread(
            target=self._run, name=f"scrub-flusher-{host}", daemon=True
        )
        self._thread.start()

    # -- the Transport protocol ------------------------------------------------

    def send(self, batch: EventBatch) -> None:
        """Enqueue for shipping; on a full outbox, count the loss and
        return immediately (the paper's drop-not-block invariant)."""
        with self._carry_lock:
            if self._carry_dropped or self._carry_seen:
                batch.dropped += self._carry_dropped
                self._carry_dropped = 0
                if self._carry_seen:
                    merged = self._carry_seen
                    self._carry_seen = {}
                    for key, count in batch.seen_counts.items():
                        merged[key] = merged.get(key, 0) + count
                    batch.seen_counts = merged
        try:
            self._outbox.put_nowait(batch)
        except queue.Full:
            self.dropped_batches += 1
            self.dropped_events += len(batch.events)
            self._carry_loss(batch)

    # -- lifecycle ---------------------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._sock is not None

    @property
    def outbox_depth(self) -> int:
        return self._outbox.qsize()

    def drain(self, timeout: float = 10.0) -> bool:
        """Block (caller-side only) until everything enqueued so far has
        been ingested by the daemon; False on timeout or a dead link.
        Test/shutdown helper — production senders never call this."""
        self._drain_seq += 1
        token = _Drain(self._drain_seq)
        try:
            self._outbox.put(token, timeout=timeout)
        except queue.Full:
            return False
        if not token.event.wait(timeout):
            return False
        return token.ok

    def close(self) -> None:
        self._stop.set()
        # Unblock the flusher if it is waiting on an empty outbox.
        try:
            self._outbox.put_nowait(None)
        except queue.Full:
            pass
        self._thread.join(timeout=5.0)

    # -- flusher thread ----------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                item = self._outbox.get(timeout=0.2)
            except queue.Empty:
                continue
            if item is None:
                continue
            if isinstance(item, _Drain):
                self._handle_drain(item)
                continue
            self._ship(item)
        if self._sock is not None:
            self._close_socket()

    def _ship(self, batch: EventBatch) -> None:
        # One reusable wire buffer for the flusher's lifetime: the batch
        # encodes straight into it (no per-event or per-frame bytes), and
        # `del buf[:]` keeps the allocation for the next batch.
        frame = self._wire_buf
        del frame[:]
        encode_batch_frame_into(frame, batch)
        if not self._ensure_connected():
            self.dropped_batches += 1
            self.dropped_events += len(batch.events)
            self._note_lost(batch)
            return
        try:
            assert self._sock is not None
            self._sock.sendall(frame)
            self.batches_sent += 1
            self.bytes_sent += len(frame)
        except OSError:
            self._close_socket()
            self.dropped_batches += 1
            self.dropped_events += len(batch.events)
            self._note_lost(batch)

    def _note_lost(self, batch: EventBatch) -> None:
        """Flusher-side loss: fold the dead batch — events, its own
        carried drop count, and its matched-event counters — back into
        the shared carry so the next delivered batch reports it."""
        self._carry_loss(batch)

    def _carry_loss(self, batch: EventBatch) -> None:
        with self._carry_lock:
            self._carry_dropped += len(batch.events) + batch.dropped
            if len(self._carry_seen) < CARRY_SEEN_CAP:
                for key, count in batch.seen_counts.items():
                    self._carry_seen[key] = self._carry_seen.get(key, 0) + count

    def _handle_drain(self, token: _Drain) -> None:
        if not self._ensure_connected():
            token.event.set()
            return
        try:
            assert self._sock is not None
            self._sock.sendall(
                encode_message_frame(MsgType.PING, {"token": token.token})
            )
            while True:
                frame = recv_frame(self._sock)
                if frame is None:
                    break
                msg_type, payload = frame
                if msg_type != MsgType.PONG:
                    continue
                # Only the PONG answering *our* PING completes this
                # drain; a stale one (a prior drain that timed out, or
                # one replayed across a flaky link) proves nothing about
                # the frames sent since.
                try:
                    answered = decode_message(payload).get("token")
                except ProtocolError:
                    continue
                if answered == token.token:
                    token.ok = True
                    break
        except OSError:
            self._close_socket()
        finally:
            token.event.set()

    def _ensure_connected(self) -> bool:
        """Connect with capped exponential backoff; gives up (returning
        False) once the retry budget for one batch is spent, so a dead
        central can never wedge the flusher behind one frame."""
        if self._sock is not None:
            return True
        self._backoff.reset()
        for _attempt in range(4):
            if self._stop.is_set():
                return False
            try:
                sock = socket.create_connection(
                    self.address, timeout=self._connect_timeout
                )
                sock.settimeout(self._io_timeout)
                sock.sendall(
                    encode_message_frame(MsgType.DATA_HELLO, {"host": self.host})
                )
                self._sock = sock
                self.reconnects += 1
                return True
            except OSError:
                self._stop.wait(self._backoff.next_delay())
        return False

    def _close_socket(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
