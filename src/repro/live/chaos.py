"""Fault injection for live-mode tests: a frame-aware chaos proxy.

:class:`ChaosProxy` sits between live-mode clients and ``scrubd``,
speaking the real wire protocol on both sides: it decodes each frame,
consults a seeded :class:`FaultPlan`, and then forwards, drops, delays,
or duplicates it.  Working at frame granularity (rather than splicing
raw bytes) means injected faults are exactly the faults the protocol
can suffer in production — a lost frame, a stalled link, a replayed
frame — never a torn half-frame that no real TCP stream would deliver.

On top of per-frame faults the proxy models link-level ones:
``partition()`` severs every active link and refuses new connections
until ``heal()``.  Agents behind a partitioned proxy look exactly like
agents on the far side of a network split: their data batches drop at
the host (counted), their leases expire at the daemon, and on
``heal()`` the reconnect/re-install path brings them back.

Determinism: every link gets its own ``random.Random`` seeded from
``(seed, link ordinal)``, so a failing chaos test replays identically.

Besides wire faults, this module injects **process faults** into a
:class:`~repro.core.central.pool.ShardPool`: :func:`sigkill_worker`
crash-kills one shard worker by index (the supervisor must respawn it
and report the coverage gap), :func:`sigstop_worker` freezes one (a
hung worker — the supervisor's close-reply heartbeat must detect it),
and :func:`sigcont_worker` thaws a frozen one.

Test-only by design — nothing in the production path imports this.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import threading
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .protocol import MsgType, ProtocolError, encode_frame, recv_frame

__all__ = [
    "ChaosProxy",
    "FaultPlan",
    "sigcont_worker",
    "sigkill_worker",
    "sigstop_worker",
]


# -- process faults (ShardPool workers) ----------------------------------------


def _worker_pid(pool, index: int) -> int:
    procs = pool._procs
    if not 0 <= index < len(procs):
        raise IndexError(f"pool has {len(procs)} workers; no index {index}")
    pid = procs[index].pid
    if pid is None:
        raise RuntimeError(f"worker {index} has no pid (not started?)")
    return pid


def sigkill_worker(pool, index: int) -> int:
    """Crash-kill shard worker *index* (SIGKILL — no cleanup, exactly the
    fault a segfault or OOM kill produces).  Returns the dead pid."""
    pid = _worker_pid(pool, index)
    os.kill(pid, signal.SIGKILL)
    pool._procs[index].join(timeout=5)
    return pid


def sigstop_worker(pool, index: int) -> int:
    """Freeze shard worker *index* (SIGSTOP): the process stays alive but
    stops answering — the hung-worker case.  Returns the pid."""
    pid = _worker_pid(pool, index)
    os.kill(pid, signal.SIGSTOP)
    return pid


def sigcont_worker(pool, index: int) -> int:
    """Thaw a SIGSTOPped worker; harmless if the supervisor already
    replaced it (the pid is then reaped, and kill raises ProcessLookupError
    which is swallowed).  Returns the pid signalled (or -1)."""
    try:
        pid = _worker_pid(pool, index)
        os.kill(pid, signal.SIGCONT)
        return pid
    except (IndexError, RuntimeError, ProcessLookupError):
        return -1


@dataclass(frozen=True)
class FaultPlan:
    """Per-frame fault probabilities for one proxy.

    ``msg_types`` restricts faults to the given frame types (e.g. drop
    only ``HEARTBEAT`` to starve a lease while data flows); ``None``
    means every frame is eligible.  A delay-only plan (zero drop/dup)
    perturbs timing without breaking conservation, which is what the
    exact-accounting integration tests need: the host's own loss
    counters stay the ground truth for every event that went missing.
    """

    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_range: tuple[float, float] = (0.0, 0.0)
    msg_types: Optional[frozenset[MsgType]] = None

    @staticmethod
    def only(types: Iterable[MsgType], **kwargs: object) -> "FaultPlan":
        return FaultPlan(msg_types=frozenset(types), **kwargs)  # type: ignore[arg-type]

    def applies_to(self, msg_type: MsgType) -> bool:
        return self.msg_types is None or msg_type in self.msg_types


@dataclass
class _Link:
    """One proxied connection: the client socket and its upstream."""

    client: socket.socket
    upstream: socket.socket
    pumps: list[threading.Thread] = field(default_factory=list)

    def sever(self) -> None:
        for sock in (self.client, self.upstream):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class ChaosProxy:
    """A TCP proxy that forwards scrub frames through a fault plan."""

    def __init__(
        self,
        upstream: tuple[str, int],
        plan: Optional[FaultPlan] = None,
        seed: int = 0,
        listen_host: str = "127.0.0.1",
    ) -> None:
        self.upstream = upstream
        self.plan = plan if plan is not None else FaultPlan()
        self.seed = seed

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((listen_host, 0))
        self._listener.listen(32)
        #: Dial this instead of scrubd's real address.
        self.address: tuple[str, int] = self._listener.getsockname()[:2]

        self._lock = threading.Lock()
        self._links: list[_Link] = []
        self._link_ordinal = 0
        self._partitioned = threading.Event()
        self._stopped = threading.Event()

        # Counters (monotone; incremented under _lock — the pump threads
        # all write them — so stats() reads under the lock are exact).
        self.frames_forwarded = 0
        self.frames_dropped = 0
        self.frames_duplicated = 0
        self.connections_accepted = 0
        self.connections_refused = 0

        self._acceptor = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True
        )
        self._acceptor.start()

    # -- fault control -------------------------------------------------------------

    def partition(self) -> None:
        """Sever every live link and refuse new connections until heal()."""
        self._partitioned.set()
        with self._lock:
            links, self._links = self._links, []
        for link in links:
            link.sever()

    def heal(self) -> None:
        self._partitioned.clear()

    @property
    def partitioned(self) -> bool:
        return self._partitioned.is_set()

    @property
    def active_links(self) -> int:
        with self._lock:
            return len(self._links)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "frames_forwarded": self.frames_forwarded,
                "frames_dropped": self.frames_dropped,
                "frames_duplicated": self.frames_duplicated,
                "connections_accepted": self.connections_accepted,
                "connections_refused": self.connections_refused,
            }

    def close(self) -> None:
        self._stopped.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            links, self._links = self._links, []
        for link in links:
            link.sever()
        self._acceptor.join(timeout=2.0)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # -- plumbing ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return
            if self._stopped.is_set():
                try:
                    client.close()
                except OSError:
                    pass
                return
            if self._partitioned.is_set():
                # A partitioned network: the SYN may complete (backlog)
                # but the peer is unreachable — immediate reset.
                with self._lock:
                    self.connections_refused += 1
                try:
                    client.close()
                except OSError:
                    pass
                continue
            try:
                upstream = socket.create_connection(self.upstream, timeout=5.0)
            except OSError:
                with self._lock:
                    self.connections_refused += 1
                try:
                    client.close()
                except OSError:
                    pass
                continue
            with self._lock:
                ordinal = self._link_ordinal
                self._link_ordinal += 1
                link = _Link(client=client, upstream=upstream)
                self._links.append(link)
                self.connections_accepted += 1
            for name, src, dst in (
                (f"chaos-c2s-{ordinal}", client, upstream),
                (f"chaos-s2c-{ordinal}", upstream, client),
            ):
                rng = random.Random(f"{self.seed}:{ordinal}:{name}")
                pump = threading.Thread(
                    target=self._pump,
                    args=(link, src, dst, rng),
                    name=name,
                    daemon=True,
                )
                link.pumps.append(pump)
                pump.start()

    def _pump(
        self,
        link: _Link,
        src: socket.socket,
        dst: socket.socket,
        rng: random.Random,
    ) -> None:
        """Forward frames one way through the fault plan until the link
        dies; then sever both directions (a half-open chaos link would
        model a fault the protocol never sees in practice)."""
        plan = self.plan
        try:
            while not self._stopped.is_set():
                frame = recv_frame(src)
                if frame is None:
                    break
                msg_type, payload = frame
                wire = encode_frame(msg_type, payload)
                if plan.applies_to(msg_type):
                    if plan.drop_rate and rng.random() < plan.drop_rate:
                        with self._lock:
                            self.frames_dropped += 1
                        continue
                    lo, hi = plan.delay_range
                    if hi > 0:
                        self._stopped.wait(rng.uniform(lo, hi))
                    if plan.dup_rate and rng.random() < plan.dup_rate:
                        dst.sendall(wire)
                        with self._lock:
                            self.frames_duplicated += 1
                dst.sendall(wire)
                with self._lock:
                    self.frames_forwarded += 1
        except (OSError, ProtocolError):
            pass
        finally:
            link.sever()
            with self._lock:
                if link in self._links:
                    self._links.remove(link)
