"""The live-mode wire protocol.

Every connection to ``scrubd`` — agent data channels, agent control
channels, and query control clients — speaks the same framing:

    u32  frame length (message type byte + payload)
    u8   message type
    ...  payload

Payloads reuse the compact binary value encoding of
``repro.core.events.encoding`` (control messages are a single encoded
map), and ``BATCH`` frames carry the lossless full-batch codec of
``repro.core.agent.transport`` — so wire accounting in live mode is the
same arithmetic as everywhere else in the reproduction.

Three channel roles, distinguished by the first frame a peer sends:

* **data** (``DATA_HELLO`` first): one-way agent → central batch stream,
  plus an optional ``PING``/``PONG`` drain barrier — the ``PONG`` is
  sent only after every previously received batch has been ingested.
* **agent control** (``AGENT_HELLO`` first): registers the host (name,
  services, datacenter, event schemas) and then receives ``INSTALL`` /
  ``UNINSTALL`` pushes for the query objects the central server places
  on it.
* **query control** (any request frame first): ``SUBMIT`` / ``POLL`` /
  ``FINISH`` / ``STATS`` / ``SHUTDOWN`` request-response pairs.
"""

from __future__ import annotations

import asyncio
import enum
import socket
import struct
from typing import Any, Optional

from ..core.agent.transport import EventBatch, encode_full_batch_into
from ..core.approx.sampling_theory import ApproxEstimate
from ..core.central.results import ResultRow, ResultSet, WindowCoverage, WindowResult
from ..core.events.encoding import decode_value, encode_value
from ..core.events.schema import EventSchema

__all__ = [
    "MAX_FRAME_BYTES",
    "MsgType",
    "ProtocolError",
    "decode_message",
    "encode_batch_frame",
    "encode_batch_frame_into",
    "encode_frame",
    "encode_message_frame",
    "read_frame",
    "recv_frame",
    "resultset_from_payload",
    "resultset_to_payload",
    "schema_from_payload",
    "schema_to_payload",
]

#: Upper bound on a single frame; a peer announcing more is corrupt or
#: hostile and the connection is torn down rather than buffered.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct("<I")


class ProtocolError(Exception):
    """A malformed or out-of-protocol frame."""


class MsgType(enum.IntEnum):
    # channel hellos
    AGENT_HELLO = 0x01
    DATA_HELLO = 0x02
    HELLO_OK = 0x03
    # data channel
    BATCH = 0x10
    PING = 0x11
    PONG = 0x12
    # central → agent pushes
    INSTALL = 0x20
    UNINSTALL = 0x21
    #: After (re)registration: the full set of query ids that should be
    #: live on this host, so the agent can reconcile (drop stale ones).
    SYNC = 0x22
    # agent → central liveness lease renewal (control channel)
    HEARTBEAT = 0x23
    # query control
    SUBMIT = 0x30
    SUBMIT_OK = 0x31
    POLL = 0x32
    FINISH = 0x33
    RESULTS = 0x34
    STATS = 0x35
    STATS_OK = 0x36
    SHUTDOWN = 0x37
    SHUTDOWN_OK = 0x38
    ERROR = 0x3F


# -- framing -------------------------------------------------------------------


def encode_frame(msg_type: MsgType, payload: bytes = b"") -> bytes:
    """One full frame: length prefix, type byte, payload."""
    if 1 + len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large: {len(payload)} bytes")
    return _LEN.pack(1 + len(payload)) + bytes([msg_type]) + payload


def encode_message_frame(msg_type: MsgType, message: dict[str, Any]) -> bytes:
    """A control frame whose payload is one encoded map."""
    return encode_frame(msg_type, encode_value(message))


def encode_batch_frame_into(out: bytearray, batch: EventBatch) -> None:
    """Append a complete ``BATCH`` frame to *out* without intermediate
    copies: the length prefix is written as a placeholder and patched
    once the payload size is known, so the batch encodes straight into
    the transport's reusable wire buffer."""
    start = len(out)
    out += _LEN.pack(0)  # placeholder, patched below
    out.append(MsgType.BATCH)
    encode_full_batch_into(out, batch)
    length = len(out) - start - _LEN.size
    if length > MAX_FRAME_BYTES:
        del out[start:]
        raise ProtocolError(f"frame too large: {length - 1} bytes")
    _LEN.pack_into(out, start, length)


def encode_batch_frame(batch: EventBatch) -> bytes:
    out = bytearray()
    encode_batch_frame_into(out, batch)
    return bytes(out)


def decode_message(payload: bytes | memoryview) -> dict[str, Any]:
    message = decode_value(payload)
    if not isinstance(message, dict):
        raise ProtocolError(f"control payload is not a map: {type(message).__name__}")
    return message


def _parse_type(raw: int) -> MsgType:
    try:
        return MsgType(raw)
    except ValueError:
        raise ProtocolError(f"unknown message type 0x{raw:02x}") from None


async def read_frame(
    reader: asyncio.StreamReader,
) -> Optional[tuple[MsgType, bytes]]:
    """Read one frame from an asyncio stream; ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(_LEN.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _LEN.unpack(header)
    if not 1 <= length <= MAX_FRAME_BYTES:
        raise ProtocolError(f"bad frame length {length}")
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    return _parse_type(body[0]), body[1:]


def recv_frame(sock: socket.socket) -> Optional[tuple[MsgType, bytes]]:
    """Read one frame from a blocking socket; ``None`` on clean EOF."""
    header = _recv_exactly(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if not 1 <= length <= MAX_FRAME_BYTES:
        raise ProtocolError(f"bad frame length {length}")
    body = _recv_exactly(sock, length)
    if body is None:
        return None
    return _parse_type(body[0]), body[1:]


def _recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            return None
        chunks += chunk
    return bytes(chunks)


# -- schema and result payloads ------------------------------------------------


def schema_to_payload(schema: EventSchema) -> dict[str, Any]:
    return {
        "name": schema.name,
        "fields": [[f.name, f.ftype.value] for f in schema],
        "doc": schema.doc,
    }


def schema_from_payload(payload: dict[str, Any]) -> EventSchema:
    return EventSchema(
        payload["name"],
        [(name, ftype) for name, ftype in payload["fields"]],
        doc=payload.get("doc", ""),
    )


def resultset_to_payload(results: ResultSet) -> dict[str, Any]:
    """A lossless, codec-friendly form of a ResultSet (tuples → lists)."""
    return {
        "query_id": results.query_id,
        "columns": list(results.columns),
        "rollout": results.rollout,
        "sampling": results.sampling,
        "windows": [
            {
                "start": w.window_start,
                "end": w.window_end,
                "rows": [_encodable(row.values) for row in w.rows],
                "estimates": {
                    name: {
                        "estimate": est.estimate,
                        "error_bound": est.error_bound,
                        "confidence": est.confidence,
                        "variance": est.variance,
                        "sampled_machines": est.sampled_machines,
                        "total_machines": est.total_machines,
                        "machine_dispersion": est.machine_dispersion,
                        "value_dispersion": est.value_dispersion,
                        "sample_events": est.sample_events,
                    }
                    for name, est in w.estimates.items()
                },
                "host_dropped": w.host_dropped,
                "host_shed": w.host_shed,
                "late_events": w.late_events,
                "contributing_hosts": w.contributing_hosts,
                "coverage": None if w.coverage is None else w.coverage.as_dict(),
            }
            for w in results.windows
        ],
    }


def resultset_from_payload(payload: dict[str, Any]) -> ResultSet:
    columns = tuple(payload["columns"])
    results = ResultSet(payload["query_id"], columns)
    # .get(): tolerate peers from before rollout/sampling metadata existed.
    results.rollout = payload.get("rollout")
    results.sampling = payload.get("sampling")
    for w in payload["windows"]:
        results.add(
            WindowResult(
                query_id=payload["query_id"],
                window_start=w["start"],
                window_end=w["end"],
                columns=columns,
                rows=[ResultRow(_decodable(values)) for values in w["rows"]],
                estimates={
                    name: ApproxEstimate(
                        estimate=est["estimate"],
                        error_bound=est["error_bound"],
                        confidence=est["confidence"],
                        variance=est["variance"],
                        sampled_machines=est["sampled_machines"],
                        total_machines=est["total_machines"],
                        machine_dispersion=est.get("machine_dispersion", 0.0),
                        value_dispersion=est.get("value_dispersion", 0.0),
                        sample_events=est.get("sample_events", 0),
                    )
                    for name, est in w["estimates"].items()
                },
                host_dropped=w["host_dropped"],
                host_shed=w.get("host_shed", 0),
                late_events=w["late_events"],
                contributing_hosts=w["contributing_hosts"],
                coverage=_coverage_from_payload(w.get("coverage")),
            )
        )
    return results


def _coverage_from_payload(payload: Optional[dict[str, Any]]) -> Optional[WindowCoverage]:
    if payload is None:
        return None
    return WindowCoverage(
        expected=tuple(payload["expected"]),
        reporting=tuple(payload["reporting"]),
        missing=dict(payload["missing"]),
        # .get(): tolerate payloads journaled before these fields existed.
        shard_gaps=dict(payload.get("shard_gaps", {})),
        shed={host: int(n) for host, n in payload.get("shed", {}).items()},
        quarantined=dict(payload.get("quarantined", {})),
    )


def _encodable(values: tuple) -> list:
    """Row values for the wire: tuples become tagged lists so TOP-K pair
    lists and genuine list fields survive the round trip distinctly."""
    return [_enc_value(v) for v in values]


def _enc_value(value: Any) -> Any:
    if isinstance(value, tuple):
        return {"@t": [_enc_value(v) for v in value]}
    if isinstance(value, list):
        return [_enc_value(v) for v in value]
    return value


def _decodable(values: list) -> tuple:
    return tuple(_dec_value(v) for v in values)


def _dec_value(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"@t"}:
        return tuple(_dec_value(v) for v in value["@t"])
    if isinstance(value, list):
        return [_dec_value(v) for v in value]
    return value
