"""The scrubd query journal: crash recovery for the control plane.

Scrub's data plane is deliberately lossy — drop, never block — but the
*control* plane (which query spans are open, which hosts they target)
must survive a ``scrubd`` crash, or every open troubleshooting session
dies with the daemon.  The journal is the smallest thing that restores
it: an append-only file of JSON records, fsync'd per append, replayed
on ``scrubd --journal`` startup.

Four record kinds:

* ``schema`` — an event schema an agent announced.  Replayed first so
  journalled query text re-validates before any agent reconnects.
* ``submit`` — one accepted query: id, text, span, and host placement
  (plus the rollout policy when the submit carried one).  The planner
  is deterministic in ``(text, query_id)``, so replay re-derives the
  identical central query object and sampling decisions.
* ``rollout`` — one rollout state-machine transition (canary install,
  widen, complete, abort) with the stage, rank order and installed set
  at that point.  Last record wins on replay, so a scrubd crash
  mid-rollout recovers into the same stage with the same hosts
  installed — no host is installed twice, none skipped.
* ``rates`` — one applied closed-loop sampling retune: the version and
  the ``(host_rate, event_rate)`` pair the controller shipped.  Last
  record wins on replay, so a scrubd killed mid-retune recovers with
  exactly the last *journalled* rate version and replays it to the
  fleet over the INSTALL path — agents compare versions, so hosts that
  already applied it ignore the replay and laggards converge.
* ``finish`` — the query's span ended and its results were collected;
  replay treats the submit (and any rollout or rates) as closed.

Events and result windows are *not* journalled — windows open at crash
time are lost, exactly like events lost to a full buffer, and the loss
is visible because post-recovery windows carry coverage metadata while
pre-crash ones are simply absent.

A torn final record (the crash happened mid-append) is tolerated:
replay stops at the first undecodable line and the file is truncated
back to the last intact record before reopening for append — otherwise
the next append would concatenate onto the partial line, and a later
replay would stop there and silently drop everything written after the
recovery.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.events.schema import EventSchema

__all__ = ["JournalState", "QueryJournal", "open_journal"]

_MAGIC = {"journal": "scrub-query-journal", "version": 1}


@dataclass
class JournalState:
    """Everything replay recovered from a journal file."""

    #: Schemas announced before the crash, in announcement order.
    schemas: list[EventSchema] = field(default_factory=list)
    #: query_id -> its submit record, for submits without a finish.
    open_queries: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: query_id -> its latest rollout transition record (open queries
    #: only; a finish clears it).
    rollouts: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: query_id -> its latest applied sampling-rate record (open
    #: queries only; a finish clears it).
    rates: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: query_ids whose spans completed before the crash.
    finished: set[str] = field(default_factory=set)
    #: Records that failed to decode (torn tail) — at most one unless
    #: the file was hand-edited.
    torn_records: int = 0

    @property
    def max_sequence(self) -> int:
        """Highest qNNNNN sequence ever journalled, so a recovered daemon
        never reissues a used query id."""
        best = 0
        for query_id in list(self.open_queries) + list(self.finished):
            try:
                best = max(best, int(query_id.lstrip("q")))
            except ValueError:
                continue
        return best


class QueryJournal:
    """Append-only, fsync'd record stream backing scrubd recovery."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.state, intact_bytes = self._load(path)
        if os.path.exists(path) and os.path.getsize(path) > intact_bytes:
            # Cut the torn tail off *before* reopening for append: the
            # next record must start on a clean line, not concatenate
            # onto the partial one the crash left behind.
            os.truncate(path, intact_bytes)
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        self._file = open(path, "a", encoding="utf-8")
        if fresh:
            self._append(_MAGIC)

    # -- reading -------------------------------------------------------------------

    @staticmethod
    def _load(path: str) -> tuple[JournalState, int]:
        """Replay *path*: returns the recovered state plus the length in
        bytes of the journal's intact prefix — everything past it is the
        torn tail of a crashed append."""
        state = JournalState()
        intact_bytes = 0
        if not os.path.exists(path):
            return state, intact_bytes
        with open(path, "rb") as handle:
            for raw in handle:
                if not raw.endswith(b"\n"):
                    # The crash hit before the record's newline made it
                    # out; even if the fragment happens to decode, the
                    # line is unfinished and must not be appended onto.
                    state.torn_records += 1
                    break
                line = raw.strip()
                if not line:
                    intact_bytes += len(raw)
                    continue
                try:
                    record = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    # A torn append from the crash; everything before it
                    # is intact and everything after it cannot exist.
                    state.torn_records += 1
                    break
                if not isinstance(record, dict):
                    state.torn_records += 1
                    break
                op = record.get("op")
                if op == "schema":
                    state.schemas.append(
                        EventSchema(
                            record["name"],
                            [(name, ftype) for name, ftype in record["fields"]],
                            doc=record.get("doc", ""),
                        )
                    )
                elif op == "submit":
                    state.open_queries[record["query_id"]] = record
                elif op == "rollout":
                    state.rollouts[record["query_id"]] = record
                elif op == "rates":
                    state.rates[record["query_id"]] = record
                elif op == "finish":
                    state.open_queries.pop(record["query_id"], None)
                    state.rollouts.pop(record["query_id"], None)
                    state.rates.pop(record["query_id"], None)
                    state.finished.add(record["query_id"])
                intact_bytes += len(raw)
        return state, intact_bytes

    # -- writing -------------------------------------------------------------------

    def record_schema(self, schema: EventSchema) -> None:
        self._append(
            {
                "op": "schema",
                "name": schema.name,
                "fields": [[f.name, f.ftype.value] for f in schema],
                "doc": schema.doc,
            }
        )

    def record_submit(
        self,
        query_id: str,
        text: str,
        activates_at: float,
        expires_at: float,
        planned: tuple[str, ...],
        targeted: tuple[str, ...],
        rollout: Optional[dict[str, Any]] = None,
    ) -> None:
        record: dict[str, Any] = {
            "op": "submit",
            "query_id": query_id,
            "query": text,
            "activates_at": activates_at,
            "expires_at": expires_at,
            "planned": list(planned),
            "targeted": list(targeted),
        }
        if rollout is not None:
            record["rollout"] = rollout
        self._append(record)

    def record_rollout(
        self,
        query_id: str,
        state: str,
        stage: int,
        order: tuple[str, ...],
        installed: tuple[str, ...],
        abort: Optional[dict[str, Any]] = None,
    ) -> None:
        record: dict[str, Any] = {
            "op": "rollout",
            "query_id": query_id,
            "state": state,
            "stage": stage,
            "order": list(order),
            "installed": list(installed),
        }
        if abort is not None:
            record["abort"] = abort
        self._append(record)

    def record_rates(
        self,
        query_id: str,
        version: int,
        host_rate: float,
        event_rate: float,
        reason: str = "",
    ) -> None:
        """Journal one applied sampling retune *before* it fans out to
        the fleet, so a crash mid-push replays exactly this version."""
        self._append(
            {
                "op": "rates",
                "query_id": query_id,
                "version": version,
                "host_rate": host_rate,
                "event_rate": event_rate,
                "reason": reason,
            }
        )

    def record_finish(self, query_id: str) -> None:
        self._append({"op": "finish", "query_id": query_id})

    def _append(self, record: dict[str, Any]) -> None:
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass


def open_journal(path: Optional[str]) -> Optional[QueryJournal]:
    """``None``-propagating constructor for optional-journal call sites."""
    return QueryJournal(path) if path else None
