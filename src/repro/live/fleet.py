"""Fleet lifecycle: dynamic membership and health-gated query rollout.

The control plane's safety story used to end at the per-host governor:
a query installed on every matching agent at once, and a bad probe was
only caught host by host after the damage had started.  This module
gives ``scrubd`` the two pieces real in-production debuggers treat as
assumed infrastructure:

* **Membership** (:class:`FleetManager`): every host that ever
  registered is a :class:`FleetMember` with a lifecycle —
  ``live`` (control channel up, lease current) → ``disconnected``
  (channel gone or lease expired) → ``stale`` (silent past the age-out
  threshold; no longer part of the population ``@[...]`` resolves
  against, and named ``"stale"`` in :class:`WindowCoverage` instead of
  silently widening error bounds).  A re-registration at any point
  flips the member back to ``live`` with its new session epoch.

* **Rollout** (:class:`RolloutPolicy` / :class:`QueryRollout`): a
  ``SUBMIT`` may carry ``canary_hosts=N, widen_factor, bake_intervals``.
  The query installs on the first N hosts of its rendezvous order,
  bakes for ``bake_intervals`` healthy daemon ticks while scrubd
  watches per-host ``ewma_ns`` and governor quarantines from the
  heartbeats, then widens geometrically (``N → N*widen_factor → ...``)
  until the full targeted set runs it.  Any canary quarantine — or a
  cost regression past ``max_ewma_ns`` — aborts the whole rollout:
  uninstall everywhere, keep a structured :class:`RolloutAbort` that
  ``POLL``/``STATS`` surface.  Every state transition is journalled so
  a scrubd crash mid-rollout recovers into the same stage.

The state machine itself is synchronous and engine-free so it can be
unit-tested without sockets; ``ScrubDaemon`` drives it from the real
clock tick and owns all I/O (INSTALL/UNINSTALL pushes, journalling).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Optional

__all__ = [
    "FleetManager",
    "FleetMember",
    "QueryRollout",
    "RolloutAbort",
    "RolloutPolicy",
    "MEMBER_LIVE",
    "MEMBER_DISCONNECTED",
    "MEMBER_STALE",
    "ROLLOUT_CANARY",
    "ROLLOUT_WIDENING",
    "ROLLOUT_COMPLETE",
    "ROLLOUT_ABORTED",
]

MEMBER_LIVE = "live"
MEMBER_DISCONNECTED = "disconnected"
MEMBER_STALE = "stale"

ROLLOUT_CANARY = "canary"
ROLLOUT_WIDENING = "widening"
ROLLOUT_COMPLETE = "complete"
ROLLOUT_ABORTED = "aborted"

#: Default multiple of the lease window after which a silent host ages
#: out of membership (one clock: both derive from ``--lease``).
DEFAULT_STALE_LEASE_MULTIPLE = 2.0


class RolloutPolicy:
    """How a query spreads across its targeted hosts."""

    __slots__ = ("canary_hosts", "widen_factor", "bake_intervals", "max_ewma_ns")

    def __init__(
        self,
        canary_hosts: int,
        widen_factor: float = 2.0,
        bake_intervals: int = 2,
        max_ewma_ns: Optional[float] = None,
    ) -> None:
        if canary_hosts < 1:
            raise ValueError(f"canary_hosts must be >= 1, got {canary_hosts}")
        if widen_factor <= 1.0:
            raise ValueError(
                f"widen_factor must be > 1 or the rollout never grows, "
                f"got {widen_factor}"
            )
        if bake_intervals < 1:
            raise ValueError(f"bake_intervals must be >= 1, got {bake_intervals}")
        if max_ewma_ns is not None and max_ewma_ns <= 0:
            raise ValueError(f"max_ewma_ns must be positive, got {max_ewma_ns}")
        self.canary_hosts = int(canary_hosts)
        self.widen_factor = float(widen_factor)
        self.bake_intervals = int(bake_intervals)
        self.max_ewma_ns = max_ewma_ns

    def quota(self, stage: int) -> int:
        """How many hosts may run the query at *stage* (0 = canary)."""
        return max(1, math.ceil(self.canary_hosts * self.widen_factor**stage))

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "canary_hosts": self.canary_hosts,
            "widen_factor": self.widen_factor,
            "bake_intervals": self.bake_intervals,
        }
        if self.max_ewma_ns is not None:
            out["max_ewma_ns"] = self.max_ewma_ns
        return out

    @classmethod
    def from_payload(cls, payload: Optional[Mapping[str, Any]]) -> Optional["RolloutPolicy"]:
        """``None``-propagating constructor for the SUBMIT payload."""
        if payload is None:
            return None
        return cls(
            canary_hosts=int(payload["canary_hosts"]),
            widen_factor=float(payload.get("widen_factor", 2.0)),
            bake_intervals=int(payload.get("bake_intervals", 2)),
            max_ewma_ns=payload.get("max_ewma_ns"),
        )

    def __repr__(self) -> str:
        return (
            f"RolloutPolicy(canary_hosts={self.canary_hosts}, "
            f"widen_factor={self.widen_factor}, "
            f"bake_intervals={self.bake_intervals}, "
            f"max_ewma_ns={self.max_ewma_ns})"
        )


class RolloutAbort:
    """Why a rollout was killed — structured, so POLL/STATS can show it."""

    __slots__ = ("reason", "host", "detail", "stage")

    def __init__(self, reason: str, host: str, detail: str, stage: int) -> None:
        #: ``"canary-quarantined"`` or ``"cost-regression"``.
        self.reason = reason
        self.host = host
        self.detail = detail
        self.stage = stage

    def as_dict(self) -> dict[str, Any]:
        return {
            "reason": self.reason,
            "host": self.host,
            "detail": self.detail,
            "stage": self.stage,
        }

    @classmethod
    def from_dict(cls, payload: Optional[Mapping[str, Any]]) -> Optional["RolloutAbort"]:
        if payload is None:
            return None
        return cls(
            payload["reason"], payload["host"], payload["detail"],
            int(payload["stage"]),
        )

    def __repr__(self) -> str:
        return (
            f"RolloutAbort({self.reason!r}, host={self.host!r}, "
            f"stage={self.stage})"
        )


class QueryRollout:
    """The per-query rollout state machine.

    ``order`` is the full rendezvous-ranked host list the query will
    eventually cover; ``installed`` is the prefix-plus-late-joiners that
    run it now.  The daemon calls :meth:`check_health` each tick, then
    either :meth:`record_abort` or :meth:`tick_healthy`; when the bake
    completes, :meth:`widen_tranche` names the next hosts to install and
    :meth:`note_installed` commits them.
    """

    def __init__(
        self,
        query_id: str,
        policy: RolloutPolicy,
        order: Iterable[str],
        installed: Iterable[str] = (),
        stage: int = 0,
        state: str = ROLLOUT_CANARY,
        abort: Optional[RolloutAbort] = None,
    ) -> None:
        self.query_id = query_id
        self.policy = policy
        self.order: list[str] = list(order)
        self.installed: list[str] = list(installed)
        self.stage = stage
        self.state = state
        self.abort = abort
        #: Consecutive healthy daemon ticks in the current stage; resets
        #: on widen (and on crash recovery — the stage is journalled, the
        #: bake timer deliberately restarts).
        self.healthy_ticks = 0

    # -- queries ---------------------------------------------------------------

    @property
    def active(self) -> bool:
        return self.state in (ROLLOUT_CANARY, ROLLOUT_WIDENING)

    def quota(self) -> int:
        return min(len(self.order), self.policy.quota(self.stage))

    def pending(self) -> list[str]:
        """Order hosts not yet installed, rank order preserved."""
        installed = set(self.installed)
        return [name for name in self.order if name not in installed]

    # -- membership interplay ---------------------------------------------------

    def admit(self, name: str) -> bool:
        """A matching host joined the fleet mid-rollout: append it to the
        rank order (it is installed when widening reaches it — or right
        away by the caller if the rollout already completed).  Returns
        True when the host was new to this rollout."""
        if name in self.order:
            return False
        self.order.append(name)
        if self.state == ROLLOUT_COMPLETE:
            # A completed rollout covers its whole order by definition;
            # the daemon installs on the newcomer immediately.
            self.installed.append(name)
        return True

    def retire(self, name: str) -> bool:
        """A host aged out of membership: drop it from the *pending* tail
        so the rollout can complete over the hosts that still exist.
        Installed hosts stay (coverage names them stale).  Returns True
        when the order changed."""
        if name in self.order and name not in self.installed:
            self.order.remove(name)
            return True
        return False

    # -- health gate ------------------------------------------------------------

    def check_health(
        self,
        quarantined: Mapping[str, str],
        ewma_ns: Mapping[str, float],
    ) -> Optional[RolloutAbort]:
        """One tick's health verdict over the installed hosts.

        *quarantined* is the engine's host → structured-reason map for
        this query; *ewma_ns* the latest per-host armed-cost EWMA from
        the heartbeats.  Any quarantine kills the rollout outright; a
        cost ceiling (``max_ewma_ns``) turns a regression into an abort
        *before* the governor has to bite.
        """
        for host in self.installed:
            if host in quarantined:
                return RolloutAbort(
                    "canary-quarantined", host, quarantined[host], self.stage
                )
        ceiling = self.policy.max_ewma_ns
        if ceiling is not None:
            for host in self.installed:
                cost = ewma_ns.get(host)
                if cost is not None and cost > ceiling:
                    return RolloutAbort(
                        "cost-regression",
                        host,
                        f"ewma_ns {cost:.0f} exceeds ceiling {ceiling:g}",
                        self.stage,
                    )
        return None

    # -- transitions ------------------------------------------------------------

    def tick_healthy(self) -> bool:
        """Count one healthy tick; True when the stage has baked and the
        daemon should widen."""
        if not self.active:
            return False
        self.healthy_ticks += 1
        return self.healthy_ticks >= self.policy.bake_intervals

    def widen_tranche(self) -> list[str]:
        """Advance one stage and return the hosts to install for it.
        Transitions to ``complete`` when the order is already covered."""
        if not self.active:
            return []
        self.stage += 1
        self.healthy_ticks = 0
        self.state = ROLLOUT_WIDENING
        tranche = self.pending()[: max(0, self.quota() - len(self.installed))]
        if not tranche and not self.pending():
            self.state = ROLLOUT_COMPLETE
        return tranche

    def note_installed(self, names: Iterable[str]) -> None:
        for name in names:
            if name not in self.installed:
                self.installed.append(name)
        if self.active and not self.pending():
            self.state = ROLLOUT_COMPLETE

    def record_abort(self, abort: RolloutAbort) -> None:
        self.state = ROLLOUT_ABORTED
        self.abort = abort

    # -- serialization ----------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        return {
            "state": self.state,
            "stage": self.stage,
            "policy": self.policy.as_dict(),
            "order": list(self.order),
            "installed": list(self.installed),
            "abort": self.abort.as_dict() if self.abort is not None else None,
        }


class FleetMember:
    """One host the daemon has ever seen, across sessions."""

    __slots__ = ("name", "description", "epoch", "state", "conn", "_last_seen")

    def __init__(self, name: str, description: Any, epoch: int, now: float) -> None:
        self.name = name
        self.description = description
        self.epoch = epoch
        self.state = MEMBER_LIVE
        #: The live control connection (daemon-owned, duck-typed: has
        #: ``last_seen`` and ``query_costs``); ``None`` once detached.
        self.conn: Optional[Any] = None
        self._last_seen = now

    @property
    def last_seen(self) -> float:
        if self.conn is not None:
            return self.conn.last_seen
        return self._last_seen

    def detach(self, now: float) -> None:
        if self.conn is not None:
            self._last_seen = max(self._last_seen, self.conn.last_seen)
            self.conn = None
        self._last_seen = max(self._last_seen, 0.0)
        self.state = MEMBER_DISCONNECTED

    def query_costs(self) -> dict[str, Any]:
        if self.conn is not None and isinstance(self.conn.query_costs, dict):
            return self.conn.query_costs
        return {}


class FleetManager:
    """The daemon's dynamic registry: who is in the fleet right now,
    who has gone quiet, and who has aged out entirely."""

    def __init__(
        self,
        lease_seconds: float,
        stale_after: Optional[float] = None,
    ) -> None:
        self.lease_seconds = lease_seconds
        #: Silence threshold for the ``stale`` age-out.  Derived from the
        #: lease unless set explicitly, so eviction and age-out share one
        #: clock (``--lease`` plumbs through to both).
        self.stale_after = (
            stale_after
            if stale_after is not None
            else lease_seconds * DEFAULT_STALE_LEASE_MULTIPLE
        )
        if self.stale_after < lease_seconds:
            raise ValueError(
                f"stale_after ({self.stale_after:g}s) must not undercut the "
                f"lease window ({lease_seconds:g}s): a host would age out "
                f"while its lease is still current"
            )
        self._members: dict[str, FleetMember] = {}

    # -- membership transitions ---------------------------------------------------

    def attach(self, description: Any, conn: Any, epoch: int, now: float) -> FleetMember:
        """A host registered (first time or rejoin): live, new epoch."""
        name = description.name
        member = self._members.get(name)
        if member is None:
            member = FleetMember(name, description, epoch, now)
            self._members[name] = member
        member.description = description
        member.epoch = epoch
        member.state = MEMBER_LIVE
        member.conn = conn
        member._last_seen = now
        return member

    def detach(self, name: str, now: float) -> None:
        """The host's control channel died or its lease expired."""
        member = self._members.get(name)
        if member is not None:
            member.detach(now)

    def age_out(self, now: float) -> list[FleetMember]:
        """Flip members silent past ``stale_after`` to ``stale`` (once);
        returns the members that transitioned this call."""
        newly_stale = []
        for member in self._members.values():
            if member.state == MEMBER_STALE or member.conn is not None:
                continue
            if now - member.last_seen > self.stale_after:
                member.state = MEMBER_STALE
                newly_stale.append(member)
        return newly_stale

    # -- lookups -------------------------------------------------------------------

    def member(self, name: str) -> Optional[FleetMember]:
        return self._members.get(name)

    def conn(self, name: str) -> Optional[Any]:
        member = self._members.get(name)
        return member.conn if member is not None else None

    def live(self) -> list[FleetMember]:
        return [m for m in self._members.values() if m.conn is not None]

    def lease_lapsed(self, now: float) -> list[FleetMember]:
        """Live members silent past the lease window (eviction is the
        daemon's job — it owns the ERROR push and the socket)."""
        return [
            m for m in self.live() if now - m.last_seen > self.lease_seconds
        ]

    def ewma_by_host(self, query_id: str) -> dict[str, float]:
        """Latest heartbeat ewma_ns for one query across live members."""
        out: dict[str, float] = {}
        for member in self.live():
            cost = member.query_costs().get(query_id)
            if isinstance(cost, dict) and "ewma_ns" in cost:
                out[member.name] = float(cost["ewma_ns"])
        return out

    def stats(self, now: float) -> list[dict[str, Any]]:
        """The STATS ``fleet`` section: every member, every state."""
        return [
            {
                "host": member.name,
                "state": member.state if member.conn is None else MEMBER_LIVE,
                "epoch": member.epoch,
                "last_seen_age": max(0.0, now - member.last_seen),
                "services": sorted(member.description.services),
                "datacenter": member.description.datacenter,
                "query_costs": member.query_costs(),
            }
            for member in sorted(self._members.values(), key=lambda m: m.name)
        ]

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, name: str) -> bool:
        return name in self._members
