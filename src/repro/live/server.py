"""``scrubd`` — the standalone ScrubCentral daemon.

A single asyncio process that plays the roles the in-process façade
(`repro.core.api.Scrub`) and the simulated cluster play elsewhere:

* accepts **agent control** connections (``AGENT_HELLO``): each
  registers a host (name, services, datacenter, event schemas) in the
  daemon's directory and then receives ``INSTALL``/``UNINSTALL`` pushes
  when queries target it;
* accepts **agent data** connections (``DATA_HELLO``): decoded batches
  are routed to N **shard workers** keyed on request-id hash — events of
  one request always land on the same worker, preserving per-request
  ingest order — which feed the shared :class:`CentralEngine`;
  per-shard queues are bounded, so a slow engine backpressures the
  socket instead of ballooning memory;
* accepts **query control** connections: ``SUBMIT`` parses/validates/
  plans against the schemas agents announced, resolves the target over
  the *live* fleet membership (``repro.live.fleet``), samples hosts by
  rendezvous hash (churn-stable), registers the central query object
  and pushes installs — all at once, or as a health-gated canary
  rollout when the submit carries a rollout policy; ``POLL``/``FINISH``
  collect results; ``STATS`` exposes the engine, fleet and rollout
  counters;
* runs the periodic **advance/reap tick** on the real clock: windows
  close as wall time passes their end plus grace, and queries whose span
  has elapsed are uninstalled everywhere and their results retained for
  later collection.

Run it: ``scrubd --port 7421`` (or ``python -m repro.live.server``).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, TextIO

from ..core.agent.transport import (
    EventBatch,
    decode_full_batch,
    peek_full_batch_host,
)
from ..core.agent.governor import ImpactBudget
from ..core.central.engine import DEFAULT_GRACE_SECONDS, CentralEngine
from ..core.central.pool import ShardPool
from ..core.central.shm_ring import DEFAULT_RING_CAPACITY
from ..core.central.results import ResultSet
from ..core.control import RateUpdate, SamplingController
from ..core.events import EventRegistry
from ..core.query.errors import (
    QueryNotFoundError,
    ScrubError,
    ScrubValidationError,
)
from ..core.query.parser import parse_query
from ..core.query.planner import QueryPlan, plan_query
from ..core.query.targets import (
    HostDescription,
    rendezvous_sample,
    target_matches,
)
from ..core.query.validator import validate_query
from ..core.server import _seed_from
from .fleet import (
    MEMBER_STALE,
    ROLLOUT_ABORTED,
    ROLLOUT_CANARY,
    FleetManager,
    QueryRollout,
    RolloutAbort,
    RolloutPolicy,
)
from .journal import QueryJournal
from .protocol import (
    MsgType,
    ProtocolError,
    decode_message,
    encode_message_frame,
    read_frame,
    resultset_to_payload,
    schema_from_payload,
)

__all__ = ["ScrubDaemon", "main"]

DEFAULT_PORT = 7421

#: Seconds without a control-channel frame (heartbeats included) before
#: a registration is considered dead and its lease expires.
DEFAULT_LEASE_SECONDS = 10.0


class _AgentConn:
    """One registered host: its description, the control writer used to
    push installs/uninstalls to it, and its liveness lease."""

    __slots__ = (
        "description",
        "writer",
        "lock",
        "epoch",
        "last_seen",
        "query_costs",
    )

    def __init__(
        self,
        description: HostDescription,
        writer: asyncio.StreamWriter,
        epoch: int = 0,
        last_seen: float = 0.0,
    ):
        self.description = description
        self.writer = writer
        self.lock = asyncio.Lock()
        #: Session epoch from the agent's hello; a reconnect carries a
        #: larger one and takes the registration over.
        self.epoch = epoch
        #: Wall time of the last frame received on the control channel.
        self.last_seen = last_seen
        #: Latest per-query armed-cost counters from the agent heartbeat
        #: ({query_id: {"ewma_ns", "routed", "skipped"}}).
        self.query_costs: dict[str, Any] = {}

    async def push(self, msg_type: MsgType, message: dict[str, Any]) -> None:
        async with self.lock:
            self.writer.write(encode_message_frame(msg_type, message))
            await self.writer.drain()


@dataclass
class _LiveQuery:
    """Daemon-side record of one running query."""

    plan: QueryPlan
    text: str
    activates_at: float
    expires_at: float
    planned: tuple[str, ...]
    targeted: tuple[str, ...]
    #: Per targeted host: delivery health — "connected", "disconnected",
    #: "lease-expired", "unreachable" (install push failed), "stale"
    #: (silent past the fleet age-out threshold), or "never-seen"
    #: (journal recovery; host not re-attached yet).  The engine reads
    #: this dict live when it closes a window, so coverage names the
    #: state the host was in at close time.
    delivery: dict[str, str] = field(default_factory=dict)
    #: Incremental-rollout state machine when the SUBMIT carried a
    #: rollout policy; ``None`` installs everywhere at once.  For
    #: rollout queries ``targeted`` tracks the installed-so-far set.
    rollout: Optional[QueryRollout] = None
    #: Closed-loop rate controller when the query carries ``TARGET CI``;
    #: ``None`` runs the submitted rates open-loop.  scrubd applies
    #: event-rate retunes only (``can_widen=False``) — the host set is
    #: the rollout machinery's business.
    controller: Optional[SamplingController] = None


class _ShardBarrier:
    """Completes once every shard worker has drained past it."""

    __slots__ = ("_remaining", "_event")

    def __init__(self, shards: int) -> None:
        self._remaining = shards
        self._event = asyncio.Event()

    def hit(self) -> None:
        self._remaining -= 1
        if self._remaining <= 0:
            self._event.set()

    async def wait(self) -> None:
        await self._event.wait()


class ScrubDaemon:
    """The ScrubCentral facility as a network daemon."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        shards: int = 4,
        grace_seconds: float = DEFAULT_GRACE_SECONDS,
        tick_interval: float = 0.25,
        queue_depth: int = 64,
        drain_margin: float = 1.0,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        stale_after: Optional[float] = None,
        journal_path: Optional[str] = None,
        workers: int = 0,
        ring_kib: int = DEFAULT_RING_CAPACITY // 1024,
        impact_budget: Optional[ImpactBudget] = None,
        clock: Callable[[], float] = time.time,
        log: Optional[TextIO] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard worker, got {shards}")
        self.host = host
        self.port = port
        self._tick_interval = tick_interval
        self._drain_margin = drain_margin
        self._lease_seconds = lease_seconds
        self._journal_path = journal_path
        self._journal: Optional[QueryJournal] = None
        #: The governor budget TARGET CI controllers clamp against (the
        #: agents enforce their own copies locally; the daemon's clamp
        #: backs off *before* theirs trips).  ``None`` disables the
        #: clamp, not the accuracy loop.
        self.impact_budget = impact_budget
        self._clock = clock
        self._log = log

        self.registry = EventRegistry()
        #: workers > 0 swaps the serial engine for the process-parallel
        #: ShardPool (docs/SCALING.md).  The pool does its own request-id
        #: routing, so the asyncio shard queues then carry whole batches
        #: and act purely as the bounded backpressure stage.
        self.workers = max(0, workers)
        self.engine: CentralEngine
        if self.workers > 0:
            # Shared-memory ring transport by default; the pool falls
            # back to pipe-bytes on its own if the platform can't do it.
            self.engine = ShardPool(
                workers=self.workers,
                grace_seconds=grace_seconds,
                ring_capacity=max(1, ring_kib) * 1024,
            )
        else:
            self.engine = CentralEngine(grace_seconds=grace_seconds)
        #: Dynamic membership + stale age-out.  One clock end to end:
        #: the age-out threshold derives from the lease unless set.
        self.fleet = FleetManager(lease_seconds, stale_after=stale_after)
        self._sequence = 0
        self._running: dict[str, _LiveQuery] = {}
        self._results: dict[str, ResultSet] = {}
        #: INSTALL pushes that failed to reach an agent (SUBMIT-time or
        #: reconnect-time); exposed via STATS.
        self.push_failures = 0

        self._shard_queues: list["asyncio.Queue[Any]"] = [
            asyncio.Queue(maxsize=queue_depth) for _ in range(shards)
        ]
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._tasks: list[asyncio.Task] = []
        self._stopping = asyncio.Event()
        self._started_at = 0.0

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        if self._journal_path is not None:
            self._recover()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = self._clock()
        for index, q in enumerate(self._shard_queues):
            self._tasks.append(
                asyncio.create_task(self._shard_worker(index, q))
            )
        self._tasks.append(asyncio.create_task(self._tick_loop()))
        self._say(f"scrubd listening on {self.host}:{self.port}")

    def _recover(self) -> None:
        """Replay the query journal: restore schemas and re-register every
        open span so agents can re-attach and POLL/FINISH keep working."""
        self._journal = QueryJournal(self._journal_path)
        state = self._journal.state
        for schema in state.schemas:
            try:
                self.registry.register(schema)
            except ValueError as exc:
                self._say(f"journal: conflicting schema {schema.name!r}: {exc}")
        self._sequence = state.max_sequence
        resumed = []
        for query_id, record in state.open_queries.items():
            try:
                self._resume(
                    query_id,
                    record,
                    state.rollouts.get(query_id),
                    state.rates.get(query_id),
                )
            except ScrubError as exc:
                self._say(f"journal: cannot resume {query_id}: {exc}")
                continue
            resumed.append(query_id)
        if resumed or state.finished:
            self._say(
                f"scrubd resumed {len(resumed)} open span(s) from journal "
                f"({sorted(resumed)}; {len(state.finished)} already finished)"
            )
        if state.torn_records:
            self._say("journal: dropped a torn trailing record (crash mid-append)")

    def _resume(
        self,
        query_id: str,
        record: dict[str, Any],
        rollout_record: Optional[dict[str, Any]] = None,
        rates_record: Optional[dict[str, Any]] = None,
    ) -> None:
        """Re-register one journalled query.  Planning is deterministic in
        (text, query id), so the central object is identical to the one
        the crashed daemon ran; windows open at crash time are lost.  A
        journalled rollout resumes in its last recorded stage with the
        same installed set — the bake timer restarts, the placement does
        not.  A journalled rate retune resumes at exactly the last
        journalled version: the recovered controller starts there and
        reconnecting agents receive it in their INSTALL replay, so a
        SIGKILL mid-retune never forks the fleet's sampling."""
        query = parse_query(record["query"])
        validated = validate_query(query, self.registry)
        plan = plan_query(validated, query_id)
        targeted = tuple(record["targeted"])
        rollout: Optional[QueryRollout] = None
        policy = RolloutPolicy.from_payload(record.get("rollout"))
        if policy is not None:
            ro_rec = rollout_record or {}
            order = tuple(ro_rec.get("order", targeted))
            installed = tuple(
                ro_rec.get("installed", order[: policy.quota(0)])
            )
            rollout = QueryRollout(
                query_id,
                policy,
                order=order,
                installed=installed,
                stage=int(ro_rec.get("stage", 0)),
                state=ro_rec.get("state", ROLLOUT_CANARY),
                abort=RolloutAbort.from_dict(ro_rec.get("abort")),
            )
            targeted = installed
        # Nobody has re-attached yet; reconnects flip hosts to "connected".
        delivery = {name: "never-seen" for name in targeted}
        self.engine.register(
            plan.central_object,
            planned_hosts=max(len(record["planned"]), len(targeted)),
            targeted_hosts=len(targeted),
            targeted_names=targeted,
            delivery_state=lambda d=delivery: d,
        )
        controller = self._make_controller(
            query_id,
            plan,
            max(len(record["planned"]), len(targeted)),
            max(len(targeted), 1),
        )
        if controller is not None and rates_record is not None:
            try:
                controller.version = int(rates_record["version"])
                controller.event_rate = float(rates_record["event_rate"])
            except (KeyError, TypeError, ValueError) as exc:
                self._say(f"journal: bad rates record for {query_id}: {exc!r}")
        self._running[query_id] = _LiveQuery(
            plan=plan,
            text=record["query"],
            activates_at=record["activates_at"],
            expires_at=record["expires_at"],
            planned=tuple(record["planned"]),
            targeted=targeted,
            delivery=delivery,
            rollout=rollout,
            controller=controller,
        )

    async def run(self) -> None:
        """Start, serve until told to stop, then shut down cleanly."""
        await self.start()
        try:
            await self._stopping.wait()
        finally:
            await self.stop()

    async def stop(self) -> None:
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        pending = list(self._tasks) + list(self._conn_tasks)
        for task in pending:
            task.cancel()
        for task in pending:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        self._conn_tasks.clear()
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()

    def _say(self, message: str) -> None:
        if self._log is not None:
            print(message, file=self._log, flush=True)

    # -- connection dispatch -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            frame = await read_frame(reader)
            if frame is None:
                return
            msg_type, payload = frame
            if msg_type == MsgType.AGENT_HELLO:
                await self._serve_agent(reader, writer, decode_message(payload))
            elif msg_type == MsgType.DATA_HELLO:
                await self._serve_data(reader, writer, decode_message(payload))
            else:
                await self._serve_control(reader, writer, msg_type, payload)
        except ProtocolError as exc:
            self._say(f"protocol error: {exc}")
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Daemon shutdown cancelled this handler mid-read; swallow it
            # so asyncio's streams callback doesn't log a traceback for
            # every open connection.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError, asyncio.CancelledError):
                pass

    # -- agent control channel ------------------------------------------------------

    async def _serve_agent(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        hello: dict[str, Any],
    ) -> None:
        name = hello["host"]
        epoch = int(hello.get("epoch", 0))
        existing = self.fleet.conn(name)
        if existing is not None:
            if epoch > existing.epoch:
                # A newer session of the same host (crash + restart, or a
                # reconnect racing lease expiry): the newer epoch wins and
                # the stale registration is evicted, not the newcomer.
                await self._evict(
                    name,
                    existing,
                    "superseded",
                    f"host {name!r} re-registered with newer epoch {epoch}",
                )
            else:
                writer.write(
                    encode_message_frame(
                        MsgType.ERROR,
                        {
                            "error": "duplicate-host",
                            "message": (
                                f"host {name!r} already registered with an equal or "
                                f"newer session epoch"
                            ),
                        },
                    )
                )
                await writer.drain()
                return
        try:
            for schema_payload in hello.get("schemas", []):
                schema = schema_from_payload(schema_payload)
                known = schema.name in self.registry
                self.registry.register(schema)
                if not known and self._journal is not None:
                    self._journal.record_schema(schema)
        except ValueError as exc:
            writer.write(
                encode_message_frame(
                    MsgType.ERROR, {"error": "schema-conflict", "message": str(exc)}
                )
            )
            await writer.drain()
            return
        description = HostDescription(
            name,
            tuple(hello.get("services", [])),
            hello.get("datacenter", "dc1"),
        )
        now = self._clock()
        conn = _AgentConn(description, writer, epoch=epoch, last_seen=now)
        # A rejoin (even from "stale") flips the member back to live with
        # its new session epoch; a first registration creates the member.
        self.fleet.attach(description, conn, epoch, now)
        async with conn.lock:
            writer.write(encode_message_frame(MsgType.HELLO_OK, {"epoch": epoch}))
            await writer.drain()
        self._say(
            f"agent {name} registered "
            f"(epoch {epoch}, {len(self.fleet.live())} live hosts)"
        )
        try:
            await self._sync_queries(name, conn)
        except (ConnectionError, OSError, RuntimeError):
            # RuntimeError is what an asyncio StreamWriter raises once its
            # transport is closed; all three mean the same thing here — the
            # read loop below will see the dead socket and clean up.
            pass
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                conn.last_seen = self._clock()
                msg_type, payload = frame
                if msg_type == MsgType.PING:
                    await conn.push(MsgType.PONG, decode_message(payload))
                elif msg_type == MsgType.HEARTBEAT:
                    # The lease renewal is the last_seen update above;
                    # the payload also carries the host's per-query
                    # armed-cost counters for STATS.
                    costs = decode_message(payload).get("query_costs")
                    if isinstance(costs, dict):
                        conn.query_costs = costs
        finally:
            # Only tear down our own registration: a takeover has already
            # replaced it, and the new session must not be unregistered by
            # the old connection's exit.
            if self.fleet.conn(name) is conn:
                self.fleet.detach(name, self._clock())
                self._mark_delivery(name, "disconnected")
                self._say(f"agent {name} disconnected")

    async def _sync_queries(self, name: str, conn: _AgentConn) -> None:
        """After HELLO_OK: push every open query span targeting this host,
        then a SYNC of the full live set so the agent reconciles — installs
        it lacks, uninstalls anything stale it still runs.  This is what
        makes a span survive an agent restart.

        A host the query does *not* yet target is a potential late
        joiner: matching queries pull it in at the current rollout stage
        (:meth:`_admit_late_joiner`), so registration order stops
        mattering — including after a journal recovery where the
        original hosts never came back."""
        now = self._clock()
        active: list[str] = []
        for query_id, live in list(self._running.items()):
            if now >= live.expires_at:
                continue
            if name not in live.targeted:
                if not self._admit_late_joiner(query_id, live, name, conn):
                    continue
                # Admitted to an active rollout: installed when widening
                # reaches it, nothing to push yet.
                if name not in live.targeted:
                    continue
            try:
                await conn.push(MsgType.INSTALL, self._install_message(query_id, live))
            except (ConnectionError, OSError, RuntimeError):
                self.push_failures += 1
                live.delivery[name] = "unreachable"
                raise
            live.delivery[name] = "connected"
            active.append(query_id)
        await conn.push(MsgType.SYNC, {"query_ids": active})

    def _admit_late_joiner(
        self, query_id: str, live: _LiveQuery, name: str, conn: _AgentConn
    ) -> bool:
        """Should a newly registered host join this running query?

        * Rollout queries admit every matching host into the rank order:
          an active rollout installs it when widening reaches its slot, a
          completed one immediately; an aborted one never.
        * Plain queries re-run the rendezvous pick over the *live*
          matching membership — rendezvous ranks are per-host-stable, so
          a newcomer joins exactly when it would have been chosen at
          submit time, and nobody else's placement moves.

        Returns True when the host is now part of the query (caller
        pushes the INSTALL if ``live.targeted`` gained it)."""
        if not target_matches(live.plan.target, conn.description):
            return False
        rollout = live.rollout
        if rollout is not None:
            if rollout.state == ROLLOUT_ABORTED:
                return False
            if not rollout.admit(name):
                return False
            if self._journal is not None:
                self._journal.record_rollout(
                    query_id, rollout.state, rollout.stage,
                    tuple(rollout.order), tuple(rollout.installed),
                )
            if name not in rollout.installed:
                return rollout.active  # queued for a future widen stage
        else:
            rate = live.plan.host_sampling_rate
            if rate < 1.0:
                matching = [
                    m.name
                    for m in self.fleet.live()
                    if target_matches(live.plan.target, m.description)
                ]
                picked = rendezvous_sample(
                    matching, rate, _seed_from(query_id)
                )
                if name not in picked:
                    return False
        self._join_query(query_id, live, name)
        return True

    def _join_query(self, query_id: str, live: _LiveQuery, name: str) -> None:
        """Commit one host into a running query's targeted set (central
        coverage included); the caller delivers the INSTALL."""
        live.targeted = live.targeted + (name,)
        live.delivery.setdefault(name, "connected")
        planned_delta = 0
        if name not in live.planned:
            live.planned = live.planned + (name,)
            planned_delta = 1
        try:
            self.engine.extend_targets(query_id, (name,), planned_delta)
        except Exception as exc:
            self._say(f"late join: extend_targets({query_id}) failed: {exc!r}")
        controller = live.controller
        if controller is not None:
            # Keep the controller's population model honest: the error
            # inversion needs the real (N, n), not the submit-time pair.
            controller.total_hosts += planned_delta
            controller.host_count = min(
                controller.host_count + 1, controller.total_hosts
            )

    async def _evict(
        self, name: str, conn: _AgentConn, error: str, message: str
    ) -> None:
        """Drop a registration: tell the old session why (a structured
        ERROR frame, never a silent close), then close its channel."""
        if self.fleet.conn(name) is conn:
            self.fleet.detach(name, self._clock())
        try:
            await asyncio.wait_for(
                conn.push(MsgType.ERROR, {"error": error, "message": message}),
                timeout=1.0,
            )
        except (ConnectionError, OSError, RuntimeError, asyncio.TimeoutError):
            pass
        try:
            conn.writer.close()
        except (ConnectionError, OSError, RuntimeError):
            pass

    def _mark_delivery(self, name: str, state: str) -> None:
        """Record a host's delivery-health transition on every open query
        that targets it (the engine reads these when windows close)."""
        for live in self._running.values():
            if name in live.targeted:
                live.delivery[name] = state

    def _install_message(self, query_id: str, live: _LiveQuery) -> dict[str, Any]:
        """The INSTALL payload for one query.  Every push path — submit,
        reconnect sync, late join, rollout widen, retune fan-out — goes
        through here so the current closed-loop rates always ride along:
        agents compare versions, so a replayed install converges a
        laggard and can never roll an up-to-date host back."""
        message: dict[str, Any] = {
            "query_id": query_id,
            "query": live.text,
            "activates_at": live.activates_at,
            "expires_at": live.expires_at,
        }
        controller = live.controller
        if controller is not None and controller.version > 0:
            message["rates"] = {
                "version": controller.version,
                "host_rate": controller.host_count / controller.total_hosts,
                "event_rate": controller.event_rate,
            }
        return message

    def _make_controller(
        self, query_id: str, plan: QueryPlan, total_hosts: int, targeted_hosts: int
    ) -> Optional[SamplingController]:
        """A closed-loop rate controller when the plan carries a
        ``TARGET CI`` clause; None runs the submitted rates open-loop."""
        target_ci = plan.central_object.target_ci
        if target_ci is None:
            return None
        return SamplingController(
            query_id,
            target_ci,
            total_hosts=max(total_hosts, targeted_hosts, 1),
            targeted_hosts=max(targeted_hosts, 1),
            window_seconds=plan.central_object.window_seconds,
            event_rate=plan.query.sampling.event_rate,
            budget=self.impact_budget,
            # scrubd never widens the host set mid-query: placement is
            # the rendezvous/rollout machinery's job, so the solver
            # holds n' fixed and retunes the event rate only.
            can_widen=False,
        )

    # -- data channel -----------------------------------------------------------------

    async def _serve_data(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        hello: dict[str, Any],
    ) -> None:
        del hello  # identity is informational; batches carry their host
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return
            msg_type, payload = frame
            if msg_type == MsgType.BATCH:
                if self.workers > 0:
                    # Pooled engine: hand the wire frame over *undecoded* —
                    # ShardPool.ingest_frame scans it and ships raw byte
                    # slices to its worker processes, so the daemon's event
                    # loop never builds an Event object (docs/SCALING.md
                    # §"Zero-copy shard ingest").  Only the host name is
                    # peeked, to key the per-host shard queue.
                    host = peek_full_batch_host(payload)
                    shard = zlib.crc32(host.encode()) % len(self._shard_queues)
                    await self._shard_queues[shard].put(payload)
                else:
                    batch = decode_full_batch(payload)
                    for shard, sub_batch in self._route(batch):
                        # Bounded queues: a saturated engine backpressures
                        # the socket (the sending host drops, never blocks).
                        await self._shard_queues[shard].put(sub_batch)
            elif msg_type == MsgType.PING:
                barrier = _ShardBarrier(len(self._shard_queues))
                for q in self._shard_queues:
                    await q.put(barrier)
                await barrier.wait()
                writer.write(encode_message_frame(MsgType.PONG, decode_message(payload)))
                await writer.drain()
            else:
                raise ProtocolError(f"unexpected {msg_type.name} on data channel")

    def _route(self, batch: EventBatch) -> list[tuple[int, EventBatch]]:
        """Split one host flush into per-shard sub-batches keyed on the
        request-id hash; the batch metadata (seen counts, drop counter,
        partial aggregates) rides exactly once, on the host's home shard.
        All shards feed one engine, so the merge is the engine's own."""
        shards = len(self._shard_queues)
        meta_shard = zlib.crc32(batch.host.encode()) % shards
        if self.workers > 0 or shards == 1 or not batch.events:
            # Pooled engine: ShardPool partitions events across its worker
            # processes itself; splitting here would only double the work.
            return [(meta_shard, batch)]
        by_shard: dict[int, list] = {}
        for event in batch.events:
            by_shard.setdefault(event.request_id % shards, []).append(event)
        routed: list[tuple[int, EventBatch]] = []
        for shard, events in by_shard.items():
            if shard == meta_shard:
                continue
            routed.append(
                (
                    shard,
                    EventBatch(
                        host=batch.host,
                        query_id=batch.query_id,
                        events=events,
                        sent_at=batch.sent_at,
                    ),
                )
            )
        routed.append(
            (
                meta_shard,
                EventBatch(
                    host=batch.host,
                    query_id=batch.query_id,
                    events=by_shard.get(meta_shard, []),
                    seen_counts=batch.seen_counts,
                    dropped=batch.dropped,
                    sent_at=batch.sent_at,
                    partials=batch.partials,
                ),
            )
        )
        return routed

    async def _shard_worker(self, index: int, q: "asyncio.Queue[Any]") -> None:
        while True:
            item = await q.get()
            if isinstance(item, _ShardBarrier):
                item.hit()
                continue
            try:
                if isinstance(item, (bytes, bytearray, memoryview)):
                    # Raw wire frame from the pooled data channel.
                    self.engine.ingest_frame(item)
                else:
                    self.engine.ingest(item)
            except Exception as exc:  # keep ingesting; one bad batch ≠ outage
                self._say(f"shard {index}: ingest failed: {exc!r}")

    # -- query control channel ---------------------------------------------------------

    async def _serve_control(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        msg_type: MsgType,
        payload: bytes,
    ) -> None:
        while True:
            try:
                reply_type, reply = await self._control_request(msg_type, payload)
            except (ScrubError, QueryNotFoundError) as exc:
                reply_type = MsgType.ERROR
                reply = {"error": type(exc).__name__, "message": str(exc)}
            except ProtocolError:
                raise  # corrupt peer; tear the connection down
            except Exception as exc:
                # An unexpected failure (e.g. a dead agent writer raising
                # from deep inside a push) must reach the submitter as a
                # structured ERROR, not a silently closed socket.
                reply_type = MsgType.ERROR
                reply = {"error": "internal", "message": f"{type(exc).__name__}: {exc}"}
                self._say(f"control: request failed: {exc!r}")
            writer.write(encode_message_frame(reply_type, reply))
            await writer.drain()
            if reply_type == MsgType.SHUTDOWN_OK:
                return
            frame = await read_frame(reader)
            if frame is None:
                return
            msg_type, payload = frame

    async def _control_request(
        self, msg_type: MsgType, payload: bytes
    ) -> tuple[MsgType, dict[str, Any]]:
        message = decode_message(payload) if payload else {}
        if msg_type == MsgType.SUBMIT:
            return MsgType.SUBMIT_OK, await self._submit(message)
        if msg_type == MsgType.POLL:
            return MsgType.RESULTS, resultset_to_payload(
                self._poll(message["query_id"])
            )
        if msg_type == MsgType.FINISH:
            return MsgType.RESULTS, resultset_to_payload(
                await self._finish(message["query_id"])
            )
        if msg_type == MsgType.STATS:
            return MsgType.STATS_OK, self._stats()
        if msg_type == MsgType.SHUTDOWN:
            self._stopping.set()
            return MsgType.SHUTDOWN_OK, {}
        raise ProtocolError(f"unexpected {msg_type.name} on control channel")

    async def _submit(self, message: dict[str, Any]) -> dict[str, Any]:
        text = message["query"]
        try:
            policy = RolloutPolicy.from_payload(message.get("rollout"))
        except (KeyError, TypeError, ValueError) as exc:
            raise ScrubValidationError(f"bad rollout policy: {exc}") from exc
        query = parse_query(text)
        validated = validate_query(query, self.registry)
        query_id = self._next_query_id()
        plan = plan_query(validated, query_id)

        resolved = [
            (member.name, member.conn)
            for member in self.fleet.live()
            if target_matches(plan.target, member.description)
        ]
        if not resolved:
            raise ScrubValidationError(
                "query target matches no registered host; check the @[...] "
                "expression and that agents are connected"
            )
        # Rendezvous (highest-random-weight) sampling: each host's rank
        # depends only on (query seed, host name), so fleet churn moves
        # at most the churned host — and the same ranking doubles as the
        # rollout's widening order.
        chosen = rendezvous_sample(
            resolved,
            plan.host_sampling_rate,
            seed=_seed_from(query_id),
            key=lambda pair: pair[0],
        )

        now = self._clock()
        activates_at = plan.start if plan.start is not None else now
        expires_at = activates_at + plan.duration

        planned_names = tuple(name for name, _conn in resolved)
        order_names = tuple(name for name, _conn in chosen)
        rollout: Optional[QueryRollout] = None
        if policy is not None:
            rollout = QueryRollout(query_id, policy, order=order_names)
            initial = list(order_names[: rollout.quota()])
            rollout.note_installed(initial)
            install_now = [(n, c) for n, c in chosen if n in set(initial)]
        else:
            install_now = chosen
        targeted_names = tuple(name for name, _conn in install_now)
        delivery = {name: "connected" for name in targeted_names}
        self.engine.register(
            plan.central_object,
            planned_hosts=len(resolved),
            targeted_hosts=len(install_now),
            targeted_names=targeted_names,
            delivery_state=lambda d=delivery: d,
        )
        if self._journal is not None:
            self._journal.record_submit(
                query_id, text, activates_at, expires_at,
                planned_names, order_names,
                rollout=policy.as_dict() if policy is not None else None,
            )
            if rollout is not None:
                self._journal.record_rollout(
                    query_id, rollout.state, rollout.stage,
                    tuple(rollout.order), tuple(rollout.installed),
                )
        live = _LiveQuery(
            plan=plan,
            text=text,
            activates_at=activates_at,
            expires_at=expires_at,
            planned=planned_names,
            targeted=targeted_names,
            delivery=delivery,
            rollout=rollout,
            controller=self._make_controller(
                query_id, plan, len(resolved), len(install_now)
            ),
        )
        self._running[query_id] = live
        install = self._install_message(query_id, live)
        install_failures: list[str] = []
        for name, conn in install_now:
            try:
                await conn.push(MsgType.INSTALL, install)
            except (ConnectionError, OSError, RuntimeError):
                # The agent died between registration and install.  Count
                # it, flag the host unreachable (so its windows read as
                # degraded, not merely quiet), evict the dead session so
                # a restarted agent can re-register, and tell the
                # submitter in the reply — never fail the whole SUBMIT.
                self.push_failures += 1
                delivery[name] = "unreachable"
                install_failures.append(name)
                await self._evict(
                    name, conn, "install-push-failed",
                    f"install of {query_id} could not be delivered",
                )
        if rollout is not None:
            self._say(
                f"query {query_id} canary on "
                f"{len(install_now) - len(install_failures)}/{len(order_names)} "
                f"host(s) (policy {policy.as_dict()})"
            )
        else:
            self._say(
                f"query {query_id} installed on "
                f"{len(install_now) - len(install_failures)}/{len(resolved)} host(s)"
                + (
                    f" ({len(install_failures)} push failure(s))"
                    if install_failures
                    else ""
                )
            )
        return {
            "query_id": query_id,
            "columns": list(plan.central_object.column_names),
            "planned_hosts": list(planned_names),
            "targeted_hosts": list(targeted_names),
            "install_failures": install_failures,
            "activates_at": activates_at,
            "expires_at": expires_at,
            "rollout": rollout.as_dict() if rollout is not None else None,
            # Central execution mode, so the submitter can interpret any
            # later shard_gaps coverage entries: a pooled daemon names its
            # worker count and how often the supervisor has respawned one.
            "central": {
                "workers": self.workers,
                "worker_respawns": (
                    self.engine.worker_respawns
                    if isinstance(self.engine, ShardPool)
                    else 0
                ),
            },
        }

    def _next_query_id(self) -> str:
        self._sequence += 1
        return f"q{self._sequence:05d}"

    def _poll(self, query_id: str) -> ResultSet:
        done = self._results.get(query_id)
        if done is not None:
            return done
        live = self._running.get(query_id)
        if live is None:
            raise QueryNotFoundError(query_id)
        results = self.engine.results_so_far(query_id)
        if live.rollout is not None:
            results.rollout = live.rollout.as_dict()
        if live.controller is not None:
            results.sampling = live.controller.status()
        return results

    async def _finish(self, query_id: str) -> ResultSet:
        done = self._results.get(query_id)
        if done is not None:
            return done
        live = self._running.pop(query_id, None)
        if live is None:
            raise QueryNotFoundError(query_id)
        for name in live.targeted:
            conn = self.fleet.conn(name)
            if conn is None:
                continue
            try:
                await conn.push(MsgType.UNINSTALL, {"query_id": query_id})
            except (ConnectionError, OSError):
                pass  # agent gone; its query objects expire on their own
        results = self.engine.finish(query_id)
        if live.rollout is not None:
            results.rollout = live.rollout.as_dict()
        if live.controller is not None:
            results.sampling = live.controller.status()
        self._results[query_id] = results
        if self._journal is not None:
            self._journal.record_finish(query_id)
        degraded = len(results.degraded_windows)
        self._say(
            f"query {query_id} finished: {len(results.windows)} window(s)"
            + (f", {degraded} degraded" if degraded else "")
        )
        return results

    def _stats(self) -> dict[str, Any]:
        stats = self.engine.stats
        now = self._clock()
        return {
            # "hosts" stays live-connections-only (what can receive a
            # push right now); "fleet" below is the full membership view
            # including disconnected and stale hosts.
            "hosts": [
                {
                    "host": member.description.name,
                    "services": sorted(member.description.services),
                    "datacenter": member.description.datacenter,
                    "epoch": member.epoch,
                    "lease_age": now - member.last_seen,
                    "query_costs": member.query_costs(),
                }
                for member in self.fleet.live()
            ],
            "fleet": self.fleet.stats(now),
            "running": sorted(self._running),
            "finished": sorted(self._results),
            "queries": {
                query_id: {
                    "targeted": list(live.targeted),
                    "delivery": dict(live.delivery),
                    "activates_at": live.activates_at,
                    "expires_at": live.expires_at,
                }
                for query_id, live in self._running.items()
            },
            # Rollout state machines for running queries; a finished
            # query's final rollout state rides its stored ResultSet.
            "rollouts": {
                query_id: live.rollout.as_dict()
                for query_id, live in self._running.items()
                if live.rollout is not None
            },
            # Closed-loop sampling controllers for running TARGET CI
            # queries (the scrub-shell ``\\rates`` view reads this); a
            # finished query's final state rides its stored ResultSet.
            "controllers": {
                query_id: live.controller.status()
                for query_id, live in self._running.items()
                if live.controller is not None
            },
            "shards": len(self._shard_queues),
            "workers": self.workers,
            "lease_seconds": self._lease_seconds,
            "stale_after": self.fleet.stale_after,
            "push_failures": self.push_failures,
            "journal": self._journal_path,
            "uptime": now - self._started_at,
            "engine": {
                "batches_received": stats.batches_received,
                "events_received": stats.events_received,
                "events_late": stats.events_late,
                "bytes_received": stats.bytes_received,
                "windows_emitted": stats.windows_emitted,
                "rows_emitted": stats.rows_emitted,
                "events_shed": stats.events_shed,
                "quarantines_reported": stats.quarantines_reported,
            },
            # Host-governor quarantines per running query (query -> host ->
            # structured reason) and, when pooled, supervisor health.
            "quarantines": self.engine.quarantines(),
            "pool": (
                self.engine.pool_health()
                if isinstance(self.engine, ShardPool)
                else None
            ),
        }

    # -- the real-clock tick -------------------------------------------------------------

    async def _tick_loop(self) -> None:
        while True:
            await asyncio.sleep(self._tick_interval)
            now = self._clock()
            await self._expire_leases(now)
            await self._rollout_tick(now)
            emitted: list = []
            try:
                emitted = self.engine.advance(now) or []
            except Exception as exc:
                self._say(f"tick: advance failed: {exc!r}")
            try:
                await self._control_tick(emitted, now)
            except Exception as exc:
                self._say(f"tick: control failed: {exc!r}")
            for query_id, live in list(self._running.items()):
                if now >= live.expires_at + self._drain_margin:
                    try:
                        await self._finish(query_id)
                    except Exception as exc:
                        self._say(f"tick: reap of {query_id} failed: {exc!r}")

    async def _expire_leases(self, now: float) -> None:
        """Unregister agents whose lease lapsed (no heartbeat within the
        window).  The dead session is told why — a structured ERROR, not
        a silent close — so a *slow* (not dead) agent knows to redial.
        Past the (lease-derived) age-out threshold the silent host then
        leaves membership entirely: coverage names it ``stale`` and
        pending rollouts stop waiting for it."""
        for member in self.fleet.lease_lapsed(now):
            name, conn = member.name, member.conn
            self._mark_delivery(name, "lease-expired")
            self._say(
                f"agent {name}: lease expired "
                f"({now - member.last_seen:.1f}s > {self._lease_seconds:g}s silent)"
            )
            await self._evict(
                name,
                conn,
                "lease-expired",
                f"no heartbeat for {now - member.last_seen:.1f}s; re-register to resume",
            )
        for member in self.fleet.age_out(now):
            self._mark_delivery(member.name, "stale")
            for query_id, live in self._running.items():
                rollout = live.rollout
                if (
                    rollout is not None
                    and rollout.active
                    and rollout.retire(member.name)
                    and self._journal is not None
                ):
                    self._journal.record_rollout(
                        query_id, rollout.state, rollout.stage,
                        tuple(rollout.order), tuple(rollout.installed),
                    )
            self._say(
                f"agent {member.name}: aged out of the fleet "
                f"({self.fleet.stale_after:g}s silent)"
            )

    # -- rollout lifecycle ----------------------------------------------------------

    async def _rollout_tick(self, now: float) -> None:
        """Drive every active rollout one health-gated step: abort on a
        canary quarantine or cost regression, otherwise bake — and widen
        once the stage has been healthy for ``bake_intervals`` ticks."""
        active = [
            (query_id, live)
            for query_id, live in list(self._running.items())
            if live.rollout is not None
            and live.rollout.active
            and now < live.expires_at
        ]
        if not active:
            return
        try:
            quarantines = self.engine.quarantines()
        except Exception:
            quarantines = {}
        for query_id, live in active:
            rollout = live.rollout
            assert rollout is not None
            abort = rollout.check_health(
                quarantines.get(query_id, {}),
                self.fleet.ewma_by_host(query_id),
            )
            if abort is not None:
                await self._abort_rollout(query_id, live, abort)
                continue
            # A detached (but not aged-out) canary is not evidence of
            # health: freeze the bake until it reconnects or goes stale.
            waiting = [
                name
                for name in rollout.installed
                if (member := self.fleet.member(name)) is not None
                and member.state != MEMBER_STALE
            ]
            if not waiting or any(
                self.fleet.conn(name) is None for name in waiting
            ):
                continue
            if rollout.tick_healthy():
                await self._widen_rollout(query_id, live)

    async def _abort_rollout(
        self, query_id: str, live: _LiveQuery, abort: RolloutAbort
    ) -> None:
        """Kill a rollout: journal the abort, uninstall everywhere, and
        keep the structured reason for POLL/STATS.  The query object
        stays registered so the troubleshooter can still collect what
        the canaries saw."""
        rollout = live.rollout
        assert rollout is not None
        rollout.record_abort(abort)
        if self._journal is not None:
            self._journal.record_rollout(
                query_id, rollout.state, rollout.stage,
                tuple(rollout.order), tuple(rollout.installed),
                abort=abort.as_dict(),
            )
        self._say(
            f"query {query_id} rollout aborted at stage {abort.stage}: "
            f"{abort.reason} on {abort.host} ({abort.detail})"
        )
        for name in rollout.installed:
            conn = self.fleet.conn(name)
            if conn is None:
                continue
            try:
                await conn.push(MsgType.UNINSTALL, {"query_id": query_id})
            except (ConnectionError, OSError, RuntimeError):
                pass  # agent gone; its query objects expire on their own

    async def _widen_rollout(self, query_id: str, live: _LiveQuery) -> None:
        """The stage baked healthy: advance and install the next tranche
        of the rendezvous order."""
        rollout = live.rollout
        assert rollout is not None
        tranche = rollout.widen_tranche()
        if tranche:
            rollout.note_installed(tranche)
            for name in tranche:
                self._join_query(query_id, live, name)
                live.delivery[name] = (
                    "connected" if self.fleet.conn(name) is not None
                    else "disconnected"
                )
            # The helper includes the current rate version, so a tranche
            # installed mid-retune starts at the steady-state rates —
            # canaries and latecomers never sample divergently.
            install = self._install_message(query_id, live)
            for name in tranche:
                conn = self.fleet.conn(name)
                if conn is None:
                    # Currently detached: the INSTALL replays from
                    # _sync_queries when it re-registers (it is in
                    # live.targeted now), so nothing is skipped.
                    continue
                try:
                    await conn.push(MsgType.INSTALL, install)
                except (ConnectionError, OSError, RuntimeError):
                    self.push_failures += 1
                    live.delivery[name] = "unreachable"
                    await self._evict(
                        name, conn, "install-push-failed",
                        f"install of {query_id} could not be delivered",
                    )
        if self._journal is not None:
            self._journal.record_rollout(
                query_id, rollout.state, rollout.stage,
                tuple(rollout.order), tuple(rollout.installed),
            )
        self._say(
            f"query {query_id} rollout {rollout.state}: stage {rollout.stage}, "
            f"{len(rollout.installed)}/{len(rollout.order)} host(s) installed"
        )

    # -- closed-loop sampling --------------------------------------------------------

    async def _control_tick(self, emitted: list, now: float) -> None:
        """Drive every TARGET CI query's rate controller one step: feed
        the windows the engine just closed and the cost counters from
        agent heartbeats, then fan out any retune it issues."""
        with_controller = [
            (query_id, live)
            for query_id, live in list(self._running.items())
            if live.controller is not None
        ]
        if not with_controller:
            return
        for window in emitted:
            live = self._running.get(window.query_id)
            if live is not None and live.controller is not None:
                live.controller.observe_window(window, now)
        for query_id, live in with_controller:
            controller = live.controller
            assert controller is not None
            if now >= live.expires_at:
                continue
            costs: dict[str, Any] = {}
            for name in live.targeted:
                conn = self.fleet.conn(name)
                if conn is None:
                    # A detached host must not freeze the loop on its
                    # last heartbeat forever; it re-reports on rejoin.
                    controller.forget_host(name)
                    continue
                per_query = conn.query_costs.get(query_id)
                if isinstance(per_query, dict):
                    costs[name] = per_query
            controller.observe_costs(costs, now)
            update = controller.tick(now)
            if update is not None:
                await self._apply_rates(query_id, live, update)

    async def _apply_rates(
        self, query_id: str, live: _LiveQuery, update: RateUpdate
    ) -> None:
        """Fan one versioned retune out to the query's hosts.  The
        journal append comes *first*: a daemon killed between journal
        and fan-out recovers with this exact version and replays it over
        the INSTALL path, and agents' version compare makes the replay
        idempotent — laggards converge, up-to-date hosts ignore it."""
        if self._journal is not None:
            self._journal.record_rates(
                query_id,
                update.version,
                update.host_rate,
                update.event_rate,
                update.reason,
            )
        message = {
            "query_id": query_id,
            "rates": {
                "version": update.version,
                "host_rate": update.host_rate,
                "event_rate": update.event_rate,
            },
            # Agents treat a RETUNE for an installed query as a rates
            # refresh; the full INSTALL replay path stays reserved for
            # reconnects.
            "query": live.text,
            "activates_at": live.activates_at,
            "expires_at": live.expires_at,
        }
        for name in live.targeted:
            conn = self.fleet.conn(name)
            if conn is None:
                continue  # replayed by _sync_queries when it re-registers
            try:
                await conn.push(MsgType.INSTALL, message)
            except (ConnectionError, OSError, RuntimeError):
                self.push_failures += 1
                live.delivery[name] = "unreachable"
        self._say(
            f"query {query_id} retuned to v{update.version}: "
            f"event_rate={update.event_rate:.4g} ({update.reason})"
        )


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="scrubd", description="Standalone ScrubCentral daemon."
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT, help="TCP port (0 = ephemeral)")
    parser.add_argument("--shards", type=int, default=4, help="ingest shard queues")
    parser.add_argument(
        "--workers", type=int, default=0,
        help="shard worker processes for the central engine "
        "(0 = single-process serial engine)",
    )
    parser.add_argument(
        "--ring-kib", type=int, default=DEFAULT_RING_CAPACITY // 1024,
        metavar="KIB",
        help="per-worker shared-memory ring size in KiB for --workers "
        "ingest; full rings spill to the pipe, and unsupported "
        "platforms fall back to pipe-bytes entirely",
    )
    parser.add_argument(
        "--grace", type=float, default=DEFAULT_GRACE_SECONDS,
        help="seconds past a window end before it closes",
    )
    parser.add_argument("--tick", type=float, default=0.25, help="advance/reap interval (s)")
    parser.add_argument("--queue-depth", type=int, default=64, help="per-shard queue bound")
    parser.add_argument(
        "--lease", type=float, default=DEFAULT_LEASE_SECONDS,
        help="seconds without an agent heartbeat before its lease expires",
    )
    parser.add_argument(
        "--stale-after", type=float, default=None, metavar="SECONDS",
        help="silence before a host ages out of fleet membership as "
        "'stale' (default: 2x the lease window, so both run on one clock)",
    )
    parser.add_argument(
        "--journal", metavar="PATH", default=None,
        help="append-only query journal; open spans resume on restart",
    )
    parser.add_argument(
        "--budget-wall-ms", type=float, default=None, metavar="MS",
        help="per-host wall budget (ms per second) that TARGET CI rate "
        "controllers clamp against, backing off before the agents' own "
        "governors engage (default: no daemon-side clamp)",
    )
    args = parser.parse_args(argv)

    daemon = ScrubDaemon(
        host=args.host,
        port=args.port,
        shards=args.shards,
        grace_seconds=args.grace,
        tick_interval=args.tick,
        queue_depth=args.queue_depth,
        lease_seconds=args.lease,
        stale_after=args.stale_after,
        journal_path=args.journal,
        workers=args.workers,
        ring_kib=args.ring_kib,
        impact_budget=(
            ImpactBudget(max_wall_seconds=args.budget_wall_ms / 1000.0)
            if args.budget_wall_ms is not None
            else None
        ),
        log=sys.stdout,
    )
    try:
        asyncio.run(daemon.run())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
