"""Abstract syntax tree for the Scrub query language.

Nodes are frozen dataclasses; :func:`unparse` renders any node back to
query text (used in error messages, the query-object wire format, and
round-trip tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Union

__all__ = [
    "Expr",
    "Literal",
    "FieldRef",
    "BinaryOp",
    "UnaryOp",
    "Comparison",
    "InList",
    "Between",
    "IsNull",
    "BoolOp",
    "AggregateCall",
    "SelectItem",
    "TargetNode",
    "TargetAll",
    "ServiceIn",
    "ServersIn",
    "ServerEq",
    "DatacenterEq",
    "TargetAnd",
    "SamplingSpec",
    "SpanSpec",
    "TargetCISpec",
    "Query",
    "AGGREGATE_FUNCS",
    "normalize_expr",
    "unparse",
    "walk_exprs",
]

AGGREGATE_FUNCS = frozenset(
    {"COUNT", "SUM", "AVG", "MIN", "MAX", "COUNT_DISTINCT", "TOP", "QUANTILE"}
)


# -- expressions ---------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: Any  # int | float | str | bool | None


@dataclass(frozen=True)
class FieldRef:
    """A (possibly qualified) field reference: ``bid.user_id`` or ``user_id``.

    ``event_type`` is None for unqualified references; the validator
    resolves them to a unique source event type.  ``field`` may itself be
    a dotted path into a nested object field.
    """

    event_type: Optional[str]
    field: str

    @property
    def qualified(self) -> str:
        return f"{self.event_type}.{self.field}" if self.event_type else self.field


@dataclass(frozen=True)
class BinaryOp:
    op: str  # + - * / %
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnaryOp:
    op: str  # '-' or 'NOT'
    operand: "Expr"


@dataclass(frozen=True)
class Comparison:
    op: str  # = != < <= > >= LIKE
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class InList:
    expr: "Expr"
    values: tuple[Literal, ...]
    negated: bool = False


@dataclass(frozen=True)
class Between:
    expr: "Expr"
    low: "Expr"
    high: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class IsNull:
    expr: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class BoolOp:
    op: str  # AND | OR
    terms: tuple["Expr", ...]


@dataclass(frozen=True)
class AggregateCall:
    """An aggregate function application.

    ``arg`` is None only for ``COUNT(*)``.  ``k`` is set only for
    ``TOP(k, expr)``; ``q`` only for ``QUANTILE(expr, q)``.
    """

    func: str
    arg: Optional["Expr"] = None
    k: Optional[int] = None
    q: Optional[float] = None

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCS:
            raise ValueError(f"unknown aggregate: {self.func}")
        if self.func == "TOP" and (self.k is None or self.k <= 0):
            raise ValueError("TOP requires a positive k")
        if self.func == "QUANTILE":
            if self.arg is None:
                raise ValueError("QUANTILE requires an argument expression")
            if self.q is None or not 0.0 <= self.q <= 1.0:
                raise ValueError("QUANTILE requires q in [0, 1]")


Expr = Union[
    Literal, FieldRef, BinaryOp, UnaryOp, Comparison, InList, Between, IsNull,
    BoolOp, AggregateCall,
]


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


# -- targets (@[...]) -----------------------------------------------------------


@dataclass(frozen=True)
class TargetAll:
    pass


@dataclass(frozen=True)
class ServiceIn:
    services: tuple[str, ...]


@dataclass(frozen=True)
class ServersIn:
    hosts: tuple[str, ...]


@dataclass(frozen=True)
class ServerEq:
    host: str


@dataclass(frozen=True)
class DatacenterEq:
    datacenter: str


@dataclass(frozen=True)
class TargetAnd:
    terms: tuple["TargetNode", ...]


TargetNode = Union[TargetAll, ServiceIn, ServersIn, ServerEq, DatacenterEq, TargetAnd]


# -- query-level specs -----------------------------------------------------------


@dataclass(frozen=True)
class SamplingSpec:
    """Two-level sampling rates in (0, 1]; 1.0 means no sampling."""

    host_rate: float = 1.0
    event_rate: float = 1.0

    def __post_init__(self) -> None:
        for label, rate in (("host", self.host_rate), ("event", self.event_rate)):
            if not 0.0 < rate <= 1.0:
                raise ValueError(f"{label} sampling rate must be in (0, 1], got {rate}")

    @property
    def is_sampled(self) -> bool:
        return self.host_rate < 1.0 or self.event_rate < 1.0


@dataclass(frozen=True)
class TargetCISpec:
    """A ``TARGET CI x%`` accuracy goal: the user asks the system to keep
    each window's 95% error bound within ``relative_error`` of the
    estimate, and lets the sampling controller pick the cheapest
    (host, event) rates that deliver it (ROADMAP: closed-loop
    accuracy-aware sampling)."""

    relative_error: float
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 < self.relative_error < 1.0:
            raise ValueError(
                f"TARGET CI must be in (0%, 100%), got {self.relative_error * 100:g}%"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(
                f"TARGET CI confidence must be in (0, 1), got {self.confidence}"
            )


@dataclass(frozen=True)
class SpanSpec:
    """Query span: start time (None = now) and finite duration in seconds.

    The finite timespan guards against users forgetting to end queries
    (paper Section 3.2).
    """

    start: Optional[float] = None
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.duration is not None and self.duration <= 0:
            raise ValueError("query duration must be positive")


@dataclass(frozen=True)
class Query:
    select_items: tuple[SelectItem, ...]
    sources: tuple[str, ...]
    where: Optional[Expr] = None
    target: TargetNode = field(default_factory=TargetAll)
    sampling: SamplingSpec = field(default_factory=SamplingSpec)
    #: Closed-loop accuracy goal (``TARGET CI x%``); None = static rates.
    target_ci: Optional[TargetCISpec] = None
    span: SpanSpec = field(default_factory=SpanSpec)
    window: Optional[float] = None  # window length, seconds
    #: Sliding step in seconds; None = tumbling (the paper's default —
    #: sliding windows are its suggested extension).
    slide: Optional[float] = None
    #: Pre-aggregate on the hosts and ship partial aggregates instead of
    #: events (an explicitly opt-in deviation from the paper's central-
    #: execution default, provided for the DESIGN.md ablation).
    host_aggregate: bool = False
    group_by: tuple[Expr, ...] = ()
    #: Post-aggregation group filter (SQL HAVING); evaluated at window
    #: close over group keys and aggregate results.
    having: Optional[Expr] = None

    @property
    def is_join(self) -> bool:
        return len(self.sources) > 1

    def aggregates(self) -> list[AggregateCall]:
        """All aggregate calls in the SELECT list and HAVING, in order."""
        found: list[AggregateCall] = []
        exprs = [item.expr for item in self.select_items]
        if self.having is not None:
            exprs.append(self.having)
        for expr in exprs:
            for node in walk_exprs(expr):
                if isinstance(node, AggregateCall):
                    found.append(node)
        return found

    @property
    def is_aggregating(self) -> bool:
        return bool(self.group_by) or bool(self.aggregates())


# -- traversal -----------------------------------------------------------------


def walk_exprs(node: Expr) -> Iterator[Expr]:
    """Yield *node* and every expression beneath it, pre-order."""
    yield node
    if isinstance(node, (BinaryOp, Comparison)):
        yield from walk_exprs(node.left)
        yield from walk_exprs(node.right)
    elif isinstance(node, UnaryOp):
        yield from walk_exprs(node.operand)
    elif isinstance(node, BoolOp):
        for term in node.terms:
            yield from walk_exprs(term)
    elif isinstance(node, InList):
        yield from walk_exprs(node.expr)
        yield from node.values
    elif isinstance(node, Between):
        yield from walk_exprs(node.expr)
        yield from walk_exprs(node.low)
        yield from walk_exprs(node.high)
    elif isinstance(node, IsNull):
        yield from walk_exprs(node.expr)
    elif isinstance(node, AggregateCall) and node.arg is not None:
        yield from walk_exprs(node.arg)


def normalize_expr(node: Expr) -> Expr:
    """Return a canonical structural form of *node*.

    Expressions that compile to identical closures should normalize to
    equal (and therefore hash-equal) ASTs, so the compilation cache keys
    on meaning rather than parse shape.  The only rewrite performed is
    flattening directly nested AND/OR chains — ``AND(a, AND(b, c))`` and
    ``AND(a, b, c)`` evaluate identically under three-valued logic
    because AND/OR are variadic here and short-circuit order over the
    flattened term list is preserved.  Nothing else is reordered or
    simplified: term order is load-bearing (NULL-propagation tests pin
    it) and literal folding belongs to the validator, not the cache key.
    """
    if isinstance(node, BoolOp):
        flat: list[Expr] = []
        for term in node.terms:
            term = normalize_expr(term)
            if isinstance(term, BoolOp) and term.op == node.op:
                flat.extend(term.terms)
            else:
                flat.append(term)
        return BoolOp(node.op, tuple(flat))
    if isinstance(node, BinaryOp):
        return BinaryOp(node.op, normalize_expr(node.left), normalize_expr(node.right))
    if isinstance(node, UnaryOp):
        return UnaryOp(node.op, normalize_expr(node.operand))
    if isinstance(node, Comparison):
        return Comparison(node.op, normalize_expr(node.left), normalize_expr(node.right))
    if isinstance(node, InList):
        return InList(normalize_expr(node.expr), node.values, node.negated)
    if isinstance(node, Between):
        return Between(
            normalize_expr(node.expr),
            normalize_expr(node.low),
            normalize_expr(node.high),
            node.negated,
        )
    if isinstance(node, IsNull):
        return IsNull(normalize_expr(node.expr), node.negated)
    if isinstance(node, AggregateCall) and node.arg is not None:
        return AggregateCall(node.func, normalize_expr(node.arg), node.k, node.q)
    return node


# -- unparser -----------------------------------------------------------------


def _fmt_duration(seconds: float) -> str:
    for unit, factor in (("d", 86400.0), ("h", 3600.0), ("m", 60.0), ("s", 1.0)):
        if seconds >= factor and (seconds / factor) == int(seconds / factor):
            return f"{int(seconds / factor)}{unit}"
    return f"{int(round(seconds * 1000))}ms"


def _fmt_literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


def unparse(node: Any) -> str:
    """Render an AST node (expression, target, or whole query) as text."""
    if isinstance(node, Query):
        return _unparse_query(node)
    if isinstance(node, Literal):
        return _fmt_literal(node.value)
    if isinstance(node, FieldRef):
        return node.qualified
    if isinstance(node, BinaryOp):
        return f"({unparse(node.left)} {node.op} {unparse(node.right)})"
    if isinstance(node, UnaryOp):
        if node.op == "NOT":
            return f"NOT ({unparse(node.operand)})"
        return f"(-{unparse(node.operand)})"
    if isinstance(node, Comparison):
        return f"{unparse(node.left)} {node.op} {unparse(node.right)}"
    if isinstance(node, InList):
        values = ", ".join(unparse(v) for v in node.values)
        negation = "NOT " if node.negated else ""
        return f"{unparse(node.expr)} {negation}IN ({values})"
    if isinstance(node, Between):
        negation = "NOT " if node.negated else ""
        return (
            f"{unparse(node.expr)} {negation}BETWEEN "
            f"{unparse(node.low)} AND {unparse(node.high)}"
        )
    if isinstance(node, IsNull):
        tail = "IS NOT NULL" if node.negated else "IS NULL"
        return f"{unparse(node.expr)} {tail}"
    if isinstance(node, BoolOp):
        joined = f" {node.op} ".join(unparse(t) for t in node.terms)
        return f"({joined})"
    if isinstance(node, AggregateCall):
        if node.func == "COUNT" and node.arg is None:
            return "COUNT(*)"
        if node.func == "TOP":
            return f"TOP({node.k}, {unparse(node.arg)})"
        if node.func == "QUANTILE":
            return f"QUANTILE({unparse(node.arg)}, {node.q:g})"
        return f"{node.func}({unparse(node.arg)})"
    if isinstance(node, SelectItem):
        text = unparse(node.expr)
        return f"{text} AS {node.alias}" if node.alias else text
    if isinstance(node, TargetAll):
        return "ALL"
    if isinstance(node, ServiceIn):
        return "Service in " + ", ".join(node.services)
    if isinstance(node, ServersIn):
        return "Servers in (" + ", ".join(node.hosts) + ")"
    if isinstance(node, ServerEq):
        return f"Server = {node.host}"
    if isinstance(node, DatacenterEq):
        return f"Datacenter = {node.datacenter}"
    if isinstance(node, TargetAnd):
        return " and ".join(unparse(t) for t in node.terms)
    raise TypeError(f"cannot unparse {type(node).__name__}")


def _unparse_query(q: Query) -> str:
    parts = [
        "SELECT " + ", ".join(unparse(item) for item in q.select_items),
        "FROM " + ", ".join(q.sources),
    ]
    if q.where is not None:
        parts.append("WHERE " + unparse(q.where))
    if not isinstance(q.target, TargetAll):
        parts.append(f"@[{unparse(q.target)}]")
    if q.sampling.host_rate < 1.0:
        parts.append(f"SAMPLE HOSTS {q.sampling.host_rate * 100:g}%")
    if q.sampling.event_rate < 1.0:
        parts.append(f"SAMPLE EVENTS {q.sampling.event_rate * 100:g}%")
    if q.target_ci is not None:
        parts.append(f"TARGET CI {q.target_ci.relative_error * 100:g}%")
    if q.span.start is not None:
        parts.append(f"START {q.span.start:g}")
    if q.span.duration is not None:
        parts.append(f"DURATION {_fmt_duration(q.span.duration)}")
    if q.window is not None:
        window_text = f"WINDOW {_fmt_duration(q.window)}"
        if q.slide is not None:
            window_text += f" SLIDE {_fmt_duration(q.slide)}"
        parts.append(window_text)
    if q.host_aggregate:
        parts.append("AGGREGATE ON HOSTS")
    if q.group_by:
        parts.append("GROUP BY " + ", ".join(unparse(g) for g in q.group_by))
    if q.having is not None:
        parts.append("HAVING " + unparse(q.having))
    return "\n".join(parts) + ";"
