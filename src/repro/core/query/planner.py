"""Query planning: splitting a validated query into query objects.

Paper Section 4: the server "creates a number of query objects tagged
with this unique query identifier.  A query object representing the
selection and projection operators is sent to the hosts involved in the
query ...  Another query object representing the join, group-by and
aggregation operators is sent to ScrubCentral."

The split implemented here:

* WHERE is flattened into AND-conjuncts.  A conjunct whose field
  references all belong to one event type is **pushed down** to the
  host-side query object for that type (selection on the host shrinks
  the data shipped).  Conjuncts spanning event types — which can only be
  evaluated after the equi-join — and constant conjuncts stay in the
  central residual predicate.
* The **projection** for each event type is the set of fields of that
  type needed at ScrubCentral (SELECT list, GROUP BY, residual
  predicate).  System fields (request id, timestamp, host) are always
  retained — they are the bounded metadata that supports equi-joins and
  windowing.
* Defaults are applied here: a default tumbling window and a default
  finite query span (queries must end; paper Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .ast import (
    AggregateCall,
    BoolOp,
    Expr,
    FieldRef,
    Query,
    SamplingSpec,
    SelectItem,
    TargetCISpec,
    TargetNode,
    walk_exprs,
)
from .validator import ValidatedQuery

__all__ = [
    "DEFAULT_WINDOW_SECONDS",
    "DEFAULT_DURATION_SECONDS",
    "HostAggregationSpec",
    "HostQueryObject",
    "CentralQueryObject",
    "QueryPlan",
    "plan_query",
    "unique_aggregates",
]


def unique_aggregates(
    select_items: tuple[SelectItem, ...],
    having: Optional[Expr] = None,
) -> tuple[AggregateCall, ...]:
    """Unique aggregate calls across a SELECT list (and HAVING clause), in
    first-appearance order.  Both the host agent (pre-aggregation) and
    ScrubCentral index partial-aggregate vectors by this order, so it is
    defined once.  HAVING-only aggregates come after the SELECT ones and
    still get a state — the filter needs their results even though no
    output column shows them."""
    uniq: list[AggregateCall] = []
    exprs = [item.expr for item in select_items]
    if having is not None:
        exprs.append(having)
    for expr in exprs:
        for node in walk_exprs(expr):
            if isinstance(node, AggregateCall) and node not in uniq:
                uniq.append(node)
    return tuple(uniq)


@dataclass(frozen=True)
class HostAggregationSpec:
    """What a host pre-aggregates when AGGREGATE ON HOSTS is requested."""

    group_by: tuple[Expr, ...]
    aggregates: tuple[AggregateCall, ...]

#: Default tumbling window when the query does not specify one.
DEFAULT_WINDOW_SECONDS = 10.0
#: Default query span duration ("both have default values", Section 3.2).
DEFAULT_DURATION_SECONDS = 300.0


@dataclass(frozen=True)
class HostQueryObject:
    """Selection + projection + sampling for one event type on one host set.

    This is the *only* query work that runs on application hosts.
    """

    query_id: str
    event_type: str
    predicate: Optional[Expr]  # conjuncts referencing only this event type
    projection: tuple[str, ...]  # root payload fields to retain
    event_sampling_rate: float = 1.0
    # The window length is shipped to hosts so the agent can bin its
    # matched-event counters (M_i) per window — one dict increment per
    # matched event — giving the central estimator exact per-window
    # machine totals for the error bounds of Eqs. 1-3.
    window_seconds: float = DEFAULT_WINDOW_SECONDS
    #: When set, the host aggregates matching events itself and ships
    #: per-window partial aggregates instead of events (opt-in ablation
    #: mode; see DESIGN.md §7).
    aggregation: Optional[HostAggregationSpec] = None

    @property
    def selects_everything(self) -> bool:
        return self.predicate is None


@dataclass(frozen=True)
class CentralQueryObject:
    """Join + group-by + aggregation, executed only at ScrubCentral."""

    query_id: str
    sources: tuple[str, ...]
    select_items: tuple[SelectItem, ...]
    group_by: tuple[Expr, ...]
    residual_predicate: Optional[Expr]
    window_seconds: float
    column_names: tuple[str, ...]
    sampling: SamplingSpec = field(default_factory=SamplingSpec)
    #: Sliding step (seconds); None = tumbling windows.
    slide_seconds: Optional[float] = None
    #: Hosts ship partial aggregates instead of events.
    host_aggregated: bool = False
    #: Post-aggregation group filter, applied at window close.
    having: Optional[Expr] = None
    #: Closed-loop accuracy goal; makes the query estimable even at full
    #: rates (exact, zero-width bounds) so the sampling controller sees
    #: variance telemetry from the very first window.
    target_ci: Optional[TargetCISpec] = None

    @property
    def is_join(self) -> bool:
        return len(self.sources) > 1


@dataclass(frozen=True)
class QueryPlan:
    """Everything the server needs to install and run one query."""

    query_id: str
    query: Query
    host_objects: tuple[HostQueryObject, ...]
    central_object: CentralQueryObject
    target: TargetNode
    host_sampling_rate: float
    start: Optional[float]  # None = activate immediately
    duration: float

    def host_object_for(self, event_type: str) -> HostQueryObject:
        for obj in self.host_objects:
            if obj.event_type == event_type:
                return obj
        raise KeyError(event_type)


def plan_query(validated: ValidatedQuery, query_id: str) -> QueryPlan:
    """Split *validated* into host and central query objects."""
    query = validated.query
    host_conjuncts: dict[str, list[Expr]] = {s: [] for s in query.sources}
    central_conjuncts: list[Expr] = []

    for conjunct in _conjuncts(query.where):
        owners = _referenced_types(conjunct)
        if len(owners) == 1:
            host_conjuncts[next(iter(owners))].append(conjunct)
        else:
            central_conjuncts.append(conjunct)

    projections = _projections(query, central_conjuncts)
    window_seconds = query.window if query.window is not None else DEFAULT_WINDOW_SECONDS

    aggregation = None
    if query.host_aggregate:
        aggregation = HostAggregationSpec(
            group_by=query.group_by,
            aggregates=unique_aggregates(query.select_items, query.having),
        )

    host_objects = tuple(
        HostQueryObject(
            query_id=query_id,
            event_type=source,
            predicate=_conjoin(host_conjuncts[source]),
            projection=projections[source],
            event_sampling_rate=query.sampling.event_rate,
            window_seconds=window_seconds,
            aggregation=aggregation,
        )
        for source in query.sources
    )

    central_object = CentralQueryObject(
        query_id=query_id,
        sources=query.sources,
        select_items=query.select_items,
        group_by=query.group_by,
        residual_predicate=_conjoin(central_conjuncts),
        window_seconds=window_seconds,
        column_names=validated.column_names,
        sampling=query.sampling,
        slide_seconds=query.slide,
        host_aggregated=query.host_aggregate,
        having=query.having,
        target_ci=query.target_ci,
    )

    duration = (
        query.span.duration if query.span.duration is not None else DEFAULT_DURATION_SECONDS
    )
    return QueryPlan(
        query_id=query_id,
        query=query,
        host_objects=host_objects,
        central_object=central_object,
        target=query.target,
        host_sampling_rate=query.sampling.host_rate,
        start=query.span.start,
        duration=duration,
    )


def _conjuncts(predicate: Optional[Expr]) -> list[Expr]:
    """Flatten nested top-level ANDs into a conjunct list."""
    if predicate is None:
        return []
    if isinstance(predicate, BoolOp) and predicate.op == "AND":
        out: list[Expr] = []
        for term in predicate.terms:
            out.extend(_conjuncts(term))
        return out
    return [predicate]


def _conjoin(conjuncts: list[Expr]) -> Optional[Expr]:
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return BoolOp("AND", tuple(conjuncts))


def _referenced_types(expr: Expr) -> set[str]:
    return {
        node.event_type
        for node in walk_exprs(expr)
        if isinstance(node, FieldRef) and node.event_type is not None
    }


def _projections(
    query: Query, central_conjuncts: list[Expr]
) -> dict[str, tuple[str, ...]]:
    """Per-source set of root payload fields ScrubCentral will need."""
    needed: dict[str, set[str]] = {s: set() for s in query.sources}

    def note(expr: Expr) -> None:
        for node in walk_exprs(expr):
            if isinstance(node, FieldRef) and node.event_type in needed:
                root = node.field.split(".", 1)[0]
                needed[node.event_type].add(root)

    for item in query.select_items:
        note(item.expr)
    for group in query.group_by:
        note(group)
    for conjunct in central_conjuncts:
        note(conjunct)
    if query.having is not None:
        note(query.having)

    # System fields (request_id/timestamp/host) are kept implicitly by
    # Event.project; exclude them from the payload projection list.
    from ..events import SYSTEM_FIELDS

    return {
        source: tuple(sorted(fields - set(SYSTEM_FIELDS)))
        for source, fields in needed.items()
    }
