"""Generated, schema-specialized host query plans (the host fast path).

The closure compiler in ``compile.py`` builds one small Python function
per AST node and chains them; evaluating a predicate then costs one
Python call *per node*, which is exactly the per-event overhead the
paper's minimal-impact goal cannot afford on application hosts.  This
module is the **codegen backend**: it emits straight-line Python source
for the fused *selection → sampling-decision* pipeline of every armed
host query, specialized at install time —

* field access is resolved once (payload ``dict.get``, system-field
  parameters, dotted-path fallback only for dotted names) and **shared**
  across all queries armed on the same event type;
* constants are inlined into the source; LIKE regexes and IN-sets are
  hoisted into the closure environment;
* the per-query sampling decision (the splitmix64 hash of
  ``sampling.EventSampler``) is unrolled inline, sharing the
  request-id pre-mix across queries;
* SQL three-valued logic is preserved **exactly**: the closure compiler
  remains the semantic oracle, and the Hypothesis differential suite
  pins interpreter, closures and generated code to identical outcomes,
  including which inputs raise ``TypeError``.

The output of :func:`build_processor` is one ``exec``-compiled function
per (event type, armed-query set): ``process(data, rid, now)``.  For
**fused** entries (no governor, no host aggregation — the common case)
the generated code carries a match all the way through: seen/window
accounting, projection (or the shared full-payload event), and the
bounded-buffer append with exact shipped/dropped counters — no
interpreter loop, no intermediate objects on the reject path, one
``Event`` per shipped projection.  Non-fused entries (governed or
aggregating) get two mask bits each — bit ``2i`` selection matched, bit
``2i+1`` sampler keep — returned in the high bits (``n | mask << 32``)
for ``ScrubAgent``'s reference walk; all-fused groups return the bare
matched count.

Anything the emitter cannot translate raises :class:`CodegenUnsupported`
and the agent falls back to the closure compiler — behaviour, not speed,
is the contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from time import perf_counter
from typing import Any, Callable, Mapping, Optional

from ..events.schema import HOST, REQUEST_ID, TIMESTAMP
from .ast import (
    AggregateCall,
    Between,
    BinaryOp,
    BoolOp,
    Comparison,
    Expr,
    FieldRef,
    InList,
    IsNull,
    Literal,
    UnaryOp,
    walk_exprs,
)
from .compile import like_to_regex

__all__ = [
    "ArmedQuery",
    "CodegenUnsupported",
    "COUNT_MASK",
    "FLUSH_DUE",
    "build_entry",
    "build_processor",
    "compile_row_expr",
    "compile_row_predicate",
]

_MASK64 = (1 << 64) - 1
#: Indentation ceiling for generated code.  Deep BoolOp chains nest one
#: ``else:`` level per term; past this the emitter bails out to the
#: closure compiler rather than fight the CPython parser.
_MAX_INDENT = 64

_CMP_OPS = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


class CodegenUnsupported(Exception):
    """The emitter cannot translate this expression; use closures."""


def _get_path(data: Mapping[str, Any], parts: tuple[str, ...]) -> Any:
    """Dotted-path fallback, mirroring ``Event._get_path`` exactly."""
    node: Any = data
    for part in parts:
        if not isinstance(node, Mapping):
            return None
        node = node.get(part)
        if node is None:
            return None
    return node


def _splitmix64(x: int) -> int:
    # Local copy of sampling._splitmix64 (avoids a cross-module import
    # on the hot path; the constants are pinned by the sampler tests).
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


@lru_cache(maxsize=256)
def _code_for(source: str):
    """Compile generated source once; identical (query set, schema)
    pairs — e.g. a reinstall of the same span — reuse the code object."""
    return compile(source, "<scrub-codegen>", "exec")


# -- the statement emitter ----------------------------------------------------


class _Emitter:
    """Accumulates generated statements plus their closure environment."""

    def __init__(self, env: dict[str, Any]) -> None:
        self.lines: list[str] = []
        self.indent = 1
        self.env = env
        self._counter = 0
        self._fields: dict[str, str] = {}  # field name -> local var

    def emit(self, line: str) -> None:
        if self.indent > _MAX_INDENT:
            raise CodegenUnsupported("expression nests too deeply")
        self.lines.append("    " * self.indent + line)

    def name(self, prefix: str = "t") -> str:
        self._counter += 1
        return f"_{prefix}{self._counter}"

    def const(self, value: Any, prefix: str) -> str:
        """Hoist *value* into the closure environment; returns its name."""
        name = self.name(prefix)
        self.env[name] = value
        return name


def _literal_atom(em: _Emitter, value: Any) -> str:
    if value is None or isinstance(value, (bool, int, str)):
        return repr(value)
    if isinstance(value, float):
        if value == value and value not in (float("inf"), float("-inf")):
            return repr(value)  # repr round-trips finite floats
        return em.const(value, "c")
    return em.const(value, "c")


def _is_const_atom(atom: str) -> bool:
    """True when *atom* is an inline literal repr (not a variable).

    Variables are ``_``-prefixed temporaries/env names or the
    dispatcher parameters ``rid``/``now``; everything else came out of
    :func:`_literal_atom`.
    """
    return not (atom.startswith("_") or atom == "rid" or atom == "now")


def _ident_is(atom: str, singleton: str) -> str:
    """Source fragment for ``atom is <singleton>`` (None/True/False),
    constant-folded for literal atoms — both as an optimization and
    because CPython warns on ``is`` with a literal (and this repo
    promotes warnings to errors)."""
    if _is_const_atom(atom):
        return "True" if atom == singleton else "False"
    return f"({atom}) is {singleton}"


def _load_row_field(em: _Emitter, field: str) -> str:
    """Field access for plain dict rows: ``row.get(field)`` (the
    differential-oracle mode; no system fields, no dotted fallback)."""
    var = em._fields.get(field)
    if var is None:
        var = em.name("f")
        em.emit(f"{var} = _get(row, {field!r})")
        em._fields[field] = var
    return var


def _load_event_field(em: _Emitter, field: str) -> str:
    """Field access replicating ``Event.get`` over the raw payload dict
    plus the system-field parameters of the dispatcher."""
    if field == REQUEST_ID:
        return "rid"
    if field == TIMESTAMP:
        return "now"
    if field == HOST:
        return "_HOST"
    var = em._fields.get(field)
    if var is not None:
        return var
    var = em.name("f")
    em.emit(f"{var} = _get(data, {field!r})")
    if "." in field:
        parts = tuple(field.split("."))
        em.emit(f"if {var} is None and {field!r} not in data:")
        em.emit(f"    {var} = _GP(data, {parts!r})")
    em._fields[field] = var
    return var


def _emit_expr(em: _Emitter, expr: Expr, load_field) -> str:
    """Emit statements computing *expr*; returns the atom (a variable
    name or an inline literal) holding its value."""
    if isinstance(expr, Literal):
        return _literal_atom(em, expr.value)

    if isinstance(expr, FieldRef):
        # Host predicates run on single events of a known type; the
        # qualifier is resolved away (same as _host_field_getter).
        return load_field(em, expr.field)

    if isinstance(expr, BinaryOp):
        a = _emit_expr(em, expr.left, load_field)
        b = _emit_expr(em, expr.right, load_field)
        t = em.name()
        op = expr.op
        if op in ("+", "-", "*"):
            em.emit(
                f"{t} = None if {_ident_is(a, 'None')} or {_ident_is(b, 'None')} "
                f"else ({a}) {op} ({b})"
            )
        elif op in ("/", "%"):
            em.emit(
                f"{t} = None if {_ident_is(a, 'None')} or {_ident_is(b, 'None')} "
                f"or ({b}) == 0 else ({a}) {op} ({b})"
            )
        else:
            raise CodegenUnsupported(f"arithmetic operator {op!r}")
        return t

    if isinstance(expr, UnaryOp):
        a = _emit_expr(em, expr.operand, load_field)
        t = em.name()
        if expr.op == "-":
            em.emit(f"{t} = None if {_ident_is(a, 'None')} else -({a})")
        elif expr.op == "NOT":
            em.emit(f"{t} = None if {_ident_is(a, 'None')} else (not ({a}))")
        else:
            raise CodegenUnsupported(f"unary operator {expr.op!r}")
        return t

    if isinstance(expr, Comparison):
        return _emit_comparison(em, expr, load_field)

    if isinstance(expr, InList):
        return _emit_in(em, expr, load_field)

    if isinstance(expr, Between):
        return _emit_between(em, expr, load_field)

    if isinstance(expr, IsNull):
        a = _emit_expr(em, expr.expr, load_field)
        t = em.name()
        test = _ident_is(a, "None")
        em.emit(f"{t} = not ({test})" if expr.negated else f"{t} = {test}")
        return t

    if isinstance(expr, BoolOp):
        return _emit_boolop(em, expr, load_field)

    if isinstance(expr, AggregateCall):
        raise CodegenUnsupported("aggregate call in a per-row expression")

    raise CodegenUnsupported(f"cannot emit node {type(expr).__name__}")


def _emit_comparison(em: _Emitter, expr: Comparison, load_field) -> str:
    a = _emit_expr(em, expr.left, load_field)
    b = _emit_expr(em, expr.right, load_field)
    t = em.name()
    if expr.op == "LIKE":
        if isinstance(expr.right, Literal) and isinstance(expr.right.value, str):
            # The common shape (the validator requires literal patterns):
            # hoist the compiled regex's bound fullmatch.
            rx = em.const(like_to_regex(expr.right.value).fullmatch, "rx")
            em.emit(
                f"{t} = None if {_ident_is(a, 'None')} "
                f"else ({rx}(str(({a}))) is not None)"
            )
        else:
            em.emit(
                f"{t} = None if {_ident_is(a, 'None')} or {_ident_is(b, 'None')} "
                f"else (_LRE(({b})).fullmatch(str(({a}))) is not None)"
            )
            em.env.setdefault("_LRE", like_to_regex)
        return t
    py_op = _CMP_OPS.get(expr.op)
    if py_op is None:
        raise CodegenUnsupported(f"comparison operator {expr.op!r}")
    em.emit(f"if {_ident_is(a, 'None')} or {_ident_is(b, 'None')}: {t} = None")
    em.emit("else:")
    em.emit("    try:")
    em.emit(f"        {t} = ({a}) {py_op} ({b})")
    em.emit("    except TypeError:")
    em.emit(f"        {t} = None")
    return t


def _emit_in(em: _Emitter, expr: InList, load_field) -> str:
    a = _emit_expr(em, expr.expr, load_field)
    values = frozenset(v.value for v in expr.values)
    contains_null = any(v.value is None for v in expr.values)
    sname = em.const(values, "in")
    t = em.name()
    em.emit(f"if {_ident_is(a, 'None')}: {t} = None")
    em.emit("else:")
    em.emit("    try:")
    em.emit(f"        {t} = ({a}) in {sname}")
    em.emit("    except TypeError:")
    em.emit(f"        {t} = None")
    em.emit("    else:")
    if contains_null:
        # SQL: x IN (..., NULL) is UNKNOWN on a miss.
        decided = "False" if expr.negated else "True"
        em.emit(f"        {t} = {decided} if {t} else None")
    elif expr.negated:
        em.emit(f"        {t} = not {t}")
    else:
        em.emit("        pass")
    return t


def _emit_between(em: _Emitter, expr: Between, load_field) -> str:
    # Evaluation order mirrors the closure: operand, low, high — eager.
    v = _emit_expr(em, expr.expr, load_field)
    lo = _emit_expr(em, expr.low, load_field)
    hi = _emit_expr(em, expr.high, load_field)
    t = em.name()
    em.emit(
        f"if {_ident_is(v, 'None')} or {_ident_is(lo, 'None')} "
        f"or {_ident_is(hi, 'None')}: {t} = None"
    )
    em.emit("else:")
    em.emit("    try:")
    em.emit(f"        {t} = ({lo}) <= ({v}) <= ({hi})")
    em.emit("    except TypeError:")
    em.emit(f"        {t} = None")
    if expr.negated:
        em.emit("    else:")
        em.emit(f"        {t} = not {t}")
    return t


def _emit_boolop(em: _Emitter, expr: BoolOp, load_field) -> str:
    if expr.op not in ("AND", "OR"):
        raise CodegenUnsupported(f"boolean operator {expr.op!r}")
    if not expr.terms:
        raise CodegenUnsupported("empty BoolOp")
    # Matches the closure semantics exactly: terms are evaluated in
    # order, short-circuiting only on an `is False` (AND) / `is True`
    # (OR) identity hit; NULL terms keep evaluating later terms.
    decisive = "False" if expr.op == "AND" else "True"
    t = em.name()
    base_indent = em.indent
    atoms: list[str] = []
    for term in expr.terms[:-1]:
        a = _emit_expr(em, term, load_field)
        atoms.append(a)
        em.emit(f"if {_ident_is(a, decisive)}: {t} = {decisive}")
        em.emit("else:")
        em.indent += 1
    last = _emit_expr(em, expr.terms[-1], load_field)
    atoms.append(last)
    nones = " or ".join(_ident_is(a, "None") for a in atoms)
    default = "True" if expr.op == "AND" else "False"
    em.emit(
        f"{t} = {decisive} if {_ident_is(last, decisive)} "
        f"else (None if {nones} else {default})"
    )
    em.indent = base_indent
    return t


def _preload_fields(em: _Emitter, exprs, load_field) -> None:
    """Emit every field load up front, once per distinct field.

    Loads are side-effect free, so hoisting them above the per-query
    blocks is safe — and required: a load first emitted inside one
    query's span guard would be an unbound name for the next query.
    """
    for expr in exprs:
        if expr is None:
            continue
        for node in walk_exprs(expr):
            if isinstance(node, FieldRef):
                load_field(em, node.field)


# -- row-mode entry points (the differential oracle) ---------------------------


def compile_row_expr(expr: Expr) -> Callable[[dict], Any]:
    """Codegen twin of ``compile_expr(expr, row.get-getter)`` for plain
    dict rows; the Hypothesis suite pins it against the interpreter and
    the closure compiler.  Raises :class:`CodegenUnsupported` when the
    emitter bails out (the caller falls back to closures)."""
    env: dict[str, Any] = {}
    em = _Emitter(env)
    _preload_fields(em, (expr,), _load_row_field)
    atom = _emit_expr(em, expr, _load_row_field)
    em.emit(f"return ({atom})")
    source = "def _row_fn(row, _get=dict.get):\n" + "\n".join(em.lines) + "\n"
    exec(_code_for(source), env)
    return env["_row_fn"]


def compile_row_predicate(expr: Optional[Expr]) -> Callable[[dict], bool]:
    """Codegen twin of ``compile_predicate``: NULL is 'not true'."""
    if expr is None:
        return lambda row: True
    env: dict[str, Any] = {}
    em = _Emitter(env)
    _preload_fields(em, (expr,), _load_row_field)
    atom = _emit_expr(em, expr, _load_row_field)
    em.emit(f"return {_ident_is(atom, 'True')}")
    source = "def _row_fn(row, _get=dict.get):\n" + "\n".join(em.lines) + "\n"
    exec(_code_for(source), env)
    return env["_row_fn"]


# -- the combined per-event-type processor -------------------------------------


@dataclass(frozen=True, eq=False)
class ArmedQuery:
    """What the processor needs to know about one armed host query."""

    predicate: Optional[Expr]
    #: ``EventSampler`` internals: splitmix seed and integer threshold.
    sampler_seed: int
    sampler_threshold: int
    #: True when the sampler always keeps (rate >= 1.0, or the query
    #: pre-aggregates on the host and never consults the sampler).
    sample_always: bool
    activates_at: float
    expires_at: float
    #: Fused entries (no governor, no host aggregation) are carried all
    #: the way to the buffer inside the generated code; the remaining
    #: fields below are only read for them.
    fused: bool = False
    #: The agent's installed-query object (``seen_by_window``,
    #: ``pending_dropped``) and its per-query stats — hoisted into the
    #: generated code's environment, never in the source text.
    iq: Any = None
    qstats: Any = None
    window_seconds: float = 1.0
    #: Projection field names; ``None`` ships the full payload.
    project: Optional[tuple[str, ...]] = None


def _emit_sample_gate(em: _Emitter, entry: ArmedQuery) -> None:
    """Unrolled splitmix64 finalizer over the shared pre-mix ``_h``;
    leaves the emitter indented inside ``if kept:``."""
    z = em.name("z")
    em.emit(
        f"{z} = (({entry.sampler_seed} ^ _h) + "
        f"{0x9E3779B97F4A7C15}) & {_MASK64}"
    )
    em.emit(f"{z} = (({z} ^ ({z} >> 30)) * {0xBF58476D1CE4E5B9}) & {_MASK64}")
    em.emit(f"{z} = (({z} ^ ({z} >> 27)) * {0x94D049BB133111EB}) & {_MASK64}")
    em.emit(f"{z} = {z} ^ ({z} >> 31)")
    em.emit(f"if {z} < {entry.sampler_threshold}:")
    em.indent += 1


#: Bit 31 of the processor's return value: a buffer append just reached
#: the agent's flush batch size, so the caller should flush (replacing a
#: per-call ``len()`` check with a branch the reject path never pays).
FLUSH_DUE = 1 << 31
#: Low 31 bits of the return value: the fused matched count.
COUNT_MASK = FLUSH_DUE - 1


def build_processor(
    entries: tuple[ArmedQuery, ...],
    *,
    event_type: str,
    host: str,
    stats: Any,
    buffer: Any,
    flush_batch_size: int,
) -> Callable[[dict, int, float], int]:
    """Generate ``process(data, rid, now)`` for one event type.

    Fused entries are fully processed inline: on a selection match the
    generated code does the seen/window accounting (window keys shared
    across queries with equal windows), applies the sampling decision,
    and appends ``(iq, payload, rid, now)`` to the bounded buffer with
    exact shipped/dropped accounting — no ``Event`` object exists until
    flush materializes the batch, off the application's hot path.
    Field loads are emitted once and shared across every armed query;
    per-query constants are inlined; mutable collaborators (the stats
    object, the buffer and its deque, each query's objects) live in the
    closure environment so identical query sets share one code object.

    Returns the fused matched count (plus :data:`FLUSH_DUE` when an
    append reached *flush_batch_size*); when non-fused entries exist
    their match/keep mask (two bits per entry *i* at ``32 + 2i``) rides
    above for the agent's walk.
    """
    env: dict[str, Any] = {"_GP": _get_path, "_HOST": host, "_ST": stats}
    em = _Emitter(env)
    mixed, _ = _emit_process_body(
        em,
        entries,
        event_type=event_type,
        buffer=buffer,
        flush_batch_size=flush_batch_size,
    )
    em.emit("return n | (m << 32)" if mixed else "return n")
    source = "def _process(data, rid, now, _get=dict.get):\n" + "\n".join(em.lines) + "\n"
    exec(_code_for(source), env)
    return env["_process"]


def _emit_process_body(
    em: _Emitter,
    entries: tuple[ArmedQuery, ...],
    *,
    event_type: str,
    buffer: Any,
    flush_batch_size: int,
) -> tuple[bool, bool]:
    """Emit the fused selection → sampling → projection body shared by
    :func:`build_processor` and :func:`build_entry`: leaves the fused
    matched count in ``n`` (the non-fused mask in ``m`` when mixed) and
    updates every counter inline.  Returns ``(mixed, flush_check)`` —
    *flush_check* is True when ``n`` can carry :data:`FLUSH_DUE`."""
    env = em.env
    mixed = any(not e.fused for e in entries)
    if any(e.fused for e in entries):
        env["_BUF"] = buffer
        env["_ITEMS"] = buffer._items
    # events_checked moves into generated code: the entry count is a
    # compile-time constant here, a len() call in the interpreter.
    em.emit(f"_ST.events_checked += {len(entries)}")
    em.emit("n = 0")
    if mixed:
        em.emit("m = 0")
    _preload_fields(em, (e.predicate for e in entries), _load_event_field)
    if any(not e.sample_always for e in entries):
        # One request-id pre-mix shared by every sampling query.
        env["_SM"] = _splitmix64
        em.emit(f"_h = _SM(rid & {_MASK64})")
    # Full-payload ships share one dict copy across fused queries; the
    # lazy-init dance is skipped when only one query needs it.
    keep_all_count = sum(1 for e in entries if e.fused and e.project is None)
    if keep_all_count > 1:
        em.emit("_pv = None")
    # Window bookkeeping is shared across fused queries with the same
    # window length; single users compute it straight-line in-block.
    ws_users: dict[float, int] = {}
    for e in entries:
        if e.fused:
            ws_users[e.window_seconds] = ws_users.get(e.window_seconds, 0) + 1
    wvars: dict[float, tuple[str, str]] = {}
    for ws, users in ws_users.items():
        j = len(wvars)
        wvars[ws] = (f"_w{j}", f"_k{j}")
        if users > 1:
            em.emit(f"_w{j} = None")
    # The flush-due check is only emitted when an append can actually
    # reach the threshold (capacity caps the buffer's length).
    flush_check = flush_batch_size <= buffer._capacity
    for i, entry in enumerate(entries):
        base_indent = em.indent
        gated = entry.activates_at > float("-inf") or entry.expires_at < float("inf")
        if gated:
            lo = em.const(entry.activates_at, "a")
            hi = em.const(entry.expires_at, "e")
            em.emit(f"if {lo} <= now < {hi}:")
            em.indent += 1
        if entry.predicate is not None:
            atom = _emit_expr(em, entry.predicate, _load_event_field)
            em.emit(f"if {_ident_is(atom, 'True')}:")
            em.indent += 1
        if entry.fused:
            iq_name = f"_IQ{i}"
            qs_name = f"_QS{i}"
            env[iq_name] = entry.iq
            env[qs_name] = entry.qstats
            wv, kv = wvars[entry.window_seconds]
            em.emit("n += 1")
            em.emit(f"{qs_name}.seen += 1")
            if ws_users[entry.window_seconds] > 1:
                em.emit(f"if {wv} is None:")
                em.emit(f"    {wv} = int(now // {entry.window_seconds!r})")
                em.emit(f"    {kv} = ({event_type!r}, {wv})")
            else:
                em.emit(f"{kv} = ({event_type!r}, int(now // {entry.window_seconds!r}))")
            em.emit(f"_sb = {iq_name}.seen_by_window")
            em.emit("try:")
            em.emit(f"    _sb[{kv}] += 1")
            em.emit("except KeyError:")
            em.emit(f"    _sb[{kv}] = 1")
            if not entry.sample_always:
                _emit_sample_gate(em, entry)
            if entry.project is None:
                if keep_all_count > 1:
                    em.emit("if _pv is None:")
                    em.emit("    _pv = dict(data)")
                else:
                    em.emit("_pv = dict(data)")
                out = "_pv"
            elif not entry.project:
                out = "{}"
            else:
                out = f"_p{i}"
                em.emit(f"{out} = {{}}")
                for field in entry.project:
                    em.emit(f"if {field!r} in data: {out}[{field!r}] = data[{field!r}]")
            # Inlined BoundedBuffer.offer_unlocked: the agent lock
            # serializes every producer and the drainer.
            em.emit("_BUF._offered += 1")
            em.emit(f"if len(_ITEMS) < {buffer._capacity}:")
            em.emit(f"    _ITEMS.append(({iq_name}, {out}, rid, now))")
            if flush_check:
                em.emit(f"    if len(_ITEMS) >= {flush_batch_size}:")
                em.emit(f"        n |= {FLUSH_DUE}")
            em.emit(f"    {qs_name}.shipped += 1")
            em.emit("    _ST.events_shipped += 1")
            em.emit("else:")
            em.emit("    _BUF._dropped += 1")
            em.emit(f"    {qs_name}.dropped += 1")
            em.emit(f"    {iq_name}.pending_dropped += 1")
            em.emit("    _ST.events_dropped += 1")
        else:
            match_bit = 1 << (2 * i)
            both_bits = match_bit | (1 << (2 * i + 1))
            if entry.sample_always:
                em.emit(f"m |= {both_bits}")
            else:
                _emit_sample_gate(em, entry)
                em.emit(f"m |= {both_bits}")
                em.indent -= 1
                em.emit("else:")
                em.emit(f"    m |= {match_bit}")
        em.indent = base_indent
    em.emit("if n:")
    # n carries the flush-due flag in bit 31; keep it out of the counter.
    em.emit(
        f"    _ST.events_matched += n & {COUNT_MASK}"
        if flush_check
        else "    _ST.events_matched += n"
    )
    return mixed, flush_check


def build_entry(
    entries: tuple[ArmedQuery, ...],
    *,
    event_type: str,
    host: str,
    stats: Any,
    buffer: Any,
    flush_batch_size: int,
    group: Any,
    clock: Callable[[], float],
    lock_acquire: Callable[[], Any],
    lock_release: Callable[[], Any],
    flush: Callable[..., Any],
    timing_every: int,
    ewma_alpha: float,
    registry_get: Optional[Callable[[str], Any]] = None,
) -> Callable[..., int]:
    """Generate the whole armed ``log()`` entry for an all-fused,
    ungoverned group: the clock read, payload normalization, lock,
    1-in-N timing sample and the fused body are a single generated
    function — no dispatcher frame, no ``self`` attribute traffic, no
    inner ``process`` call on the per-event path.

    The agent only asks for this when the group has no governors and no
    non-fused entries (mixed or governed groups keep the reference
    ``_log_routed`` walk, which handles quarantine re-routing); the
    timed 1-in-*timing_every* branch duplicates the body rather than
    calling it, so the common branch stays call-free.
    """
    if any(not e.fused for e in entries):
        raise CodegenUnsupported("entry codegen requires an all-fused group")
    env: dict[str, Any] = {
        "_GP": _get_path,
        "_HOST": host,
        "_ST": stats,
        "_G": group,
        "_CLOCK": clock,
        "_ACQ": lock_acquire,
        "_REL": lock_release,
        "_FLUSH": flush,
        "_PERF": perf_counter,
    }
    iqs = tuple(e.iq for e in entries)

    def _charge(dt: float, _iqs=iqs, _n=len(iqs), _alpha=ewma_alpha) -> None:
        # Mirrors _log_routed's timed tail for a governor-free group:
        # the sampled dispatch wall time splits evenly across the armed
        # queries and feeds each one's cost EWMA.
        cost_ns = dt / _n * 1e9
        for iq in _iqs:
            prev = iq.ewma_ns
            iq.ewma_ns = (
                cost_ns if prev is None else prev + _alpha * (cost_ns - prev)
            )

    env["_CHARGE"] = _charge
    body_em = _Emitter(env)
    body_em.indent = 3
    _, flush_check = _emit_process_body(
        body_em,
        entries,
        event_type=event_type,
        buffer=buffer,
        flush_batch_size=flush_batch_size,
    )
    head = [
        "    _ST.events_examined += 1",
        "    now = timestamp if timestamp is not None else _CLOCK()",
        "    if payload is None:",
        "        data = fields",
        "    elif fields:",
        "        data = {**payload, **fields}",
        "    elif type(payload) is dict:",
        "        data = payload",
        "    else:",
        "        data = dict(payload)",
    ]
    if registry_get is not None:
        env["_REGGET"] = registry_get
        head.append(f"    data = _REGGET({event_type!r}).coerce_payload(data)")
    # 1-in-N sampling: bitmask for power-of-two N (the default 64).
    untimed = (
        f"c & {timing_every - 1}"
        if timing_every & (timing_every - 1) == 0
        else f"c % {timing_every}"
    )
    head += [
        "    _ACQ()",
        "    try:",
        "        c = _G.calls + 1",
        "        _G.calls = c",
        f"        if {untimed}:",
    ]
    timed = [
        "        else:",
        "            _t0 = _PERF()",
        *body_em.lines,
        "            _CHARGE(_PERF() - _t0)",
    ]
    tail = ["    finally:", "        _REL()"]
    if flush_check:
        tail += [
            f"    if n > {COUNT_MASK}:",
            "        _FLUSH(now)",
            f"        return n & {COUNT_MASK}",
        ]
    tail.append("    return n")
    source = (
        "def _entry(payload, rid, timestamp, fields, _get=dict.get):\n"
        + "\n".join(head + body_em.lines + timed + tail)
        + "\n"
    )
    exec(_code_for(source), env)
    return env["_entry"]
