"""Tokenizer for the Scrub query language.

Keywords are case-insensitive (the paper writes both ``Select`` and
``from``).  Identifiers keep their case.  Durations (``10s``, ``20m``,
``500ms``) are lexed as single DURATION tokens because they appear in
window/span clauses where juxtaposed INT+IDENT would be ambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .errors import ScrubSyntaxError

__all__ = ["Token", "TokenType", "tokenize", "KEYWORDS"]


class TokenType:
    IDENT = "IDENT"
    KEYWORD = "KEYWORD"
    INT = "INT"
    FLOAT = "FLOAT"
    STRING = "STRING"
    DURATION = "DURATION"
    OP = "OP"            # = != <> < <= > >= + - * / %
    COMMA = "COMMA"
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    SEMI = "SEMI"
    AT_LBRACKET = "AT_LBRACKET"  # '@['
    RBRACKET = "RBRACKET"
    DOT = "DOT"
    PERCENT_SIGN = "PERCENT_SIGN"  # '%' in "10%" sampling rates
    STAR = "STAR"
    EOF = "EOF"


KEYWORDS = frozenset(
    {
        "select", "from", "where", "group", "by", "and", "or", "not",
        "in", "like", "between", "is", "null", "as", "true", "false",
        "count", "sum", "avg", "min", "max", "count_distinct", "top",
        "quantile", "having",
        "service", "services", "server", "servers", "datacenter", "all",
        "sample", "hosts", "events", "start", "now", "duration", "window",
        "slide", "aggregate", "on", "target", "ci",
    }
)

_DURATION_UNITS = ("ms", "s", "m", "h", "d")


@dataclass(frozen=True)
class Token:
    type: str
    value: str
    line: int
    column: int

    @property
    def lowered(self) -> str:
        return self.value.lower()

    def __repr__(self) -> str:
        return f"Token({self.type}, {self.value!r} @{self.line}:{self.column})"


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*; always ends with an EOF token."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    i = 0
    line = 1
    line_start = 0
    n = len(text)

    def col(pos: int) -> int:
        return pos - line_start + 1

    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):
            # SQL-style line comment.
            while i < n and text[i] != "\n":
                i += 1
            continue
        start_col = col(i)
        if ch == "@":
            if text.startswith("@[", i):
                yield Token(TokenType.AT_LBRACKET, "@[", line, start_col)
                i += 2
                continue
            raise ScrubSyntaxError("expected '[' after '@'", line, start_col)
        if ch == "]":
            yield Token(TokenType.RBRACKET, "]", line, start_col)
            i += 1
            continue
        if ch == ",":
            yield Token(TokenType.COMMA, ",", line, start_col)
            i += 1
            continue
        if ch == "(":
            yield Token(TokenType.LPAREN, "(", line, start_col)
            i += 1
            continue
        if ch == ")":
            yield Token(TokenType.RPAREN, ")", line, start_col)
            i += 1
            continue
        if ch == ";":
            yield Token(TokenType.SEMI, ";", line, start_col)
            i += 1
            continue
        if ch == ".":
            yield Token(TokenType.DOT, ".", line, start_col)
            i += 1
            continue
        if ch == "*":
            yield Token(TokenType.STAR, "*", line, start_col)
            i += 1
            continue
        if ch in "'\"":
            value, i = _scan_string(text, i, line, start_col)
            yield Token(TokenType.STRING, value, line, start_col)
            continue
        if ch.isdigit():
            tok, i = _scan_number(text, i, line, start_col)
            yield tok
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            ttype = TokenType.KEYWORD if word.lower() in KEYWORDS else TokenType.IDENT
            yield Token(ttype, word, line, start_col)
            i = j
            continue
        if ch in "=<>!+-/%":
            op, i = _scan_operator(text, i, line, start_col)
            if op == "%":
                yield Token(TokenType.PERCENT_SIGN, "%", line, start_col)
            else:
                yield Token(TokenType.OP, op, line, start_col)
            continue
        raise ScrubSyntaxError(f"unexpected character {ch!r}", line, start_col)
    yield Token(TokenType.EOF, "", line, col(i))


def _scan_string(text: str, i: int, line: int, column: int) -> tuple[str, int]:
    quote = text[i]
    j = i + 1
    parts: list[str] = []
    while j < len(text):
        ch = text[j]
        if ch == quote:
            # Doubled quote escapes it, SQL-style.
            if text.startswith(quote * 2, j):
                parts.append(quote)
                j += 2
                continue
            return "".join(parts), j + 1
        if ch == "\n":
            break
        parts.append(ch)
        j += 1
    raise ScrubSyntaxError("unterminated string literal", line, column)


def _scan_number(text: str, i: int, line: int, column: int) -> tuple[Token, int]:
    n = len(text)
    j = i
    while j < n and text[j].isdigit():
        j += 1
    is_float = False
    if j < n and text[j] == "." and j + 1 < n and text[j + 1].isdigit():
        is_float = True
        j += 1
        while j < n and text[j].isdigit():
            j += 1
    # Duration suffix? Longest match first so 'ms' beats 'm'.
    for unit in sorted(_DURATION_UNITS, key=len, reverse=True):
        if text.startswith(unit, j):
            end = j + len(unit)
            # Must not be followed by more identifier chars (e.g. '10second').
            if end >= n or not (text[end].isalnum() or text[end] == "_"):
                return Token(TokenType.DURATION, text[i:end], line, column), end
    ttype = TokenType.FLOAT if is_float else TokenType.INT
    if j < n and (text[j].isalpha() or text[j] == "_"):
        raise ScrubSyntaxError(f"malformed number near {text[i:j + 1]!r}", line, column)
    return Token(ttype, text[i:j], line, column), j


def _scan_operator(text: str, i: int, line: int, column: int) -> tuple[str, int]:
    two = text[i : i + 2]
    if two in ("<=", ">=", "!=", "<>"):
        return ("!=" if two == "<>" else two), i + 2
    ch = text[i]
    if ch == "!":
        raise ScrubSyntaxError("expected '!=' ", line, column)
    return ch, i + 1


def parse_duration(text: str) -> float:
    """Convert a DURATION token value (e.g. ``'10s'``, ``'20m'``) to seconds."""
    for unit in sorted(_DURATION_UNITS, key=len, reverse=True):
        if text.endswith(unit):
            magnitude = float(text[: -len(unit)])
            return magnitude * {"ms": 1e-3, "s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}[unit]
    raise ValueError(f"not a duration: {text!r}")
