"""Target-host resolution for the ``@[...]`` construct.

Putting host targeting in the language — instead of a selection on a
host-name field — lets Scrub install the query only on the specified
hosts, so non-targeted hosts do no work at all (paper Section 3.2).
This module implements the matching semantics shared by the in-process
directory and the simulated cluster's registry, plus deterministic host
sampling.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Callable, Iterable, Sequence, TypeVar

from .ast import (
    DatacenterEq,
    ServerEq,
    ServersIn,
    ServiceIn,
    TargetAll,
    TargetAnd,
    TargetNode,
)
from .errors import ScrubValidationError

__all__ = [
    "target_matches",
    "sample_hosts",
    "rendezvous_order",
    "rendezvous_sample",
    "HostDescription",
]


class HostDescription:
    """The attributes targeting can reference for one host."""

    __slots__ = ("name", "services", "datacenter")

    def __init__(self, name: str, services: Iterable[str] = (), datacenter: str = "") -> None:
        self.name = name
        self.services = frozenset(services)
        self.datacenter = datacenter

    def __repr__(self) -> str:
        return (
            f"HostDescription({self.name!r}, services={sorted(self.services)}, "
            f"datacenter={self.datacenter!r})"
        )


def target_matches(target: TargetNode, host: HostDescription) -> bool:
    """Does *host* satisfy the target expression?

    Service and datacenter comparisons are case-insensitive (operators
    write ``BidServers`` or ``bidservers`` interchangeably); host names
    are compared exactly.
    """
    if isinstance(target, TargetAll):
        return True
    if isinstance(target, ServerEq):
        return host.name == target.host
    if isinstance(target, ServersIn):
        return host.name in target.hosts
    if isinstance(target, ServiceIn):
        wanted = {s.lower() for s in target.services}
        return any(s.lower() in wanted for s in host.services)
    if isinstance(target, DatacenterEq):
        return host.datacenter.lower() == target.datacenter.lower()
    if isinstance(target, TargetAnd):
        return all(target_matches(term, host) for term in target.terms)
    raise ScrubValidationError(f"unknown target node: {type(target).__name__}")


T = TypeVar("T")


def sample_hosts(hosts: Sequence[T], rate: float, seed: int) -> list[T]:
    """Randomly select ``ceil(rate * len(hosts))`` hosts, deterministically
    in *seed* so a query's host set is reproducible.

    At least one host is chosen whenever any host matched — a query that
    silently targeted nobody would be a troubleshooting trap.
    """
    if not 0.0 < rate <= 1.0:
        raise ScrubValidationError(f"host sampling rate must be in (0, 1], got {rate}")
    if not hosts or rate >= 1.0:
        return list(hosts)
    n = max(1, math.ceil(rate * len(hosts)))
    rng = random.Random(seed)
    return rng.sample(list(hosts), n)


def _rendezvous_score(seed: int, name: str) -> int:
    # blake2b, not hash(): the score must be identical across processes
    # and runs regardless of PYTHONHASHSEED.
    digest = hashlib.blake2b(
        f"{seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def rendezvous_order(
    items: Sequence[T], seed: int, key: Callable[[T], str] = str
) -> list[T]:
    """Rank *items* by highest-random-weight (rendezvous) hash of their
    name under *seed*.

    Each item's rank depends only on ``(seed, key(item))``, never on the
    rest of the population — so when the fleet churns, a host joining or
    leaving shifts at most its own slot: every other host keeps its
    relative position.  That is the property a dynamic registry needs to
    keep ``@[...]`` host sampling stable under membership change, where
    :func:`sample_hosts` (a seeded shuffle of the whole population)
    would reshuffle everyone on any change.
    """
    return sorted(
        items,
        key=lambda item: (_rendezvous_score(seed, key(item)), key(item)),
        reverse=True,
    )


def rendezvous_sample(
    items: Sequence[T], rate: float, seed: int, key: Callable[[T], str] = str
) -> list[T]:
    """Select ``ceil(rate * len(items))`` items by rendezvous rank —
    the churn-stable counterpart of :func:`sample_hosts`, with the same
    at-least-one guarantee and rate validation."""
    if not 0.0 < rate <= 1.0:
        raise ScrubValidationError(f"host sampling rate must be in (0, 1], got {rate}")
    ordered = rendezvous_order(items, seed, key=key)
    if not items or rate >= 1.0:
        return ordered
    return ordered[: max(1, math.ceil(rate * len(items)))]
