"""Semantic validation of parsed Scrub queries.

The query server validates every query before generating query objects
(paper Section 4).  Validation:

* resolves every field reference against the event registry, fixing up
  the parser's qualifier ambiguity (``bid.user_id`` — is ``bid`` an
  event type or the root of a dotted object path?);
* enforces the language restrictions the paper motivates: joins are
  implicit equi-joins on the request identifier across the listed event
  types — there is no join predicate to validate, but aggregates may not
  nest, may not appear in WHERE or GROUP BY, and bare (non-aggregate)
  SELECT expressions must be grouping expressions when the query
  aggregates;
* type-checks comparisons and arithmetic where both sides have known
  static types (nested-object members are dynamically typed and pass).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..events import EventRegistry, EventSchema, FieldType, UnknownEventTypeError
from .ast import (
    AggregateCall,
    Between,
    BinaryOp,
    BoolOp,
    Comparison,
    Expr,
    FieldRef,
    InList,
    IsNull,
    Literal,
    Query,
    SelectItem,
    UnaryOp,
    unparse,
    walk_exprs,
)
from .errors import ScrubValidationError

__all__ = ["validate_query", "ValidatedQuery", "output_column_names"]


@dataclass(frozen=True)
class ValidatedQuery:
    """A query whose field references are fully resolved.

    ``query`` is the rewritten AST (every :class:`FieldRef` carries its
    event type).  ``schemas`` maps each source event type to its schema.
    ``column_names`` are the output column labels in SELECT order.
    """

    query: Query
    schemas: dict[str, EventSchema]
    column_names: tuple[str, ...]


def validate_query(query: Query, registry: EventRegistry) -> ValidatedQuery:
    """Validate *query* against *registry*; returns the resolved form.

    Raises :class:`ScrubValidationError` on any semantic problem.
    """
    if not query.sources:
        raise ScrubValidationError("query must name at least one event type")
    if len(set(query.sources)) != len(query.sources):
        raise ScrubValidationError(
            f"duplicate event type in FROM: {list(query.sources)}"
        )
    schemas: dict[str, EventSchema] = {}
    for source in query.sources:
        try:
            schemas[source] = registry.get(source)
        except UnknownEventTypeError as exc:
            raise ScrubValidationError(str(exc)) from None

    resolver = _Resolver(schemas)

    select_items = tuple(
        SelectItem(resolver.resolve(item.expr), item.alias) for item in query.select_items
    )
    where = resolver.resolve(query.where) if query.where is not None else None
    group_by = tuple(resolver.resolve(g) for g in query.group_by)
    having = resolver.resolve(query.having) if query.having is not None else None

    resolved = replace(
        query,
        select_items=select_items,
        where=where,
        group_by=group_by,
        having=having,
    )

    _check_sampling(resolved)
    _check_aggregate_rules(resolved)
    _check_types(resolved, schemas)
    _check_host_aggregation(resolved)
    _check_target_ci(resolved)

    return ValidatedQuery(
        query=resolved,
        schemas=schemas,
        column_names=output_column_names(resolved),
    )


def output_column_names(query: Query) -> tuple[str, ...]:
    """Output column labels: the alias when given, else the unparsed expr."""
    names = []
    for item in query.select_items:
        names.append(item.alias if item.alias else unparse(item.expr))
    return tuple(names)


class _Resolver:
    """Rewrites field references with their resolved event type."""

    def __init__(self, schemas: dict[str, EventSchema]) -> None:
        self._schemas = schemas

    def resolve(self, expr: Expr) -> Expr:
        if isinstance(expr, Literal):
            return expr
        if isinstance(expr, FieldRef):
            return self._resolve_ref(expr)
        if isinstance(expr, BinaryOp):
            return BinaryOp(expr.op, self.resolve(expr.left), self.resolve(expr.right))
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, self.resolve(expr.operand))
        if isinstance(expr, Comparison):
            return Comparison(expr.op, self.resolve(expr.left), self.resolve(expr.right))
        if isinstance(expr, InList):
            return InList(self.resolve(expr.expr), expr.values, expr.negated)
        if isinstance(expr, Between):
            return Between(
                self.resolve(expr.expr),
                self.resolve(expr.low),
                self.resolve(expr.high),
                expr.negated,
            )
        if isinstance(expr, IsNull):
            return IsNull(self.resolve(expr.expr), expr.negated)
        if isinstance(expr, BoolOp):
            return BoolOp(expr.op, tuple(self.resolve(t) for t in expr.terms))
        if isinstance(expr, AggregateCall):
            arg = self.resolve(expr.arg) if expr.arg is not None else None
            return AggregateCall(expr.func, arg, expr.k, expr.q)
        raise ScrubValidationError(f"unsupported expression node: {type(expr).__name__}")

    def _resolve_ref(self, ref: FieldRef) -> FieldRef:
        if ref.event_type is not None:
            # Qualifier may be an event type, or the root of a dotted path.
            if ref.event_type in self._schemas:
                schema = self._schemas[ref.event_type]
                if not schema.has_field(ref.field):
                    raise ScrubValidationError(
                        f"event type {ref.event_type!r} has no field {ref.field!r}; "
                        f"fields: {list(schema.all_field_names)}"
                    )
                return ref
            # Re-interpret 'a.b' as a dotted path 'a.b' on some unique source.
            return self._resolve_bare(f"{ref.event_type}.{ref.field}")
        return self._resolve_bare(ref.field)

    def _resolve_bare(self, field: str) -> FieldRef:
        owners = [name for name, schema in self._schemas.items() if schema.has_field(field)]
        if not owners:
            raise ScrubValidationError(
                f"no source event type has a field {field!r} "
                f"(sources: {list(self._schemas)})"
            )
        if len(owners) > 1:
            raise ScrubValidationError(
                f"field {field!r} is ambiguous across event types {owners}; qualify it"
            )
        return FieldRef(owners[0], field)


def _check_aggregate_rules(query: Query) -> None:
    if query.where is not None:
        for node in walk_exprs(query.where):
            if isinstance(node, AggregateCall):
                raise ScrubValidationError("aggregate functions are not allowed in WHERE")
    for group in query.group_by:
        for node in walk_exprs(group):
            if isinstance(node, AggregateCall):
                raise ScrubValidationError("aggregate functions are not allowed in GROUP BY")
    # No nested aggregates.
    for agg in query.aggregates():
        if agg.arg is not None:
            for node in walk_exprs(agg.arg):
                if node is not agg and isinstance(node, AggregateCall):
                    raise ScrubValidationError(
                        f"nested aggregate in {unparse(agg)}"
                    )
    if not query.is_aggregating:
        if query.having is not None:
            raise ScrubValidationError(
                "HAVING requires aggregation (aggregates in SELECT/HAVING "
                "or a GROUP BY clause)"
            )
        return
    # When aggregating, each SELECT item must be an aggregate expression or a
    # grouping expression (standard SQL single-value rule).
    groups = set(query.group_by)
    for item in query.select_items:
        if _item_is_aggregate_only(item.expr, groups):
            continue
        raise ScrubValidationError(
            f"SELECT item {unparse(item.expr)!r} is neither aggregated "
            "nor listed in GROUP BY"
        )
    # HAVING runs after aggregation, so the same single-value rule applies:
    # every field reference must sit under an aggregate or be (part of) a
    # grouping expression.
    if query.having is not None and not _item_is_aggregate_only(query.having, groups):
        raise ScrubValidationError(
            f"HAVING expression {unparse(query.having)!r} references fields "
            "that are neither aggregated nor listed in GROUP BY"
        )


def _item_is_aggregate_only(expr: Expr, groups: set[Expr]) -> bool:
    """True if every field reference in *expr* sits under an aggregate or
    *expr* (or a subexpression containing the refs) is a grouping expr."""
    if expr in groups:
        return True
    if isinstance(expr, AggregateCall):
        return True
    if isinstance(expr, Literal):
        return True
    if isinstance(expr, FieldRef):
        return False
    if isinstance(expr, BinaryOp):
        return _item_is_aggregate_only(expr.left, groups) and _item_is_aggregate_only(
            expr.right, groups
        )
    if isinstance(expr, UnaryOp):
        return _item_is_aggregate_only(expr.operand, groups)
    # Predicate nodes (the HAVING grammar; unusual but legal in SELECT):
    # recurse into direct children so field refs *under* an aggregate —
    # e.g. COUNT(x) > 5 — are correctly attributed to the aggregate.
    if isinstance(expr, Comparison):
        return _item_is_aggregate_only(expr.left, groups) and _item_is_aggregate_only(
            expr.right, groups
        )
    if isinstance(expr, InList):
        return _item_is_aggregate_only(expr.expr, groups)
    if isinstance(expr, Between):
        return (
            _item_is_aggregate_only(expr.expr, groups)
            and _item_is_aggregate_only(expr.low, groups)
            and _item_is_aggregate_only(expr.high, groups)
        )
    if isinstance(expr, IsNull):
        return _item_is_aggregate_only(expr.expr, groups)
    if isinstance(expr, BoolOp):
        return all(_item_is_aggregate_only(term, groups) for term in expr.terms)
    return all(
        _item_is_aggregate_only(sub, groups)
        for sub in walk_exprs(expr)
        if sub is not expr and isinstance(sub, FieldRef)
    )


def _check_sampling(query: Query) -> None:
    """SUBMIT-time guard: reject impossible sampling rates and malformed
    accuracy targets as structured query errors, before query objects are
    generated — a bad rate must never reach an agent, where it would only
    surface as a host-side ValueError long after the submit succeeded."""
    for label, rate in (
        ("host", query.sampling.host_rate),
        ("event", query.sampling.event_rate),
    ):
        if not 0.0 < rate <= 1.0:
            raise ScrubValidationError(
                f"{label} sampling rate must be in (0, 1], got {rate:g}"
            )
    spec = query.target_ci
    if spec is not None:
        if not 0.0 < spec.relative_error < 1.0:
            raise ScrubValidationError(
                f"TARGET CI must be in (0%, 100%), got {spec.relative_error * 100:g}%"
            )
        if not 0.0 < spec.confidence < 1.0:
            raise ScrubValidationError(
                f"TARGET CI confidence must be in (0, 1), got {spec.confidence:g}"
            )


def _check_target_ci(query: Query) -> None:
    """Rules for the closed-loop ``TARGET CI x%`` clause.

    The sampling controller inverts the Eqs. 1-3 estimator, so the
    clause is only meaningful where that estimator runs: a sampled
    global aggregate (COUNT/SUM/AVG) over a single event type with
    tumbling windows, executed centrally.  Mirrors the engine's
    ``estimable`` conditions so a TARGET CI query is never silently
    uncontrolled.
    """
    if query.target_ci is None:
        return
    if query.is_join:
        raise ScrubValidationError(
            "TARGET CI requires a single event type; joined queries have "
            "no sampling error bound to control"
        )
    if query.group_by:
        raise ScrubValidationError(
            "TARGET CI cannot be combined with GROUP BY; error bounds are "
            "computed for global aggregates only"
        )
    if query.slide is not None:
        raise ScrubValidationError(
            "TARGET CI requires tumbling windows; Eqs. 1-3 estimation is "
            "tumbling-only"
        )
    if query.host_aggregate:
        raise ScrubValidationError(
            "TARGET CI cannot be combined with AGGREGATE ON HOSTS; partial "
            "aggregates carry no per-host sample summaries"
        )
    estimable = [
        agg for agg in query.aggregates() if agg.func in ("COUNT", "SUM", "AVG")
    ]
    if not estimable:
        raise ScrubValidationError(
            "TARGET CI requires at least one COUNT/SUM/AVG aggregate in "
            "SELECT; other aggregates have no Eqs. 1-3 error bound"
        )


def _check_host_aggregation(query: Query) -> None:
    """Rules for the opt-in AGGREGATE ON HOSTS mode (DESIGN.md ablation).

    Host pre-aggregation inverts the paper's central-execution default,
    so it is deliberately narrow: single event type (joins need the
    other side's events centrally), simple mergeable aggregates only,
    no event sampling (partial counts would be silently under-scaled),
    and tumbling windows.
    """
    if not query.host_aggregate:
        return
    if query.is_join:
        raise ScrubValidationError(
            "AGGREGATE ON HOSTS requires a single event type; joins must "
            "execute centrally"
        )
    if not query.is_aggregating:
        raise ScrubValidationError(
            "AGGREGATE ON HOSTS requires aggregate functions in SELECT"
        )
    for agg in query.aggregates():
        if agg.func not in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
            raise ScrubValidationError(
                f"{agg.func} cannot be pre-aggregated on hosts; only "
                "COUNT/SUM/AVG/MIN/MAX ship as plain-value partials"
            )
    if query.sampling.event_rate < 1.0:
        raise ScrubValidationError(
            "event sampling cannot be combined with AGGREGATE ON HOSTS"
        )
    if query.slide is not None:
        raise ScrubValidationError(
            "sliding windows cannot be combined with AGGREGATE ON HOSTS"
        )


# -- light static type checking -------------------------------------------------

_NUMERIC = {FieldType.INT, FieldType.LONG, FieldType.FLOAT, FieldType.DOUBLE,
            FieldType.DATETIME}


def _check_types(query: Query, schemas: dict[str, EventSchema]) -> None:
    checker = _TypeChecker(schemas)
    for item in query.select_items:
        checker.infer(item.expr)
    if query.where is not None:
        checker.infer(query.where)
    for group in query.group_by:
        checker.infer(group)
    if query.having is not None:
        having_type = checker.infer(query.having)
        if having_type is not None and having_type is not FieldType.BOOLEAN:
            raise ScrubValidationError(
                f"HAVING must be a boolean predicate, got {having_type.value}"
            )


class _TypeChecker:
    """Best-effort static types; ``None`` means dynamically typed."""

    def __init__(self, schemas: dict[str, EventSchema]) -> None:
        self._schemas = schemas

    def infer(self, expr: Expr) -> Optional[FieldType]:
        if isinstance(expr, Literal):
            value = expr.value
            if isinstance(value, bool):
                return FieldType.BOOLEAN
            if isinstance(value, int):
                return FieldType.LONG
            if isinstance(value, float):
                return FieldType.DOUBLE
            if isinstance(value, str):
                return FieldType.STRING
            return None
        if isinstance(expr, FieldRef):
            schema = self._schemas[expr.event_type]
            ftype = schema.field_type(expr.field)
            # Members of OBJECT fields are dynamically typed.
            if ftype is FieldType.OBJECT and "." in expr.field:
                return None
            return ftype
        if isinstance(expr, BinaryOp):
            left = self.infer(expr.left)
            right = self.infer(expr.right)
            for side, ftype in (("left", left), ("right", right)):
                if ftype is not None and ftype not in _NUMERIC:
                    raise ScrubValidationError(
                        f"arithmetic {expr.op!r} requires numeric operands; "
                        f"{side} side of {unparse(expr)} is {ftype.value}"
                    )
            return FieldType.DOUBLE
        if isinstance(expr, UnaryOp):
            inner = self.infer(expr.operand)
            if expr.op == "-" and inner is not None and inner not in _NUMERIC:
                raise ScrubValidationError(
                    f"unary '-' requires a numeric operand, got {inner.value}"
                )
            return FieldType.BOOLEAN if expr.op == "NOT" else inner
        if isinstance(expr, Comparison):
            left = self.infer(expr.left)
            right = self.infer(expr.right)
            if expr.op == "LIKE":
                for side, ftype in (("left", left), ("right", right)):
                    if ftype is not None and ftype is not FieldType.STRING:
                        raise ScrubValidationError(
                            f"LIKE requires string operands; {side} side is {ftype.value}"
                        )
            elif left is not None and right is not None:
                if not _comparable(left, right):
                    raise ScrubValidationError(
                        f"cannot compare {left.value} with {right.value} "
                        f"in {unparse(expr)}"
                    )
            return FieldType.BOOLEAN
        if isinstance(expr, (InList, Between, IsNull)):
            self.infer(expr.expr)
            if isinstance(expr, Between):
                self.infer(expr.low)
                self.infer(expr.high)
            return FieldType.BOOLEAN
        if isinstance(expr, BoolOp):
            for term in expr.terms:
                self.infer(term)
            return FieldType.BOOLEAN
        if isinstance(expr, AggregateCall):
            if expr.arg is not None:
                arg_type = self.infer(expr.arg)
                if (
                    expr.func in ("SUM", "AVG", "QUANTILE")
                    and arg_type is not None
                    and arg_type not in _NUMERIC
                ):
                    raise ScrubValidationError(
                        f"{expr.func} requires a numeric argument, got {arg_type.value}"
                    )
            if expr.func in ("COUNT", "COUNT_DISTINCT"):
                return FieldType.LONG
            if expr.func == "TOP":
                return None
            return FieldType.DOUBLE
        return None


def _comparable(a: FieldType, b: FieldType) -> bool:
    if a in _NUMERIC and b in _NUMERIC:
        return True
    if a is b:
        return True
    if FieldType.BOOLEAN in (a, b):
        return a is b
    return False
