"""Compilation of query expressions into Python closures.

Both the host agent (selection predicates over single events) and
ScrubCentral (scalar expressions over joined rows) evaluate the same
expression language; this module compiles an AST once into nested
closures so the per-event hot path does no AST dispatch — the cost that
matters for the host-impact goal.

Semantics follow SQL three-valued logic: a missing field is NULL,
comparisons and arithmetic involving NULL yield NULL (``None``), AND/OR
propagate unknowns, and a WHERE predicate only passes rows for which it
is definitely true.  Division by zero yields NULL rather than aborting a
running query.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Any, Callable, Optional

from .ast import (
    AggregateCall,
    Between,
    BinaryOp,
    BoolOp,
    Comparison,
    Expr,
    FieldRef,
    InList,
    IsNull,
    Literal,
    UnaryOp,
)
from .errors import ScrubValidationError

__all__ = ["compile_expr", "compile_predicate", "FieldGetter", "like_to_regex"]

#: Builds a value accessor for one resolved field reference.  Given the
#: (event_type, field) pair, returns a closure mapping a *row* (whatever
#: the caller evaluates over: an Event, a joined row, ...) to the value.
FieldGetter = Callable[[Optional[str], str], Callable[[Any], Any]]


def compile_expr(expr: Expr, field_getter: FieldGetter) -> Callable[[Any], Any]:
    """Compile *expr* into a closure ``row -> value`` (None = NULL)."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, FieldRef):
        return field_getter(expr.event_type, expr.field)
    if isinstance(expr, BinaryOp):
        left = compile_expr(expr.left, field_getter)
        right = compile_expr(expr.right, field_getter)
        return _compile_arith(expr.op, left, right)
    if isinstance(expr, UnaryOp):
        operand = compile_expr(expr.operand, field_getter)
        if expr.op == "-":
            def negate(row: Any) -> Any:
                value = operand(row)
                return None if value is None else -value
            return negate
        if expr.op == "NOT":
            def invert(row: Any) -> Any:
                value = operand(row)
                return None if value is None else (not value)
            return invert
        raise ScrubValidationError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, Comparison):
        return _compile_comparison(expr, field_getter)
    if isinstance(expr, InList):
        return _compile_in(expr, field_getter)
    if isinstance(expr, Between):
        return _compile_between(expr, field_getter)
    if isinstance(expr, IsNull):
        operand = compile_expr(expr.expr, field_getter)
        if expr.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None
    if isinstance(expr, BoolOp):
        terms = [compile_expr(t, field_getter) for t in expr.terms]
        if expr.op == "AND":
            return _compile_and(terms)
        if expr.op == "OR":
            return _compile_or(terms)
        raise ScrubValidationError(f"unknown boolean operator {expr.op!r}")
    if isinstance(expr, AggregateCall):
        raise ScrubValidationError(
            "aggregate calls cannot be evaluated per-row; the central engine "
            "substitutes their computed values"
        )
    raise ScrubValidationError(f"cannot compile node {type(expr).__name__}")


def compile_predicate(expr: Optional[Expr], field_getter: FieldGetter) -> Callable[[Any], bool]:
    """Compile a WHERE predicate; NULL results are treated as 'not true'."""
    if expr is None:
        return lambda row: True
    inner = compile_expr(expr, field_getter)

    def predicate(row: Any) -> bool:
        return inner(row) is True

    return predicate


# -- helpers --------------------------------------------------------------------


def _compile_arith(
    op: str, left: Callable[[Any], Any], right: Callable[[Any], Any]
) -> Callable[[Any], Any]:
    if op == "+":
        def add(row: Any) -> Any:
            a, b = left(row), right(row)
            return None if a is None or b is None else a + b
        return add
    if op == "-":
        def sub(row: Any) -> Any:
            a, b = left(row), right(row)
            return None if a is None or b is None else a - b
        return sub
    if op == "*":
        def mul(row: Any) -> Any:
            a, b = left(row), right(row)
            return None if a is None or b is None else a * b
        return mul
    if op == "/":
        def div(row: Any) -> Any:
            a, b = left(row), right(row)
            if a is None or b is None or b == 0:
                return None
            return a / b
        return div
    if op == "%":
        def mod(row: Any) -> Any:
            a, b = left(row), right(row)
            if a is None or b is None or b == 0:
                return None
            return a % b
        return mod
    raise ScrubValidationError(f"unknown arithmetic operator {op!r}")


def _compile_comparison(expr: Comparison, field_getter: FieldGetter) -> Callable[[Any], Any]:
    left = compile_expr(expr.left, field_getter)
    right = compile_expr(expr.right, field_getter)
    op = expr.op
    if op == "LIKE":
        def like(row: Any) -> Any:
            a, b = left(row), right(row)
            if a is None or b is None:
                return None
            return like_to_regex(b).fullmatch(str(a)) is not None
        return like

    if op == "=":
        comparator: Callable[[Any, Any], bool] = lambda a, b: a == b
    elif op == "!=":
        comparator = lambda a, b: a != b
    elif op == "<":
        comparator = lambda a, b: a < b
    elif op == "<=":
        comparator = lambda a, b: a <= b
    elif op == ">":
        comparator = lambda a, b: a > b
    elif op == ">=":
        comparator = lambda a, b: a >= b
    else:
        raise ScrubValidationError(f"unknown comparison operator {op!r}")

    def compare(row: Any) -> Any:
        a, b = left(row), right(row)
        if a is None or b is None:
            return None
        try:
            return comparator(a, b)
        except TypeError:
            # Runtime type mismatch (e.g. dynamically typed object member
            # compared against an int) — NULL rather than query abort.
            return None

    return compare


def _compile_in(expr: InList, field_getter: FieldGetter) -> Callable[[Any], Any]:
    operand = compile_expr(expr.expr, field_getter)
    values = frozenset(v.value for v in expr.values)
    contains_null = any(v.value is None for v in expr.values)
    negated = expr.negated

    def member(row: Any) -> Any:
        value = operand(row)
        if value is None:
            return None
        try:
            hit = value in values
        except TypeError:
            return None
        if not hit and contains_null:
            return None  # SQL: x IN (..., NULL) is UNKNOWN when no match
        return (not hit) if negated else hit

    return member


def _compile_between(expr: Between, field_getter: FieldGetter) -> Callable[[Any], Any]:
    operand = compile_expr(expr.expr, field_getter)
    low = compile_expr(expr.low, field_getter)
    high = compile_expr(expr.high, field_getter)
    negated = expr.negated

    def between(row: Any) -> Any:
        value = operand(row)
        lo, hi = low(row), high(row)
        if value is None or lo is None or hi is None:
            return None
        try:
            hit = lo <= value <= hi
        except TypeError:
            return None
        return (not hit) if negated else hit

    return between


def _compile_and(terms: list[Callable[[Any], Any]]) -> Callable[[Any], Any]:
    def conj(row: Any) -> Any:
        unknown = False
        for term in terms:
            value = term(row)
            if value is False:
                return False
            if value is None:
                unknown = True
        return None if unknown else True

    return conj


def _compile_or(terms: list[Callable[[Any], Any]]) -> Callable[[Any], Any]:
    def disj(row: Any) -> Any:
        unknown = False
        for term in terms:
            value = term(row)
            if value is True:
                return True
            if value is None:
                unknown = True
        return None if unknown else False

    return disj


@lru_cache(maxsize=512)
def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Translate a SQL LIKE pattern (%, _) into a compiled regex."""
    out: list[str] = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("".join(out), re.DOTALL)
