"""Error hierarchy for the Scrub query pipeline.

Every user-facing failure derives from :class:`ScrubError`, so callers
(the query server, examples, tests) can catch one type.  Parse and
validation errors carry source positions so a CLI can point at the
offending token — problem resolution must be expedient (paper Section 2),
which starts with good error messages.
"""

from __future__ import annotations

__all__ = [
    "ScrubError",
    "ScrubSyntaxError",
    "ScrubValidationError",
    "ScrubExecutionError",
    "QueryNotFoundError",
]


class ScrubError(Exception):
    """Base class for all Scrub errors."""


class ScrubSyntaxError(ScrubError):
    """Lexical or grammatical error in a query string."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class ScrubValidationError(ScrubError):
    """The query parsed but is semantically invalid (unknown event type or
    field, type mismatch, unsupported construct such as a non-equi join)."""


class ScrubExecutionError(ScrubError):
    """Failure while a query was being installed or executed."""


class QueryNotFoundError(ScrubError):
    """An operation referenced a query id the server does not know."""

    def __init__(self, query_id: str) -> None:
        self.query_id = query_id
        super().__init__(f"no such query: {query_id}")
