"""Recursive-descent parser for the Scrub query language.

Grammar (clauses after FROM may appear in any order)::

    query      := SELECT select_list FROM sources clause* [';']
    clause     := WHERE predicate | target | sampling | span_part
                | WINDOW dur [SLIDE dur] | GROUP BY expr_list
                | HAVING predicate | AGGREGATE ON HOSTS
    select_list:= select_item (',' select_item)*
    select_item:= expr [AS ident]
    sources    := ident (',' ident)*
    target     := '@[' host_expr ']'
    host_expr  := ALL | host_atom (AND host_atom)*
    host_atom  := SERVICE[S] IN ident_or_list
                | SERVERS IN '(' ident_list ')'
                | SERVER '=' ident_or_string
                | DATACENTER '=' ident_or_string
    sampling   := SAMPLE HOSTS number '%' | SAMPLE EVENTS number '%'
    target_ci  := TARGET CI number '%'
    span_part  := START (NOW | number | string) | DURATION dur
"""

from __future__ import annotations

import datetime as _dt
from typing import Optional

from .ast import (
    AggregateCall,
    Between,
    BinaryOp,
    BoolOp,
    Comparison,
    DatacenterEq,
    Expr,
    FieldRef,
    InList,
    IsNull,
    Literal,
    Query,
    SamplingSpec,
    SelectItem,
    ServerEq,
    ServersIn,
    ServiceIn,
    SpanSpec,
    TargetAll,
    TargetAnd,
    TargetCISpec,
    TargetNode,
    UnaryOp,
)
from .errors import ScrubSyntaxError
from .lexer import Token, TokenType, parse_duration, tokenize

__all__ = ["parse_query", "parse_expression"]


def parse_query(text: str) -> Query:
    """Parse a full Scrub query string into a :class:`Query` AST."""
    return _Parser(tokenize(text)).parse_query()


def parse_expression(text: str) -> Expr:
    """Parse a standalone expression (used in tests and tools)."""
    parser = _Parser(tokenize(text))
    expr = parser._expression()
    parser._expect_end()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.type != TokenType.EOF:
            self._pos += 1
        return tok

    def _at_keyword(self, *words: str) -> bool:
        tok = self._cur
        return tok.type == TokenType.KEYWORD and tok.lowered in words

    def _accept_keyword(self, *words: str) -> Optional[Token]:
        if self._at_keyword(*words):
            return self._advance()
        return None

    def _expect_keyword(self, word: str) -> Token:
        tok = self._accept_keyword(word)
        if tok is None:
            raise self._error(f"expected {word.upper()}")
        return tok

    def _accept(self, ttype: str, value: str | None = None) -> Optional[Token]:
        tok = self._cur
        if tok.type == ttype and (value is None or tok.value == value):
            return self._advance()
        return None

    def _expect(self, ttype: str, what: str) -> Token:
        tok = self._accept(ttype)
        if tok is None:
            raise self._error(f"expected {what}")
        return tok

    def _error(self, message: str) -> ScrubSyntaxError:
        tok = self._cur
        found = tok.value or "end of query"
        return ScrubSyntaxError(f"{message}, found {found!r}", tok.line, tok.column)

    def _expect_end(self) -> None:
        self._accept(TokenType.SEMI)
        if self._cur.type != TokenType.EOF:
            raise self._error("unexpected trailing input")

    # -- query --------------------------------------------------------------

    def parse_query(self) -> Query:
        self._expect_keyword("select")
        select_items = self._select_list()
        self._expect_keyword("from")
        sources = self._sources()

        where: Optional[Expr] = None
        target: TargetNode = TargetAll()
        host_rate = 1.0
        event_rate = 1.0
        target_ci: Optional[TargetCISpec] = None
        start: Optional[float] = None
        duration: Optional[float] = None
        window: Optional[float] = None
        slide: Optional[float] = None
        host_aggregate = False
        group_by: tuple[Expr, ...] = ()
        having: Optional[Expr] = None
        seen: set[str] = set()

        def once(name: str) -> None:
            if name in seen:
                raise self._error(f"duplicate {name.upper()} clause")
            seen.add(name)

        while True:
            if self._at_keyword("where"):
                once("where")
                self._advance()
                where = self._expression()
            elif self._cur.type == TokenType.AT_LBRACKET:
                once("target")
                target = self._target()
            elif self._at_keyword("sample"):
                self._advance()
                which = self._advance()
                if which.lowered == "hosts":
                    once("sample hosts")
                    host_rate = self._sampling_rate()
                elif which.lowered == "events":
                    once("sample events")
                    event_rate = self._sampling_rate()
                else:
                    raise self._error("expected HOSTS or EVENTS after SAMPLE")
            elif self._at_keyword("target"):
                once("target ci")
                self._advance()
                self._expect_keyword("ci")
                target_ci = TargetCISpec(relative_error=self._target_ci_rate())
            elif self._at_keyword("start"):
                once("start")
                self._advance()
                start = self._start_value()
            elif self._at_keyword("duration"):
                once("duration")
                self._advance()
                duration = self._duration_value()
            elif self._at_keyword("window"):
                once("window")
                self._advance()
                window = self._duration_value()
                if self._accept_keyword("slide"):
                    slide = self._duration_value()
                    if slide > window:
                        raise self._error("SLIDE must not exceed WINDOW")
            elif self._at_keyword("aggregate"):
                once("aggregate on hosts")
                self._advance()
                self._expect_keyword("on")
                self._expect_keyword("hosts")
                host_aggregate = True
            elif self._at_keyword("group"):
                once("group by")
                self._advance()
                self._expect_keyword("by")
                group_by = tuple(self._expr_list())
            elif self._at_keyword("having"):
                once("having")
                self._advance()
                having = self._expression()
            else:
                break

        self._expect_end()
        try:
            sampling = SamplingSpec(host_rate=host_rate, event_rate=event_rate)
            span = SpanSpec(start=start, duration=duration)
        except ValueError as exc:
            raise ScrubSyntaxError(str(exc)) from None
        return Query(
            select_items=tuple(select_items),
            sources=tuple(sources),
            where=where,
            target=target,
            sampling=sampling,
            span=span,
            target_ci=target_ci,
            window=window,
            slide=slide,
            host_aggregate=host_aggregate,
            group_by=group_by,
            having=having,
        )

    def _select_list(self) -> list[SelectItem]:
        items = [self._select_item()]
        while self._accept(TokenType.COMMA):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        expr = self._expression()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect(TokenType.IDENT, "alias name").value
        return SelectItem(expr, alias)

    def _sources(self) -> list[str]:
        sources = [self._expect(TokenType.IDENT, "event type name").value]
        while self._accept(TokenType.COMMA):
            sources.append(self._expect(TokenType.IDENT, "event type name").value)
        return sources

    def _sampling_rate(self) -> float:
        tok = self._cur
        if tok.type not in (TokenType.INT, TokenType.FLOAT):
            raise self._error("expected sampling percentage")
        self._advance()
        pct = float(tok.value)
        if self._accept(TokenType.PERCENT_SIGN) is None:
            raise self._error("expected '%' after sampling percentage")
        if not 0.0 < pct <= 100.0:
            raise ScrubSyntaxError(
                f"sampling percentage must be in (0, 100], got {pct:g}", tok.line, tok.column
            )
        return pct / 100.0

    def _target_ci_rate(self) -> float:
        tok = self._cur
        if tok.type not in (TokenType.INT, TokenType.FLOAT):
            raise self._error("expected a percentage after TARGET CI")
        self._advance()
        pct = float(tok.value)
        if self._accept(TokenType.PERCENT_SIGN) is None:
            raise self._error("expected '%' after TARGET CI percentage")
        if not 0.0 < pct < 100.0:
            raise ScrubSyntaxError(
                f"TARGET CI must be in (0, 100), got {pct:g}", tok.line, tok.column
            )
        return pct / 100.0

    def _start_value(self) -> Optional[float]:
        if self._accept_keyword("now"):
            return None
        tok = self._cur
        if tok.type in (TokenType.INT, TokenType.FLOAT):
            self._advance()
            return float(tok.value)
        if tok.type == TokenType.STRING:
            self._advance()
            try:
                return _dt.datetime.fromisoformat(tok.value).timestamp()
            except ValueError:
                raise ScrubSyntaxError(
                    f"bad START datetime {tok.value!r}", tok.line, tok.column
                ) from None
        raise self._error("expected NOW, a timestamp, or an ISO datetime string")

    def _duration_value(self) -> float:
        tok = self._cur
        if tok.type == TokenType.DURATION:
            self._advance()
            return parse_duration(tok.value)
        if tok.type in (TokenType.INT, TokenType.FLOAT):
            # Bare number means seconds.
            self._advance()
            return float(tok.value)
        raise self._error("expected a duration (e.g. 10s, 20m)")

    # -- target -------------------------------------------------------------

    def _target(self) -> TargetNode:
        self._expect(TokenType.AT_LBRACKET, "'@['")
        node = self._host_expr()
        self._expect(TokenType.RBRACKET, "']'")
        return node

    def _host_expr(self) -> TargetNode:
        if self._accept_keyword("all"):
            return TargetAll()
        terms = [self._host_atom()]
        while self._accept_keyword("and"):
            terms.append(self._host_atom())
        if len(terms) == 1:
            return terms[0]
        return TargetAnd(tuple(terms))

    def _host_atom(self) -> TargetNode:
        tok = self._cur
        word = tok.lowered if tok.type == TokenType.KEYWORD else None
        if word in ("service", "services"):
            self._advance()
            self._expect_keyword("in")
            return ServiceIn(tuple(self._name_or_list()))
        if word == "servers":
            self._advance()
            self._expect_keyword("in")
            self._expect(TokenType.LPAREN, "'('")
            hosts = self._name_list()
            self._expect(TokenType.RPAREN, "')'")
            return ServersIn(tuple(hosts))
        if word == "server":
            self._advance()
            self._expect(TokenType.OP, "'='")
            return ServerEq(self._name())
        if word == "datacenter":
            self._advance()
            self._expect(TokenType.OP, "'='")
            return DatacenterEq(self._name())
        raise self._error("expected SERVICE, SERVERS, SERVER, DATACENTER or ALL")

    def _name(self) -> str:
        tok = self._cur
        if tok.type == TokenType.STRING:
            self._advance()
            return tok.value
        # Host names like 'host1' may collide with keywords in odd cases.
        if tok.type not in (TokenType.IDENT, TokenType.KEYWORD):
            raise self._error("expected a name")
        self._advance()
        parts = [tok.value]
        # Host names commonly contain '-' and '.' (bidservers-dc1-0,
        # host1.example.com); inside a target these are name characters,
        # not operators.
        while True:
            cur = self._cur
            if cur.type == TokenType.OP and cur.value == "-":
                sep = "-"
            elif cur.type == TokenType.DOT:
                sep = "."
            else:
                break
            nxt = self._tokens[self._pos + 1]
            if nxt.type not in (
                TokenType.IDENT, TokenType.KEYWORD, TokenType.INT,
                TokenType.DURATION,
            ):
                break
            self._advance()  # the separator
            self._advance()  # the segment
            parts.append(sep + nxt.value)
        return "".join(parts)

    def _name_list(self) -> list[str]:
        names = [self._name()]
        while self._accept(TokenType.COMMA):
            names.append(self._name())
        return names

    def _name_or_list(self) -> list[str]:
        if self._accept(TokenType.LPAREN):
            names = self._name_list()
            self._expect(TokenType.RPAREN, "')'")
            return names
        return self._name_list()

    # -- expressions ----------------------------------------------------------

    def _expr_list(self) -> list[Expr]:
        exprs = [self._expression()]
        while self._accept(TokenType.COMMA):
            exprs.append(self._expression())
        return exprs

    def _expression(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        terms = [self._and_expr()]
        while self._accept_keyword("or"):
            terms.append(self._and_expr())
        if len(terms) == 1:
            return terms[0]
        return BoolOp("OR", tuple(terms))

    def _and_expr(self) -> Expr:
        terms = [self._not_expr()]
        while self._accept_keyword("and"):
            terms.append(self._not_expr())
        if len(terms) == 1:
            return terms[0]
        return BoolOp("AND", tuple(terms))

    def _not_expr(self) -> Expr:
        if self._accept_keyword("not"):
            return UnaryOp("NOT", self._not_expr())
        return self._predicate()

    def _predicate(self) -> Expr:
        left = self._additive()
        tok = self._cur
        if tok.type == TokenType.OP and tok.value in ("=", "!=", "<", "<=", ">", ">="):
            self._advance()
            right = self._additive()
            return Comparison(tok.value, left, right)
        negated = False
        if self._at_keyword("not"):
            # 'x NOT IN (...)', 'x NOT BETWEEN ... AND ...', 'x NOT LIKE ...'
            nxt = self._tokens[self._pos + 1]
            if nxt.type == TokenType.KEYWORD and nxt.lowered in ("in", "between", "like"):
                self._advance()
                negated = True
            else:
                return left
        if self._accept_keyword("in"):
            self._expect(TokenType.LPAREN, "'('")
            values = [self._literal()]
            while self._accept(TokenType.COMMA):
                values.append(self._literal())
            self._expect(TokenType.RPAREN, "')'")
            return InList(left, tuple(values), negated)
        if self._accept_keyword("between"):
            low = self._additive()
            self._expect_keyword("and")
            high = self._additive()
            return Between(left, low, high, negated)
        if self._accept_keyword("like"):
            pattern = self._additive()
            cmp = Comparison("LIKE", left, pattern)
            return UnaryOp("NOT", cmp) if negated else cmp
        if self._accept_keyword("is"):
            is_negated = bool(self._accept_keyword("not"))
            self._expect_keyword("null")
            return IsNull(left, is_negated)
        if negated:
            raise self._error("expected IN, BETWEEN or LIKE after NOT")
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            tok = self._cur
            if tok.type == TokenType.OP and tok.value in ("+", "-"):
                self._advance()
                left = BinaryOp(tok.value, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            tok = self._cur
            if tok.type == TokenType.STAR:
                self._advance()
                left = BinaryOp("*", left, self._unary())
            elif tok.type == TokenType.OP and tok.value == "/":
                self._advance()
                left = BinaryOp("/", left, self._unary())
            elif tok.type == TokenType.PERCENT_SIGN:
                self._advance()
                left = BinaryOp("%", left, self._unary())
            else:
                return left

    def _unary(self) -> Expr:
        if self._accept(TokenType.OP, "-"):
            return UnaryOp("-", self._unary())
        if self._accept(TokenType.OP, "+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> Expr:
        tok = self._cur
        if tok.type == TokenType.LPAREN:
            self._advance()
            inner = self._expression()
            self._expect(TokenType.RPAREN, "')'")
            return inner
        if tok.type == TokenType.INT:
            self._advance()
            return Literal(int(tok.value))
        if tok.type == TokenType.FLOAT:
            self._advance()
            return Literal(float(tok.value))
        if tok.type == TokenType.STRING:
            self._advance()
            return Literal(tok.value)
        if tok.type == TokenType.KEYWORD:
            word = tok.lowered
            if word == "true":
                self._advance()
                return Literal(True)
            if word == "false":
                self._advance()
                return Literal(False)
            if word == "null":
                self._advance()
                return Literal(None)
            if word in (
                "count", "sum", "avg", "min", "max", "count_distinct",
                "top", "quantile",
            ):
                return self._aggregate(word)
        if tok.type == TokenType.IDENT:
            return self._field_ref()
        raise self._error("expected an expression")

    def _aggregate(self, word: str) -> Expr:
        self._advance()
        self._expect(TokenType.LPAREN, "'('")
        if word == "count" and self._accept(TokenType.STAR):
            self._expect(TokenType.RPAREN, "')'")
            return AggregateCall("COUNT")
        if word == "top":
            ktok = self._expect(TokenType.INT, "TOP's k (an integer)")
            self._expect(TokenType.COMMA, "','")
            arg = self._expression()
            self._expect(TokenType.RPAREN, "')'")
            k = int(ktok.value)
            if k <= 0:
                raise ScrubSyntaxError("TOP requires a positive k", ktok.line, ktok.column)
            return AggregateCall("TOP", arg, k=k)
        if word == "quantile":
            arg = self._expression()
            self._expect(TokenType.COMMA, "','")
            qtok = self._cur
            if qtok.type not in (TokenType.INT, TokenType.FLOAT):
                raise self._error("expected QUANTILE's q (a number in [0, 1])")
            self._advance()
            q = float(qtok.value)
            if not 0.0 <= q <= 1.0:
                raise ScrubSyntaxError(
                    f"QUANTILE requires q in [0, 1], got {q:g}", qtok.line, qtok.column
                )
            self._expect(TokenType.RPAREN, "')'")
            return AggregateCall("QUANTILE", arg, q=q)
        arg = self._expression()
        self._expect(TokenType.RPAREN, "')'")
        return AggregateCall(word.upper(), arg)

    def _field_ref(self) -> FieldRef:
        first = self._expect(TokenType.IDENT, "field reference").value
        parts = [first]
        while self._accept(TokenType.DOT):
            nxt = self._cur
            if nxt.type in (TokenType.IDENT, TokenType.KEYWORD):
                self._advance()
                parts.append(nxt.value)
            else:
                raise self._error("expected field name after '.'")
        if len(parts) == 1:
            return FieldRef(None, parts[0])
        # 'a.b.c...' — the first part may be an event type or the root of a
        # dotted object path; the validator disambiguates.  We tentatively
        # treat the first part as a qualifier here.
        return FieldRef(parts[0], ".".join(parts[1:]))

    def _literal(self) -> Literal:
        negative = bool(self._accept(TokenType.OP, "-"))
        tok = self._cur
        if tok.type == TokenType.INT:
            self._advance()
            value: object = int(tok.value)
        elif tok.type == TokenType.FLOAT:
            self._advance()
            value = float(tok.value)
        elif tok.type == TokenType.STRING:
            self._advance()
            value = tok.value
        elif tok.type == TokenType.KEYWORD and tok.lowered in ("true", "false", "null"):
            self._advance()
            value = {"true": True, "false": False, "null": None}[tok.lowered]
        else:
            raise self._error("expected a literal")
        if negative:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise self._error("'-' must precede a number")
            value = -value
        return Literal(value)
