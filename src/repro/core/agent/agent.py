"""The Scrub host agent: the only Scrub code that runs on application hosts.

The agent holds the table of installed host query objects and exposes
the ``log()`` call the application invokes at event-generation points
(paper Section 3.1).  Per the design philosophy (Section 2), everything
here is built for minimal impact:

* **fast path**: with no query active for an event type, ``log()`` is a
  dict lookup and a counter increment — no event object is even built;
* only **selection, projection and sampling** run here (Section 4); the
  agent never joins, groups or aggregates;
* the outbound buffer is bounded and **drops instead of blocking**;
  drops are counted and reported;
* queries **expire**: every installed query carries an absolute
  deadline derived from the query span, so forgotten queries cannot
  keep loading the host (Section 3.2);
* an optional **impact governor** (``governor.py``) bounds per-query
  CPU and network cost per interval, escalating runaway queries through
  sampling downgrade → load shedding (drop-with-count) → quarantine
  (auto-uninstall with a structured reason).

The agent is thread-safe: an internal lock guards the query tables and
every per-query counter, so an application thread in ``log()`` can race
a flusher thread (or an ``uninstall``) without losing accounting — the
seen/shipped/dropped/shed conservation invariant holds under
concurrency.  Transport sends happen outside the lock.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

from ..central.aggregates import AggregateState, make_state
from ..central.groupby import _group_key_part
from ..events import Event, EventRegistry
from ..events.decorators import schema_of
from ..query.compile import compile_expr, compile_predicate
from ..query.planner import HostQueryObject
from .buffer import BoundedBuffer
from .governor import ImpactBudget, QueryGovernor
from .sampling import EventSampler
from .transport import EventBatch, PartialAggregate, Transport

__all__ = ["ScrubAgent", "AgentStats", "QueryStats"]

_perf = time.perf_counter


def _host_field_getter(_event_type: Optional[str], field: str) -> Callable[[Event], Any]:
    """Host predicates run on single events of a known type, so the
    qualifier is ignored and resolution is a direct event lookup."""
    return lambda event: event.get(field)


@dataclass
class QueryStats:
    """Per-installed-query accounting on one host."""

    seen: int = 0      # events that matched selection (the estimator's M_i)
    shipped: int = 0   # events sampled in and buffered for transport
    dropped: int = 0   # events lost to a full buffer
    shed: int = 0      # events the impact governor dropped-with-count


@dataclass
class AgentStats:
    """Whole-agent accounting used by the overhead experiments."""

    events_logged: int = 0      # every log() call
    events_examined: int = 0    # log() calls that found >= 1 active query
    events_checked: int = 0     # (query, event) span+predicate evaluations
    events_matched: int = 0     # (query, event) selection matches
    events_shipped: int = 0     # (query, event) pairs buffered
    events_dropped: int = 0     # (query, event) pairs dropped at the buffer
    events_preaggregated: int = 0  # host-side aggregate-state updates
    events_shed: int = 0        # (query, event) pairs shed by the governor
    queries_quarantined: int = 0  # governor auto-uninstalls on this host
    batches_flushed: int = 0
    bytes_shipped: int = 0


class _InstalledQuery:
    """A host query object compiled and armed on this agent."""

    __slots__ = (
        "spec",
        "predicate",
        "project_fields",
        "sampler",
        "window_seconds",
        "activates_at",
        "expires_at",
        "seen_by_window",
        "stats",
        "pending_dropped",
        "pending_shed",
        "group_fns",
        "agg_arg_fns",
        "partial_groups",
    )

    def __init__(
        self,
        spec: HostQueryObject,
        keep_all_fields: bool,
        activates_at: float,
        expires_at: float,
    ) -> None:
        self.spec = spec
        self.predicate = compile_predicate(spec.predicate, _host_field_getter)
        self.project_fields: Optional[tuple[str, ...]] = (
            None if keep_all_fields else spec.projection
        )
        self.sampler = EventSampler(spec.event_sampling_rate, spec.query_id)
        self.window_seconds = spec.window_seconds
        self.activates_at = activates_at
        self.expires_at = expires_at
        self.seen_by_window: dict[tuple[str, int], int] = {}
        self.stats = QueryStats()
        self.pending_dropped = 0
        self.pending_shed = 0
        # AGGREGATE ON HOSTS mode: per-window per-group aggregate states
        # held on the host instead of shipping events (ablation mode —
        # note the memory grows with window x group cardinality, which is
        # exactly the host impact the paper's central execution avoids).
        self.group_fns = None
        self.agg_arg_fns = None
        self.partial_groups: dict[int, dict[tuple, list[AggregateState]]] = {}
        if spec.aggregation is not None:
            self.group_fns = [
                compile_expr(g, _host_field_getter)
                for g in spec.aggregation.group_by
            ]
            self.agg_arg_fns = [
                (lambda _event: True)
                if agg.arg is None
                else compile_expr(agg.arg, _host_field_getter)
                for agg in spec.aggregation.aggregates
            ]

    def preaggregate(self, event: Event, window: int) -> None:
        per_window = self.partial_groups.get(window)
        if per_window is None:
            per_window = {}
            self.partial_groups[window] = per_window
        key = tuple(_group_key_part(fn(event)) for fn in self.group_fns)
        states = per_window.get(key)
        if states is None:
            states = [make_state(agg) for agg in self.spec.aggregation.aggregates]
            per_window[key] = states
        for state, arg_fn in zip(states, self.agg_arg_fns):
            state.update(arg_fn(event))

    def drain_partials(self, cutoff_window: float) -> list[PartialAggregate]:
        """Extract partials for windows strictly below *cutoff_window*."""
        out: list[PartialAggregate] = []
        for window in sorted(self.partial_groups):
            if window >= cutoff_window:
                continue
            per_window = self.partial_groups.pop(window)
            for key, states in per_window.items():
                out.append(
                    PartialAggregate(
                        event_type=self.spec.event_type,
                        window=window,
                        group_key=key,
                        values=tuple(state.to_partial() for state in states),
                    )
                )
        return out

    @property
    def partial_state_count(self) -> int:
        """Group states currently held on this host (the memory metric)."""
        return sum(len(groups) for groups in self.partial_groups.values())


class ScrubAgent:
    """Per-host Scrub runtime embedded in the application process."""

    def __init__(
        self,
        host: str,
        registry: EventRegistry,
        transport: Transport,
        clock: Callable[[], float] = time.time,
        buffer_capacity: int = 10_000,
        flush_batch_size: int = 500,
        validate_payloads: bool = False,
        max_queries: Optional[int] = None,
        impact_budget: Optional[ImpactBudget] = None,
    ) -> None:
        self.host = host
        self.registry = registry
        self.transport = transport
        self.clock = clock
        self.validate_payloads = validate_payloads
        #: Admission control: refuse installs beyond this many concurrent
        #: queries ("query load can at times be considerable", paper §1) —
        #: the host's impact budget is bounded no matter the demand.
        self.max_queries = max_queries
        #: Per-query impact budget; ``None`` disables the governor.
        self.impact_budget = impact_budget
        self._buffer: BoundedBuffer[tuple[_InstalledQuery, Event]] = BoundedBuffer(
            buffer_capacity
        )
        self._flush_batch_size = flush_batch_size
        self._queries: dict[str, list[_InstalledQuery]] = {}  # query_id -> per-type
        self._by_type: dict[str, list[_InstalledQuery]] = {}  # event_type -> queries
        self._governors: dict[str, QueryGovernor] = {}
        #: Quarantine reasons awaiting their ride on the next flush.
        self._pending_quarantine: dict[str, str] = {}
        #: Permanent record: query_id -> structured quarantine reason.
        self.quarantined: dict[str, str] = {}
        # Guards the query tables and all per-query counters; reentrant
        # because log() may trigger a flush while holding it.
        self._lock = threading.RLock()
        self.stats = AgentStats()

    # -- query lifecycle -------------------------------------------------------

    def install(
        self,
        spec: HostQueryObject,
        activates_at: Optional[float] = None,
        expires_at: Optional[float] = None,
    ) -> None:
        """Arm one host query object on this agent.

        *expires_at* defaults to "never" only for callers that manage
        lifecycle themselves (the query server always passes the span
        deadline).
        """
        with self._lock:
            if (
                self.max_queries is not None
                and spec.query_id not in self._queries
                and len(self._queries) >= self.max_queries
            ):
                raise RuntimeError(
                    f"host {self.host}: query limit reached "
                    f"({self.max_queries} concurrent); not installing {spec.query_id}"
                )
            if spec.event_type not in self.registry:
                raise KeyError(
                    f"host {self.host}: cannot install query {spec.query_id} — "
                    f"event type {spec.event_type!r} not registered here"
                )
            schema = self.registry.get(spec.event_type)
            keep_all = set(spec.projection) >= set(schema.field_names)
            installed = _InstalledQuery(
                spec,
                keep_all_fields=keep_all,
                activates_at=activates_at if activates_at is not None else -math.inf,
                expires_at=expires_at if expires_at is not None else math.inf,
            )
            self._queries.setdefault(spec.query_id, []).append(installed)
            self._by_type.setdefault(spec.event_type, []).append(installed)
            if (
                self.impact_budget is not None
                and spec.query_id not in self._governors
            ):
                self._governors[spec.query_id] = QueryGovernor(
                    self.impact_budget, spec.query_id, self.clock()
                )

    def uninstall(self, query_id: str) -> bool:
        """Remove every host query object for *query_id*; flushes first so
        buffered events — and the seen/drop counters the estimator needs —
        are not orphaned.  Returns False if unknown."""
        with self._lock:
            if query_id not in self._queries:
                return False
            for iq in self._queries[query_id]:
                iq.expires_at = min(iq.expires_at, self.clock())
        self.flush()
        with self._lock:
            installed = self._queries.pop(query_id, None)
            self._governors.pop(query_id, None)
            if installed is None:
                # The flush expired the query and already cleaned up.
                return True
            for iq in installed:
                per_type = self._by_type.get(iq.spec.event_type, [])
                if iq in per_type:
                    per_type.remove(iq)
                if not per_type:
                    self._by_type.pop(iq.spec.event_type, None)
        return True

    @property
    def active_query_ids(self) -> tuple[str, ...]:
        return tuple(self._queries)

    def query_stats(self, query_id: str) -> QueryStats:
        """Aggregated stats across this query's per-type objects."""
        with self._lock:
            installed = self._queries.get(query_id)
            if not installed:
                raise KeyError(f"query {query_id} not installed on {self.host}")
            total = QueryStats()
            for iq in installed:
                total.seen += iq.stats.seen
                total.shipped += iq.stats.shipped
                total.dropped += iq.stats.dropped
                total.shed += iq.stats.shed
            return total

    def governor_state(self) -> dict[str, dict]:
        """Per-query governor snapshots (stage, rate factor, breaches)."""
        with self._lock:
            return {
                query_id: gov.snapshot()
                for query_id, gov in self._governors.items()
            }

    # -- the hot path ------------------------------------------------------------

    def log(
        self,
        event_type: str,
        payload: Optional[Mapping[str, Any]] = None,
        *,
        request_id: int,
        timestamp: Optional[float] = None,
        **fields: Any,
    ) -> int:
        """Record an application event; returns how many queries consumed it.

        With no active query on *event_type* this returns after one dict
        lookup — the fast path whose cost the overhead experiments
        measure.  Field values may be given as a mapping, as keyword
        arguments, or both (kwargs win).
        """
        stats = self.stats
        stats.events_logged += 1
        watchers = self._by_type.get(event_type)
        if not watchers:
            return 0
        stats.events_examined += 1

        now = timestamp if timestamp is not None else self.clock()
        if payload is None:
            data: Mapping[str, Any] = fields
        elif fields:
            data = {**payload, **fields}
        else:
            data = payload
        if self.validate_payloads:
            event = Event.checked(
                self.registry.get(event_type), data, request_id, now, self.host
            )
        else:
            event = Event(event_type, dict(data), request_id, now, self.host)

        matched = 0
        stats.events_checked += len(watchers)
        governors = self._governors
        with self._lock:
            for iq in watchers:
                gov = governors.get(iq.spec.query_id) if governors else None
                if gov is not None:
                    t0 = _perf()
                    reason = gov.roll(now)
                    if reason is not None:
                        # This query just exhausted its impact budget:
                        # quarantine (auto-uninstall); the reason rides
                        # the final flush.  This event is not processed.
                        self._note_quarantine(iq.spec.query_id, reason, now)
                        continue
                try:
                    if not (iq.activates_at <= now < iq.expires_at):
                        continue
                    if not iq.predicate(event):
                        continue
                    matched += 1
                    stats.events_matched += 1
                    iq.stats.seen += 1
                    window = int(now // iq.window_seconds)
                    key = (event_type, window)
                    iq.seen_by_window[key] = iq.seen_by_window.get(key, 0) + 1
                    if gov is not None and gov.shedding:
                        # Drop-with-count: the event still counted toward
                        # M_i (COUNT stays exact); no preaggregate, no ship.
                        iq.stats.shed += 1
                        iq.pending_shed += 1
                        stats.events_shed += 1
                        gov.note_shed()
                        continue
                    if iq.group_fns is not None:
                        iq.preaggregate(event, window)
                        stats.events_preaggregated += 1
                        continue
                    if not iq.sampler.keep(request_id):
                        continue
                    if gov is not None and not gov.keep(request_id):
                        # Downgrade-stage thinning: an honest random
                        # subsample (keyed on request id), so the
                        # estimator's event-stage variance absorbs it.
                        continue
                    out = (
                        event
                        if iq.project_fields is None
                        else event.project(iq.project_fields)
                    )
                    if self._buffer.offer((iq, out)):
                        iq.stats.shipped += 1
                        stats.events_shipped += 1
                    else:
                        iq.stats.dropped += 1
                        iq.pending_dropped += 1
                        stats.events_dropped += 1
                        if gov is not None:
                            gov.note_drop()
                finally:
                    if gov is not None:
                        gov.charge(_perf() - t0)
        if len(self._buffer) >= self._flush_batch_size:
            self.flush(now)
        return matched

    def log_object(self, obj: Any, *, request_id: int, timestamp: Optional[float] = None) -> int:
        """``log()`` for instances of ``@scrub_type`` classes (paper Fig. 1)."""
        schema = schema_of(obj)
        return self.log(
            schema.name, obj.payload(), request_id=request_id, timestamp=timestamp
        )

    # -- flushing ------------------------------------------------------------------

    def flush(self, now: Optional[float] = None) -> int:
        """Drain the buffer into per-query batches and hand them to the
        transport.  Also emits empty 'heartbeat' batches for queries with
        pending seen/drop/shed counters (or a quarantine notice) so the
        central estimator learns M_i even when sampling shipped nothing.
        Batches are built under the agent lock — counters move from the
        tables into exactly one batch — and sent outside it.  Returns
        batches sent."""
        if now is None:
            now = self.clock()
        batches: list[EventBatch] = []
        with self._lock:
            drained = self._buffer.drain()
            by_query: dict[str, list[Event]] = {}
            for iq, event in drained:
                by_query.setdefault(iq.spec.query_id, []).append(event)

            # Roll governors first: the previous interval is judged before
            # this flush's bytes are charged to the new one.
            for query_id, gov in list(self._governors.items()):
                reason = gov.roll(now)
                if reason is not None:
                    self._note_quarantine(query_id, reason, now)

            for query_id, installed in list(self._queries.items()):
                events = by_query.pop(query_id, [])
                seen: dict[tuple[str, int], int] = {}
                dropped = 0
                shed = 0
                partials: list[PartialAggregate] = []
                for iq in installed:
                    if iq.seen_by_window:
                        for key, count in iq.seen_by_window.items():
                            seen[key] = seen.get(key, 0) + count
                        iq.seen_by_window = {}
                    dropped += iq.pending_dropped
                    iq.pending_dropped = 0
                    shed += iq.pending_shed
                    iq.pending_shed = 0
                    if iq.partial_groups:
                        # Ship completed windows; the current window keeps
                        # accumulating unless the query span has ended.
                        cutoff = (
                            math.inf
                            if now >= iq.expires_at
                            else int(now // iq.window_seconds)
                        )
                        partials.extend(iq.drain_partials(cutoff))
                quarantined = self._pending_quarantine.pop(query_id, "")
                if (
                    not events
                    and not seen
                    and not dropped
                    and not shed
                    and not partials
                    and not quarantined
                ):
                    continue
                batch = EventBatch(
                    host=self.host,
                    query_id=query_id,
                    events=events,
                    seen_counts=seen,
                    dropped=dropped,
                    sent_at=now,
                    partials=partials,
                    shed=shed,
                    quarantined=quarantined,
                )
                nbytes = batch.wire_size()
                gov = self._governors.get(query_id)
                if gov is not None:
                    gov.charge(0.0, nbytes)
                self.stats.batches_flushed += 1
                self.stats.bytes_shipped += nbytes
                batches.append(batch)
            # Events for queries uninstalled between buffering and draining.
            for query_id, events in by_query.items():
                batch = EventBatch(
                    host=self.host, query_id=query_id, events=events, sent_at=now
                )
                self.stats.batches_flushed += 1
                self.stats.bytes_shipped += batch.wire_size()
                batches.append(batch)
            self._expire(now)
        for batch in batches:
            self.transport.send(batch)
        return len(batches)

    def _note_quarantine(self, query_id: str, reason: str, now: float) -> None:
        """Governor verdict: record the reason (it rides the next flush for
        this query, exactly once) and expire every host query object so no
        further events are examined.  Caller holds the lock."""
        installed = self._queries.get(query_id)
        if installed is None:
            return
        self._pending_quarantine[query_id] = reason
        self.quarantined[query_id] = reason
        self.stats.queries_quarantined += 1
        for iq in installed:
            iq.expires_at = min(iq.expires_at, now)

    def _expire(self, now: float) -> None:
        expired = [
            query_id
            for query_id, installed in self._queries.items()
            if all(iq.expires_at <= now for iq in installed)
        ]
        for query_id in expired:
            installed = self._queries.pop(query_id)
            self._governors.pop(query_id, None)
            for iq in installed:
                per_type = self._by_type.get(iq.spec.event_type, [])
                if iq in per_type:
                    per_type.remove(iq)
                if not per_type:
                    self._by_type.pop(iq.spec.event_type, None)

    @property
    def preagg_state_count(self) -> int:
        """Aggregate group states held for AGGREGATE ON HOSTS queries."""
        return sum(
            iq.partial_state_count
            for installed in self._queries.values()
            for iq in installed
        )

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    @property
    def buffer_dropped(self) -> int:
        return self._buffer.dropped
