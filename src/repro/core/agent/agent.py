"""The Scrub host agent: the only Scrub code that runs on application hosts.

The agent holds the table of installed host query objects and exposes
the ``log()`` call the application invokes at event-generation points
(paper Section 3.1).  Per the design philosophy (Section 2), everything
here is built for minimal impact:

* **fast path**: with no query active for an event type, ``log()`` is a
  dict lookup and a counter increment — no event object is even built;
* armed queries are compiled to **generated, schema-specialized code**
  (``query/codegen.py``): one exec-compiled dispatcher per event type
  fuses selection and the sampling decision for every query routed to
  that type, sharing field loads and the request-id hash pre-mix;
* a **routing index** keyed on event type means ``log()`` never touches
  queries whose FROM clause names a different type;
* only **selection, projection and sampling** run here (Section 4); the
  agent never joins, groups or aggregates;
* the outbound buffer is bounded and **drops instead of blocking**;
  drops are counted and reported;
* queries **expire**: every installed query carries an absolute
  deadline derived from the query span, so forgotten queries cannot
  keep loading the host (Section 3.2);
* an optional **impact governor** (``governor.py``) bounds per-query
  CPU and network cost per interval, escalating runaway queries through
  sampling downgrade → load shedding (drop-with-count) → quarantine
  (auto-uninstall with a structured reason).  Wall time is charged via
  deterministic 1-in-N sampled timing (``TIMING_SAMPLE_EVERY``) so the
  governor does not inflate the budget it measures.

The agent is thread-safe: an internal lock guards the query tables and
every per-query counter, so an application thread in ``log()`` can race
a flusher thread (or an ``uninstall``) without losing accounting — the
seen/shipped/dropped/shed conservation invariant holds under
concurrency.  Transport sends happen outside the lock.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Mapping, Optional

from ..central.aggregates import AggregateState, make_state
from ..central.groupby import _group_key_part
from ..events import Event, EventRegistry
from ..events.decorators import schema_of
from ..events.event import _rebuild_event
from ..query.codegen import (
    COUNT_MASK,
    ArmedQuery,
    CodegenUnsupported,
    build_entry,
    build_processor,
)
from ..query.compile import compile_expr, compile_predicate
from ..query.planner import HostQueryObject
from .buffer import BoundedBuffer
from .governor import TIMING_SAMPLE_EVERY, ImpactBudget, QueryGovernor
from .sampling import EventSampler
from .transport import EventBatch, PartialAggregate, Transport

__all__ = ["ScrubAgent", "AgentStats", "QueryStats"]

_perf = time.perf_counter

#: Smoothing factor for the per-query armed-cost EWMA (ns/routed call).
_EWMA_ALPHA = 0.2


def _host_field_getter(_event_type: Optional[str], field: str) -> Callable[[Event], Any]:
    """Host predicates run on single events of a known type, so the
    qualifier is ignored and resolution is a direct event lookup."""
    return lambda event: event.get(field)


@dataclass
class QueryStats:
    """Per-installed-query accounting on one host."""

    seen: int = 0      # events that matched selection (the estimator's M_i)
    shipped: int = 0   # events sampled in and buffered for transport
    dropped: int = 0   # events lost to a full buffer
    shed: int = 0      # events the impact governor dropped-with-count


@dataclass
class AgentStats:
    """Whole-agent accounting used by the overhead experiments."""

    events_logged: int = 0      # every log() call
    events_examined: int = 0    # log() calls that found >= 1 active query
    events_checked: int = 0     # (query, event) span+predicate evaluations
    events_matched: int = 0     # (query, event) selection matches
    events_shipped: int = 0     # (query, event) pairs buffered
    events_dropped: int = 0     # (query, event) pairs dropped at the buffer
    events_preaggregated: int = 0  # host-side aggregate-state updates
    events_shed: int = 0        # (query, event) pairs shed by the governor
    queries_quarantined: int = 0  # governor auto-uninstalls on this host
    batches_flushed: int = 0
    bytes_shipped: int = 0


class _InstalledQuery:
    """A host query object compiled and armed on this agent."""

    __slots__ = (
        "spec",
        "predicate",
        "project_fields",
        "sampler",
        "sample_always",
        "window_seconds",
        "activates_at",
        "expires_at",
        "seen_by_window",
        "stats",
        "pending_dropped",
        "pending_shed",
        "group_fns",
        "agg_arg_fns",
        "partial_groups",
        "governor",
        "fast_ship",
        "ewma_ns",
        "routed_base",
        "logged_base",
    )

    def __init__(
        self,
        spec: HostQueryObject,
        keep_all_fields: bool,
        activates_at: float,
        expires_at: float,
    ) -> None:
        self.spec = spec
        self.predicate = compile_predicate(spec.predicate, _host_field_getter)
        self.project_fields: Optional[tuple[str, ...]] = (
            None if keep_all_fields else spec.projection
        )
        self.sampler = EventSampler(spec.event_sampling_rate, spec.query_id)
        self.window_seconds = spec.window_seconds
        self.activates_at = activates_at
        self.expires_at = expires_at
        self.seen_by_window: dict[tuple[str, int], int] = {}
        self.stats = QueryStats()
        self.pending_dropped = 0
        self.pending_shed = 0
        #: Resolved once at install; avoids a governors-dict lookup per event.
        self.governor: Optional[QueryGovernor] = None
        #: Precomputed at install: no governor and no host aggregation,
        #: so a match goes straight from the keep-bit to the buffer.
        self.fast_ship = False
        #: Armed-cost EWMA (ns per routed call, dispatch share + match
        #: processing), fed by the 1-in-N timing samples; None until the
        #: first timed call routes this query's event type.
        self.ewma_ns: Optional[float] = None
        #: Route-group call count at install time — routed calls since
        #: install = group.calls - routed_base.
        self.routed_base = 0
        #: agent.stats.events_logged at install time, for the skipped count.
        self.logged_base = 0
        # AGGREGATE ON HOSTS mode: per-window per-group aggregate states
        # held on the host instead of shipping events (ablation mode —
        # note the memory grows with window x group cardinality, which is
        # exactly the host impact the paper's central execution avoids).
        self.group_fns = None
        self.agg_arg_fns = None
        self.partial_groups: dict[int, dict[tuple, list[AggregateState]]] = {}
        if spec.aggregation is not None:
            self.group_fns = [
                compile_expr(g, _host_field_getter)
                for g in spec.aggregation.group_by
            ]
            self.agg_arg_fns = [
                (lambda _event: True)
                if agg.arg is None
                else compile_expr(agg.arg, _host_field_getter)
                for agg in spec.aggregation.aggregates
            ]
        # Aggregating queries never consult the sampler (preaggregation
        # consumes every matched event), so their keep-bit is constant.
        self.sample_always = (
            spec.event_sampling_rate >= 1.0 or spec.aggregation is not None
        )

    def preaggregate(self, event: Event, window: int) -> None:
        per_window = self.partial_groups.get(window)
        if per_window is None:
            per_window = {}
            self.partial_groups[window] = per_window
        key = tuple(_group_key_part(fn(event)) for fn in self.group_fns)
        states = per_window.get(key)
        if states is None:
            states = [make_state(agg) for agg in self.spec.aggregation.aggregates]
            per_window[key] = states
        for state, arg_fn in zip(states, self.agg_arg_fns):
            state.update(arg_fn(event))

    def drain_partials(self, cutoff_window: float) -> list[PartialAggregate]:
        """Extract partials for windows strictly below *cutoff_window*."""
        out: list[PartialAggregate] = []
        for window in sorted(self.partial_groups):
            if window >= cutoff_window:
                continue
            per_window = self.partial_groups.pop(window)
            for key, states in per_window.items():
                out.append(
                    PartialAggregate(
                        event_type=self.spec.event_type,
                        window=window,
                        group_key=key,
                        values=tuple(state.to_partial() for state in states),
                    )
                )
        return out

    @property
    def partial_state_count(self) -> int:
        """Group states currently held on this host (the memory metric)."""
        return sum(len(groups) for groups in self.partial_groups.values())


class _RouteGroup:
    """Everything ``log()`` needs for one event type: the armed queries
    (bit order matches the processor's mask) and the fused processor."""

    __slots__ = ("entries", "process", "governors", "calls", "mixed")

    def __init__(
        self,
        entries: tuple[_InstalledQuery, ...],
        process: Callable[[dict, int, float], int],
        governors: tuple[QueryGovernor, ...],
        calls: int,
        mixed: bool,
    ) -> None:
        self.entries = entries
        self.process = process
        self.governors = governors
        #: log() calls routed to this event type; survives rebuilds.
        self.calls = calls
        #: True when ``process`` returns ``n | mask << 32`` because some
        #: entries (governed/aggregating, or the closure fallback) need
        #: the agent's reference walk; all-fused groups return bare ``n``.
        self.mixed = mixed


class ScrubAgent:
    """Per-host Scrub runtime embedded in the application process."""

    def __init__(
        self,
        host: str,
        registry: EventRegistry,
        transport: Transport,
        clock: Callable[[], float] = time.time,
        buffer_capacity: int = 10_000,
        flush_batch_size: int = 500,
        validate_payloads: bool = False,
        max_queries: Optional[int] = None,
        impact_budget: Optional[ImpactBudget] = None,
        use_codegen: bool = True,
        timing_sample_every: Optional[int] = None,
    ) -> None:
        self.host = host
        self.registry = registry
        self.transport = transport
        self.clock = clock
        self.validate_payloads = validate_payloads
        #: Admission control: refuse installs beyond this many concurrent
        #: queries ("query load can at times be considerable", paper §1) —
        #: the host's impact budget is bounded no matter the demand.
        self.max_queries = max_queries
        #: Per-query impact budget; ``None`` disables the governor.
        self.impact_budget = impact_budget
        #: False forces the closure-compiler dispatch path; the bench
        #: differential pins it byte-identical to the codegen path.
        self._use_codegen = use_codegen
        self._timing_every = (
            timing_sample_every if timing_sample_every is not None else TIMING_SAMPLE_EVERY
        )
        if self._timing_every < 1:
            raise ValueError("timing_sample_every must be >= 1")
        #: Buffered ship records: ``(iq, payload, request_id, timestamp)``.
        #: No ``Event`` exists until flush materializes the batch — event
        #: construction is paid off the application's hot path.
        self._buffer: BoundedBuffer[tuple[_InstalledQuery, dict, int, float]] = (
            BoundedBuffer(buffer_capacity)
        )
        self._flush_batch_size = flush_batch_size
        self._queries: dict[str, list[_InstalledQuery]] = {}  # query_id -> per-type
        self._by_type: dict[str, list[_InstalledQuery]] = {}  # event_type -> queries
        #: The routing index: event type -> fused dispatcher + entries.
        #: Replaced wholesale (never mutated) under the lock, so the
        #: unlocked fast-path read in ``log()`` sees a consistent group.
        self._routes: dict[str, _RouteGroup] = {}
        #: event type -> the armed entry ``log()`` actually calls: the
        #: generated whole-path function for all-fused ungoverned
        #: groups, else a partial bound to ``_log_routed``.  Rebuilt in
        #: lock-step with ``_routes``.
        self._armed: dict[str, Callable[..., int]] = {}
        self._governors: dict[str, QueryGovernor] = {}
        #: query_id -> applied sampling-rate version (0 = install-time
        #: rates, never retuned); reported alongside query_costs so the
        #: central controller can tell when a retune has landed.
        self._rate_versions: dict[str, int] = {}
        #: Quarantine reasons awaiting their ride on the next flush.
        self._pending_quarantine: dict[str, str] = {}
        #: Permanent record: query_id -> structured quarantine reason.
        self.quarantined: dict[str, str] = {}
        # Guards the query tables and all per-query counters.  A plain
        # (non-reentrant) lock: every acquiring method — including the
        # auto-flush log() triggers — does its follow-up work after
        # release, and the hot path uses the hoisted bound methods below
        # with try/finally, which beats a ``with`` block by ~100 ns/call.
        self._lock = threading.Lock()
        self._lock_acquire = self._lock.acquire
        self._lock_release = self._lock.release
        self.stats = AgentStats()

    # -- query lifecycle -------------------------------------------------------

    def install(
        self,
        spec: HostQueryObject,
        activates_at: Optional[float] = None,
        expires_at: Optional[float] = None,
    ) -> None:
        """Arm one host query object on this agent.

        *expires_at* defaults to "never" only for callers that manage
        lifecycle themselves (the query server always passes the span
        deadline).
        """
        with self._lock:
            if (
                self.max_queries is not None
                and spec.query_id not in self._queries
                and len(self._queries) >= self.max_queries
            ):
                raise RuntimeError(
                    f"host {self.host}: query limit reached "
                    f"({self.max_queries} concurrent); not installing {spec.query_id}"
                )
            if spec.event_type not in self.registry:
                raise KeyError(
                    f"host {self.host}: cannot install query {spec.query_id} — "
                    f"event type {spec.event_type!r} not registered here"
                )
            schema = self.registry.get(spec.event_type)
            keep_all = set(spec.projection) >= set(schema.field_names)
            installed = _InstalledQuery(
                spec,
                keep_all_fields=keep_all,
                activates_at=activates_at if activates_at is not None else -math.inf,
                expires_at=expires_at if expires_at is not None else math.inf,
            )
            prior = self._routes.get(spec.event_type)
            installed.routed_base = prior.calls if prior is not None else 0
            installed.logged_base = self.stats.events_logged
            self._queries.setdefault(spec.query_id, []).append(installed)
            self._by_type.setdefault(spec.event_type, []).append(installed)
            if (
                self.impact_budget is not None
                and spec.query_id not in self._governors
            ):
                self._governors[spec.query_id] = QueryGovernor(
                    self.impact_budget, spec.query_id, self.clock()
                )
            installed.governor = self._governors.get(spec.query_id)
            installed.fast_ship = (
                installed.governor is None and installed.group_fns is None
            )
            self._rebuild_routes()

    def uninstall(self, query_id: str) -> bool:
        """Remove every host query object for *query_id*; flushes first so
        buffered events — and the seen/drop counters the estimator needs —
        are not orphaned.  Returns False if unknown."""
        with self._lock:
            if query_id not in self._queries:
                return False
            for iq in self._queries[query_id]:
                iq.expires_at = min(iq.expires_at, self.clock())
            # Rebuild so a racing log() stops matching this query even
            # before the flush below runs (dispatchers bake the span).
            self._rebuild_routes()
        self.flush()
        with self._lock:
            installed = self._queries.pop(query_id, None)
            self._governors.pop(query_id, None)
            self._rate_versions.pop(query_id, None)
            if installed is None:
                # The flush expired the query and already cleaned up.
                return True
            for iq in installed:
                per_type = self._by_type.get(iq.spec.event_type, [])
                if iq in per_type:
                    per_type.remove(iq)
                if not per_type:
                    self._by_type.pop(iq.spec.event_type, None)
            self._rebuild_routes()
        return True

    def retune(
        self, query_id: str, event_rate: float, version: Optional[int] = None
    ) -> bool:
        """Apply a controller-issued event-rate update to a live query.

        Per-query counters (seen/shipped windows, cost EWMAs, governor
        state) are untouched — only the samplers' thresholds move, and
        the dispatchers are regenerated because codegen bakes the
        threshold into the fused entry.  The keyed sampler makes the
        change nested: lowering the rate keeps a strict subset of the
        request ids kept before.  Stale versions (≤ the applied one) are
        ignored so reordered INSTALL replays cannot roll a rate back.
        Returns False for unknown queries and stale versions.
        """
        if not 0.0 < event_rate <= 1.0:
            raise ValueError(f"sampling rate must be in (0, 1], got {event_rate}")
        with self._lock:
            installed = self._queries.get(query_id)
            if installed is None:
                return False
            if version is not None and version <= self._rate_versions.get(query_id, 0):
                return False
            for iq in installed:
                iq.sampler.set_rate(event_rate)
                iq.sample_always = (
                    event_rate >= 1.0 or iq.spec.aggregation is not None
                )
            if version is not None:
                self._rate_versions[query_id] = version
            self._rebuild_routes()
        return True

    def rates_version(self, query_id: str) -> int:
        """The sampling-rate version currently applied for *query_id*
        (0 = install-time rates)."""
        with self._lock:
            return self._rate_versions.get(query_id, 0)

    @property
    def active_query_ids(self) -> tuple[str, ...]:
        return tuple(self._queries)

    def query_stats(self, query_id: str) -> QueryStats:
        """Aggregated stats across this query's per-type objects."""
        with self._lock:
            installed = self._queries.get(query_id)
            if not installed:
                raise KeyError(f"query {query_id} not installed on {self.host}")
            total = QueryStats()
            for iq in installed:
                total.seen += iq.stats.seen
                total.shipped += iq.stats.shipped
                total.dropped += iq.stats.dropped
                total.shed += iq.stats.shed
            return total

    def governor_state(self) -> dict[str, dict]:
        """Per-query governor snapshots (stage, rate factor, breaches)."""
        with self._lock:
            return {
                query_id: gov.snapshot()
                for query_id, gov in self._governors.items()
            }

    def query_costs(self) -> dict[str, dict[str, Any]]:
        """Per-query armed-cost counters for live impact visibility.

        For each installed query: ``ewma_ns`` — smoothed cost in ns per
        routed ``log()`` call (its share of the fused dispatcher plus
        any match processing, from the 1-in-N timing samples; summed
        over the query's per-type objects); ``routed`` — calls the
        schema routing index sent to this query's dispatcher(s);
        ``skipped`` — calls the index let bypass it entirely.
        Surfaced through scrubd STATS via the agent heartbeat.
        """
        with self._lock:
            logged = self.stats.events_logged
            out: dict[str, dict[str, Any]] = {}
            for query_id, installed in self._queries.items():
                ewma = 0.0
                routed = 0
                skipped = 0
                for iq in installed:
                    group = self._routes.get(iq.spec.event_type)
                    calls = group.calls if group is not None else iq.routed_base
                    routed_i = calls - iq.routed_base
                    routed += routed_i
                    skipped += (logged - iq.logged_base) - routed_i
                    if iq.ewma_ns is not None:
                        ewma += iq.ewma_ns
                out[query_id] = {
                    "ewma_ns": round(ewma, 1),
                    "routed": routed,
                    "skipped": skipped,
                    # The applied rate version rides the same heartbeat
                    # payload: the controller treats its absence (an old
                    # agent) or a lagging value as reason to freeze.
                    "rates_version": self._rate_versions.get(query_id, 0),
                }
            return out

    # -- the routing index -------------------------------------------------------

    def _rebuild_routes(self) -> None:
        """Regenerate the per-event-type dispatchers from ``_by_type``.

        Called under the lock on every query-table mutation (install,
        uninstall, quarantine, expiry) — the rare path pays codegen so
        the per-event path stays straight-line.  Route-group call
        counters carry over so routed/skipped accounting survives."""
        old = self._routes
        routes: dict[str, _RouteGroup] = {}
        armed: dict[str, Callable[..., int]] = {}
        for event_type, iqs in self._by_type.items():
            if not iqs:
                continue
            prior = old.get(event_type)
            group, entry = self._build_group(
                event_type, tuple(iqs), prior.calls if prior is not None else 0
            )
            routes[event_type] = group
            armed[event_type] = (
                entry
                if entry is not None
                else partial(self._log_routed, group, event_type)
            )
        self._routes = routes
        self._armed = armed

    def _build_group(
        self,
        event_type: str,
        entries: tuple[_InstalledQuery, ...],
        calls: int,
    ) -> tuple[_RouteGroup, Optional[Callable[..., int]]]:
        governors: list[QueryGovernor] = []
        for iq in entries:
            gov = iq.governor
            if gov is not None and gov not in governors:
                governors.append(gov)
        process = None
        mixed = True
        if self._use_codegen:
            armed = tuple(
                ArmedQuery(
                    predicate=iq.spec.predicate,
                    sampler_seed=iq.sampler._seed,
                    sampler_threshold=iq.sampler._threshold,
                    sample_always=iq.sample_always,
                    activates_at=iq.activates_at,
                    expires_at=iq.expires_at,
                    fused=iq.fast_ship,
                    iq=iq if iq.fast_ship else None,
                    qstats=iq.stats if iq.fast_ship else None,
                    window_seconds=iq.window_seconds,
                    project=iq.project_fields,
                )
                for iq in entries
            )
            try:
                process = build_processor(
                    armed,
                    event_type=event_type,
                    host=self.host,
                    stats=self.stats,
                    buffer=self._buffer,
                    flush_batch_size=self._flush_batch_size,
                )
                mixed = any(not a.fused for a in armed)
            except CodegenUnsupported:
                process = None
        if process is None:
            process = self._closure_process(event_type, entries)
            mixed = True
        group = _RouteGroup(entries, process, tuple(governors), calls, mixed)
        entry: Optional[Callable[..., int]] = None
        if not mixed and not governors:
            # All-fused and ungoverned (mixed is only ever False when
            # codegen succeeded): generate the whole armed entry —
            # clock, normalization, lock, timing sample and the fused
            # body in one function, no ``_log_routed`` frame.
            try:
                entry = build_entry(
                    armed,
                    event_type=event_type,
                    host=self.host,
                    stats=self.stats,
                    buffer=self._buffer,
                    flush_batch_size=self._flush_batch_size,
                    group=group,
                    clock=self.clock,
                    lock_acquire=self._lock_acquire,
                    lock_release=self._lock_release,
                    flush=self.flush,
                    timing_every=self._timing_every,
                    ewma_alpha=_EWMA_ALPHA,
                    registry_get=(
                        self.registry.get if self.validate_payloads else None
                    ),
                )
            except CodegenUnsupported:
                entry = None
        return group, entry

    def _closure_process(
        self, event_type: str, entries: tuple[_InstalledQuery, ...]
    ) -> Callable[[dict, int, float], int]:
        """Reference processor on the closure compiler: same return
        contract as mixed generated code (count 0, every entry in the
        mask — the agent's walk does all processing), used when codegen
        is disabled or bails out.  The differential suite pins the two
        paths byte-identical."""
        host = self.host
        stats = self.stats
        n_entries = len(entries)

        def process(data: dict, rid: int, now: float) -> int:
            stats.events_checked += n_entries
            mask = 0
            event: Optional[Event] = None
            for i, iq in enumerate(entries):
                if not (iq.activates_at <= now < iq.expires_at):
                    continue
                if event is None:
                    event = _rebuild_event(event_type, dict(data), rid, now, host)
                if iq.predicate(event):
                    mask |= 1 << (2 * i)
                    if iq.sample_always or iq.sampler.keep(rid):
                        mask |= 1 << (2 * i + 1)
            return mask << 32

        return process

    # -- the hot path ------------------------------------------------------------

    def log(
        self,
        event_type: str,
        payload: Optional[Mapping[str, Any]] = None,
        *,
        request_id: int,
        timestamp: Optional[float] = None,
        **fields: Any,
    ) -> int:
        """Record an application event; returns how many queries consumed it.

        With no active query on *event_type* this returns after one dict
        lookup — the fast path whose cost the overhead experiments
        measure (kept to a minimal frame on purpose: the armed path
        lives behind the ``_armed`` entry — generated code for all-fused
        ungoverned groups, ``_log_routed`` otherwise — so the disabled
        probe never pays for its locals).  Field values may be given as
        a mapping, as keyword arguments, or both (kwargs win).
        """
        self.stats.events_logged += 1
        entry = self._armed.get(event_type)
        if entry is None:
            return 0
        return entry(payload, request_id, timestamp, fields)

    def _log_routed(
        self,
        group: _RouteGroup,
        event_type: str,
        payload: Optional[Mapping[str, Any]],
        request_id: int,
        timestamp: Optional[float],
        fields: dict[str, Any],
    ) -> int:
        """The armed half of ``log()``: at least one query is routed to
        this event type."""
        stats = self.stats
        stats.events_examined += 1
        now = timestamp if timestamp is not None else self.clock()
        if payload is None:
            data: dict[str, Any] = fields
        elif fields:
            data = {**payload, **fields}
        elif type(payload) is dict:
            data = payload
        else:
            data = dict(payload)
        if self.validate_payloads:
            data = self.registry.get(event_type).coerce_payload(data)

        # The group snapshot read by log() is processed as-is (legacy
        # behaviour: log() iterated an unlocked watcher-list snapshot);
        # a racing uninstall's events land in flush's leftover path.
        # Only a quarantine triggered *in this call* re-reads routes.
        flush_due = False
        self._lock_acquire()
        try:
            governors = group.governors
            if governors:
                requarantined = False
                for gov in governors:
                    reason = gov.roll(now)
                    if reason is not None:
                        # This query just exhausted its impact budget:
                        # quarantine (auto-uninstall); the reason rides
                        # the final flush.  This event is not processed.
                        self._note_quarantine(gov.query_id, reason, now)
                        requarantined = True
                if requarantined:
                    group = self._routes.get(event_type)
                    if group is None:
                        return 0
            group.calls += 1
            timed = group.calls % self._timing_every == 0
            if timed:
                t0 = _perf()
                r = group.process(data, request_id, now)
                dispatch_dt = _perf() - t0
                proc: Optional[dict[int, float]] = None
            else:
                r = group.process(data, request_id, now)
            if group.mixed:
                matched = r & COUNT_MASK
                m = r >> 32
                if m:
                    entries = group.entries
                    buffer = self._buffer
                    buf_items = buffer._items
                    full_payload: Optional[dict] = None
                    idx = 0
                    while m:
                        if m & 1:
                            if timed:
                                tq = _perf()
                            iq = entries[idx]
                            matched += 1
                            stats.events_matched += 1
                            qstats = iq.stats
                            qstats.seen += 1
                            window = int(now // iq.window_seconds)
                            key = (event_type, window)
                            sbw = iq.seen_by_window
                            sbw[key] = sbw.get(key, 0) + 1
                            if iq.fast_ship:
                                # Only reached on the closure fallback —
                                # codegen fuses fast-ship entries.
                                if m & 2:
                                    project = iq.project_fields
                                    if project is None:
                                        if full_payload is None:
                                            full_payload = dict(data)
                                        out = full_payload
                                    else:
                                        out = {
                                            k: data[k] for k in project if k in data
                                        }
                                    # Inlined BoundedBuffer.offer_unlocked —
                                    # the agent lock serializes all buffer use.
                                    buffer._offered += 1
                                    if len(buf_items) < buffer._capacity:
                                        buf_items.append((iq, out, request_id, now))
                                        qstats.shipped += 1
                                        stats.events_shipped += 1
                                    else:
                                        buffer._dropped += 1
                                        qstats.dropped += 1
                                        iq.pending_dropped += 1
                                        stats.events_dropped += 1
                            else:
                                self._slow_match(
                                    iq, qstats, data, event_type, request_id, now,
                                    window, bool(m & 2),
                                )
                            if timed:
                                if proc is None:
                                    proc = {}
                                proc[idx] = _perf() - tq
                        m >>= 2
                        idx += 1
                flush_due = (
                    len(self._buffer._items) >= self._flush_batch_size
                )
            else:
                matched = r
                if matched > COUNT_MASK:
                    matched &= COUNT_MASK
                    flush_due = True
            if timed:
                # Charge sampled wall time scaled by N (unbiased per
                # interval) and refresh each query's armed-cost EWMA.
                # Fused processing happens inside group.process, so its
                # cost lands in the evenly-split dispatch share.
                scale = float(self._timing_every)
                entries = group.entries
                n_entries = len(entries)
                share = dispatch_dt / n_entries if n_entries else 0.0
                for i, iq in enumerate(entries):
                    cost = share
                    if proc is not None:
                        cost += proc.get(i, 0.0)
                    gov = iq.governor
                    if gov is not None:
                        gov.charge(cost * scale)
                    cost_ns = cost * 1e9
                    prev = iq.ewma_ns
                    iq.ewma_ns = (
                        cost_ns
                        if prev is None
                        else prev + _EWMA_ALPHA * (cost_ns - prev)
                    )
        finally:
            self._lock_release()
        if flush_due:
            self.flush(now)
        return matched

    def _slow_match(
        self,
        iq: _InstalledQuery,
        qstats: QueryStats,
        data: dict,
        event_type: str,
        request_id: int,
        now: float,
        window: int,
        keep: bool,
    ) -> None:
        """Matched-event processing for governed or aggregating queries
        (the uncommon path ``log()`` keeps out of its inline loop).
        Caller holds the lock and has already done seen accounting."""
        stats = self.stats
        gov = iq.governor
        if gov is not None and gov.shedding:
            # Drop-with-count: the event still counted toward M_i
            # (COUNT stays exact); no preaggregate, no ship.
            qstats.shed += 1
            iq.pending_shed += 1
            stats.events_shed += 1
            gov.note_shed()
        elif iq.group_fns is not None:
            event = _rebuild_event(event_type, dict(data), request_id, now, self.host)
            iq.preaggregate(event, window)
            stats.events_preaggregated += 1
        elif keep and (gov is None or gov.keep(request_id)):
            # The keep flag is the event sampler's verdict; gov.keep is
            # downgrade-stage thinning — an honest random subsample
            # (keyed on request id), so the estimator's event-stage
            # variance absorbs it.
            project = iq.project_fields
            if project is None:
                payload = dict(data)
            else:
                payload = {k: data[k] for k in project if k in data}
            if self._buffer.offer_unlocked((iq, payload, request_id, now)):
                qstats.shipped += 1
                stats.events_shipped += 1
            else:
                qstats.dropped += 1
                iq.pending_dropped += 1
                stats.events_dropped += 1
                if gov is not None:
                    gov.note_drop()

    def log_object(self, obj: Any, *, request_id: int, timestamp: Optional[float] = None) -> int:
        """``log()`` for instances of ``@scrub_type`` classes (paper Fig. 1)."""
        schema = schema_of(obj)
        return self.log(
            schema.name, obj.payload(), request_id=request_id, timestamp=timestamp
        )

    # -- flushing ------------------------------------------------------------------

    def flush(self, now: Optional[float] = None) -> int:
        """Drain the buffer into per-query batches and hand them to the
        transport.  Also emits empty 'heartbeat' batches for queries with
        pending seen/drop/shed counters (or a quarantine notice) so the
        central estimator learns M_i even when sampling shipped nothing.
        Batches are built under the agent lock — counters move from the
        tables into exactly one batch — and sent outside it.  Returns
        batches sent."""
        if now is None:
            now = self.clock()
        batches: list[EventBatch] = []
        with self._lock:
            drained = self._buffer.drain()
            by_query: dict[str, list[Event]] = {}
            host = self.host
            for iq, payload, rid, ts in drained:
                # Materialize the Event here, off the application's hot
                # path — log() buffered only (iq, payload, rid, ts).
                by_query.setdefault(iq.spec.query_id, []).append(
                    _rebuild_event(iq.spec.event_type, payload, rid, ts, host)
                )

            # Roll governors first: the previous interval is judged before
            # this flush's bytes are charged to the new one.
            for query_id, gov in list(self._governors.items()):
                reason = gov.roll(now)
                if reason is not None:
                    self._note_quarantine(query_id, reason, now)

            for query_id, installed in list(self._queries.items()):
                events = by_query.pop(query_id, [])
                seen: dict[tuple[str, int], int] = {}
                dropped = 0
                shed = 0
                partials: list[PartialAggregate] = []
                for iq in installed:
                    if iq.seen_by_window:
                        for key, count in iq.seen_by_window.items():
                            seen[key] = seen.get(key, 0) + count
                        iq.seen_by_window = {}
                    dropped += iq.pending_dropped
                    iq.pending_dropped = 0
                    shed += iq.pending_shed
                    iq.pending_shed = 0
                    if iq.partial_groups:
                        # Ship completed windows; the current window keeps
                        # accumulating unless the query span has ended.
                        cutoff = (
                            math.inf
                            if now >= iq.expires_at
                            else int(now // iq.window_seconds)
                        )
                        partials.extend(iq.drain_partials(cutoff))
                quarantined = self._pending_quarantine.pop(query_id, "")
                if (
                    not events
                    and not seen
                    and not dropped
                    and not shed
                    and not partials
                    and not quarantined
                ):
                    continue
                batch = EventBatch(
                    host=self.host,
                    query_id=query_id,
                    events=events,
                    seen_counts=seen,
                    dropped=dropped,
                    sent_at=now,
                    partials=partials,
                    shed=shed,
                    quarantined=quarantined,
                )
                nbytes = batch.wire_size()
                gov = self._governors.get(query_id)
                if gov is not None:
                    gov.charge(0.0, nbytes)
                self.stats.batches_flushed += 1
                self.stats.bytes_shipped += nbytes
                batches.append(batch)
            # Events for queries uninstalled between buffering and draining.
            for query_id, events in by_query.items():
                batch = EventBatch(
                    host=self.host, query_id=query_id, events=events, sent_at=now
                )
                self.stats.batches_flushed += 1
                self.stats.bytes_shipped += batch.wire_size()
                batches.append(batch)
            if self._expire(now):
                self._rebuild_routes()
        for batch in batches:
            self.transport.send(batch)
        return len(batches)

    def _note_quarantine(self, query_id: str, reason: str, now: float) -> None:
        """Governor verdict: record the reason (it rides the next flush for
        this query, exactly once) and expire every host query object so no
        further events are examined.  Caller holds the lock."""
        installed = self._queries.get(query_id)
        if installed is None:
            return
        self._pending_quarantine[query_id] = reason
        self.quarantined[query_id] = reason
        self.stats.queries_quarantined += 1
        for iq in installed:
            iq.expires_at = min(iq.expires_at, now)
        self._rebuild_routes()

    def _expire(self, now: float) -> bool:
        expired = [
            query_id
            for query_id, installed in self._queries.items()
            if all(iq.expires_at <= now for iq in installed)
        ]
        for query_id in expired:
            installed = self._queries.pop(query_id)
            self._governors.pop(query_id, None)
            self._rate_versions.pop(query_id, None)
            for iq in installed:
                per_type = self._by_type.get(iq.spec.event_type, [])
                if iq in per_type:
                    per_type.remove(iq)
                if not per_type:
                    self._by_type.pop(iq.spec.event_type, None)
        return bool(expired)

    @property
    def preagg_state_count(self) -> int:
        """Aggregate group states held for AGGREGATE ON HOSTS queries."""
        return sum(
            iq.partial_state_count
            for installed in self._queries.values()
            for iq in installed
        )

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    @property
    def buffer_dropped(self) -> int:
        return self._buffer.dropped
