"""Host → ScrubCentral transport abstraction.

In production Scrub ships events over a messaging substrate; here the
transport is a small interface with two implementations:

* :class:`DirectTransport` — hands batches straight to a sink callable
  (ScrubCentral's ``ingest``); used for in-process runs and tests.
* :class:`RecordingTransport` — retains batches for inspection.

The simulated cluster provides a third implementation that charges
network latency/bandwidth before delivery (``repro.cluster.runtime``).
Batches carry, besides the sampled events, the per-window matched-event
counters (M_i) and drop counts the central estimator needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from ..events import Event
from ..events.encoding import encode_batch

__all__ = [
    "DirectTransport",
    "EventBatch",
    "PartialAggregate",
    "RecordingTransport",
    "Transport",
]


@dataclass(frozen=True)
class PartialAggregate:
    """One host's pre-aggregated contribution to one (window, group).

    ``values`` holds one plain-value partial per aggregate call, in the
    planner's ``unique_aggregates`` order.  Only produced by queries in
    the opt-in AGGREGATE ON HOSTS mode.
    """

    event_type: str
    window: int
    group_key: tuple
    values: tuple


@dataclass
class EventBatch:
    """One flush from one host for one query."""

    host: str
    query_id: str
    events: list[Event]
    #: (event_type, window_index) -> events that matched selection on this
    #: host since the previous flush (the estimator's M_i, per window).
    seen_counts: dict[tuple[str, int], int] = field(default_factory=dict)
    #: Events dropped on the host since the previous flush (buffer full).
    dropped: int = 0
    sent_at: float = 0.0
    #: Pre-aggregated partials (AGGREGATE ON HOSTS mode only).
    partials: list["PartialAggregate"] = field(default_factory=list)

    def wire_size(self) -> int:
        """Encoded size in bytes — what the host actually ships."""
        size = len(encode_batch(self.events)) + 16 * len(self.seen_counts) + 32
        for partial in self.partials:
            size += 16  # window + framing
            size += sum(8 + _sizeof(part) for part in partial.group_key)
            size += sum(8 + _sizeof(v) for v in partial.values)
        return size


def _sizeof(value) -> int:
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (tuple, list)):
        return sum(8 + _sizeof(v) for v in value)
    return 8


class Transport(Protocol):
    """Anything that can deliver an :class:`EventBatch` to ScrubCentral."""

    def send(self, batch: EventBatch) -> None:  # pragma: no cover - protocol
        ...


class DirectTransport:
    """Synchronous delivery to a sink callable (no simulated network)."""

    def __init__(self, sink: Callable[[EventBatch], None]) -> None:
        self._sink = sink
        self.batches_sent = 0
        self.bytes_sent = 0

    def send(self, batch: EventBatch) -> None:
        self.batches_sent += 1
        self.bytes_sent += batch.wire_size()
        self._sink(batch)


class RecordingTransport:
    """Keeps every batch for later assertions (tests, examples)."""

    def __init__(self) -> None:
        self.batches: list[EventBatch] = []

    def send(self, batch: EventBatch) -> None:
        self.batches.append(batch)

    @property
    def events(self) -> list[Event]:
        return [event for batch in self.batches for event in batch.events]

    def clear(self) -> None:
        self.batches.clear()
