"""Host → ScrubCentral transport abstraction.

In production Scrub ships events over a messaging substrate; here the
transport is a small interface with several implementations:

* :class:`DirectTransport` — hands batches straight to a sink callable
  (ScrubCentral's ``ingest``); used for in-process runs and tests.
* :class:`RecordingTransport` — retains batches for inspection.
* ``repro.live.transport.SocketTransport`` — ships batches over TCP to
  a standalone ``scrubd`` daemon (the real-deployment mode).

The simulated cluster provides a fourth implementation that charges
network latency/bandwidth before delivery (``repro.cluster.runtime``).
Batches carry, besides the sampled events, the per-window matched-event
counters (M_i) and drop counts the central estimator needs.

This module also owns the **full-batch wire codec**: a lossless binary
encoding of an entire :class:`EventBatch` — events, seen counts, drop
counter, send timestamp, and host-side partial aggregates — layered on
the primitives of ``events/encoding.py``.  ``wire_size()`` is exactly
``len(encode_full_batch(batch))``, so every byte-accounting path (agent
stats, transports, the central engine, the simulated network) reports
what a host would really put on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from ..events import Event
from ..events.encoding import (
    _F64,
    _I64,
    _U32,
    _read_str,
    _read_value,
    _str_size,
    _truncated,
    _write_str,
    _write_value,
    encode_batch_into,
    encoded_size_batch,
    encoded_size_value,
    scan_batch,
)
from ..events.encoding import _decode_binary_at

__all__ = [
    "DirectTransport",
    "EncodedBatch",
    "EventBatch",
    "PartialAggregate",
    "RecordingTransport",
    "Transport",
    "decode_full_batch",
    "encode_full_batch",
    "encode_full_batch_into",
    "full_batch_wire_size",
    "peek_full_batch_host",
    "scan_full_batch",
]


@dataclass(frozen=True)
class PartialAggregate:
    """One host's pre-aggregated contribution to one (window, group).

    ``values`` holds one plain-value partial per aggregate call, in the
    planner's ``unique_aggregates`` order.  Only produced by queries in
    the opt-in AGGREGATE ON HOSTS mode.
    """

    event_type: str
    window: int
    group_key: tuple
    values: tuple


@dataclass
class EventBatch:
    """One flush from one host for one query."""

    host: str
    query_id: str
    events: list[Event]
    #: (event_type, window_index) -> events that matched selection on this
    #: host since the previous flush (the estimator's M_i, per window).
    seen_counts: dict[tuple[str, int], int] = field(default_factory=dict)
    #: Events dropped on the host since the previous flush (buffer full).
    dropped: int = 0
    sent_at: float = 0.0
    #: Pre-aggregated partials (AGGREGATE ON HOSTS mode only).
    partials: list["PartialAggregate"] = field(default_factory=list)
    #: Matched events the impact governor shed (drop-with-count) since
    #: the previous flush — distinct from ``dropped``: shed events never
    #: reached the buffer, and the estimator widens bounds by their
    #: fraction rather than treating them as random sampling.
    shed: int = 0
    #: Structured reason when the governor quarantined (auto-uninstalled)
    #: this query on this host; empty while the query is healthy.  Rides
    #: the flush that reports the quarantine, exactly once.
    quarantined: str = ""

    def wire_size(self) -> int:
        """Encoded size in bytes — what the host actually ships.

        Exactly ``len(encode_full_batch(self))``, computed arithmetically
        (the ingest hot path charges this per batch; encoding the whole
        batch just to measure it was the single largest per-batch cost).
        """
        return full_batch_wire_size(self)


# -- full-batch wire codec -----------------------------------------------------
#
# Layout (little-endian, layered on events/encoding.py primitives):
#
#   u8   version (currently 2)
#   str  host                      str  query_id
#   f64  sent_at                   i64  dropped
#   i64  shed                      str  quarantined (reason; "" = none)
#   batch  events (u32 count + compact-binary events)
#   u32  seen-count entries; each: str event_type, i64 window, i64 count
#   u32  partials;            each: str event_type, i64 window,
#                                   value group_key (list), value values (list)
#
# v2 added the governor fields (shed, quarantined) after `dropped`.

_FULL_BATCH_VERSION = 2


def encode_full_batch_into(out: bytearray, batch: EventBatch) -> None:
    """Append an :class:`EventBatch`'s full wire encoding to *out*.

    The zero-alloc flush path: a transport writes every batch into one
    reusable buffer, events included, without intermediate ``bytes``.
    """
    out.append(_FULL_BATCH_VERSION)
    _write_str(out, batch.host)
    _write_str(out, batch.query_id)
    out += _F64.pack(batch.sent_at)
    out += _I64.pack(batch.dropped)
    out += _I64.pack(batch.shed)
    _write_str(out, batch.quarantined)
    encode_batch_into(out, batch.events)
    out += _U32.pack(len(batch.seen_counts))
    for (event_type, window), count in batch.seen_counts.items():
        _write_str(out, event_type)
        out += _I64.pack(window)
        out += _I64.pack(count)
    out += _U32.pack(len(batch.partials))
    for partial in batch.partials:
        _write_str(out, partial.event_type)
        out += _I64.pack(partial.window)
        _write_value(out, list(partial.group_key))
        _write_value(out, list(partial.values))


def encode_full_batch(batch: EventBatch) -> bytes:
    """Encode an :class:`EventBatch` losslessly — metadata and all."""
    out = bytearray()
    encode_full_batch_into(out, batch)
    return bytes(out)


def full_batch_wire_size(batch: EventBatch) -> int:
    """Exactly ``len(encode_full_batch(batch))`` without encoding.

    Mirrors the writer field-for-field; the codec tests pin the two to
    byte equality, so a layout change that misses one side fails loudly.
    """
    size = 1 + _str_size(batch.host) + _str_size(batch.query_id) + 8 + 8
    size += 8 + _str_size(batch.quarantined)
    size += encoded_size_batch(batch.events)
    size += 4
    for (event_type, _window) in batch.seen_counts:
        size += _str_size(event_type) + 16
    size += 4
    for partial in batch.partials:
        size += _str_size(partial.event_type) + 8
        size += encoded_size_value(list(partial.group_key))
        size += encoded_size_value(list(partial.values))
    return size


def _read_full_batch_header(buf: memoryview) -> tuple:
    """Version check + the fixed metadata fields before the event batch.

    Shared by :func:`decode_full_batch` and :func:`scan_full_batch` so a
    corrupt prefix raises the same structured error from either path.
    """
    if len(buf) < 1 or buf[0] != _FULL_BATCH_VERSION:
        version = buf[0] if len(buf) else None
        raise ValueError(f"unsupported batch encoding version: {version!r}")
    pos = 1
    host, pos = _read_str(buf, pos)
    query_id, pos = _read_str(buf, pos)
    if pos + 24 > len(buf):
        raise _truncated(pos, 24, len(buf) - pos)
    (sent_at,) = _F64.unpack_from(buf, pos)
    pos += 8
    (dropped,) = _I64.unpack_from(buf, pos)
    pos += 8
    (shed,) = _I64.unpack_from(buf, pos)
    pos += 8
    quarantined, pos = _read_str(buf, pos)
    return host, query_id, sent_at, dropped, shed, quarantined, pos


def _read_full_batch_trailer(
    buf: memoryview, pos: int
) -> tuple[dict[tuple[str, int], int], list["PartialAggregate"]]:
    """Seen counts + partial aggregates after the event batch; rejects
    trailing garbage.  Shared by the decoder and the scanner."""
    if pos + 4 > len(buf):
        raise _truncated(pos, 4, len(buf) - pos)
    (seen_entries,) = _U32.unpack_from(buf, pos)
    pos += 4
    seen_counts: dict[tuple[str, int], int] = {}
    for _ in range(seen_entries):
        event_type, pos = _read_str(buf, pos)
        if pos + 16 > len(buf):
            raise _truncated(pos, 16, len(buf) - pos)
        (window,) = _I64.unpack_from(buf, pos)
        pos += 8
        (count,) = _I64.unpack_from(buf, pos)
        pos += 8
        seen_counts[(event_type, window)] = count
    if pos + 4 > len(buf):
        raise _truncated(pos, 4, len(buf) - pos)
    (partial_count,) = _U32.unpack_from(buf, pos)
    pos += 4
    partials: list[PartialAggregate] = []
    for _ in range(partial_count):
        event_type, pos = _read_str(buf, pos)
        if pos + 8 > len(buf):
            raise _truncated(pos, 8, len(buf) - pos)
        (window,) = _I64.unpack_from(buf, pos)
        pos += 8
        group_key, pos = _read_value(buf, pos)
        values, pos = _read_value(buf, pos)
        partials.append(
            PartialAggregate(
                event_type=event_type,
                window=window,
                group_key=_retupled(group_key),
                values=_retupled(values),
            )
        )
    if pos != len(buf):
        raise ValueError(f"trailing garbage after batch at offset {pos}")
    return seen_counts, partials


def decode_full_batch(data: bytes | memoryview) -> EventBatch:
    """Inverse of :func:`encode_full_batch`; rejects trailing garbage."""
    buf = memoryview(data)
    host, query_id, sent_at, dropped, shed, quarantined, pos = (
        _read_full_batch_header(buf)
    )
    if pos + 4 > len(buf):
        raise _truncated(pos, 4, len(buf) - pos)
    (event_count,) = _U32.unpack_from(buf, pos)
    pos += 4
    events: list[Event] = []
    for _ in range(event_count):
        event, pos = _decode_binary_at(buf, pos)
        events.append(event)
    seen_counts, partials = _read_full_batch_trailer(buf, pos)
    return EventBatch(
        host=host,
        query_id=query_id,
        events=events,
        seen_counts=seen_counts,
        dropped=dropped,
        sent_at=sent_at,
        partials=partials,
        shed=shed,
        quarantined=quarantined,
    )


class EncodedBatch:
    """One host flush still in its wire-frame form.

    Produced by :func:`scan_full_batch`: ``data`` is the whole frame,
    ``meta`` is an events-free :class:`EventBatch` carrying the decoded
    batch-level metadata (seen counts, drops, shed, quarantine reason,
    partials), and ``frames`` is the header index from one skip-scan —
    ``(request_id, timestamp, host, start, stop)`` per event, with
    ``data[start:stop]`` the event's encoded bytes.  No :class:`Event`
    is constructed; the ShardPool slices ``data`` straight to its shard
    workers from this index (docs/SCALING.md §"Zero-copy shard ingest").
    """

    __slots__ = ("data", "meta", "frames")

    def __init__(
        self,
        data: memoryview,
        meta: EventBatch,
        frames: list[tuple[int, float, str, int, int]],
    ) -> None:
        self.data = data
        self.meta = meta
        self.frames = frames

    def wire_size(self) -> int:
        """The frame's size *is* the wire size — no arithmetic mirror
        needed when the encoded bytes are already in hand."""
        return len(self.data)

    def to_event_batch(self) -> EventBatch:
        """Decode the events after all — the object-path fallback for
        queries the pool keeps on the parent (raw selections)."""
        buf = self.data
        events = [
            _decode_binary_at(buf, start)[0]
            for _rid, _ts, _host, start, _stop in self.frames
        ]
        meta = self.meta
        return EventBatch(
            host=meta.host,
            query_id=meta.query_id,
            events=events,
            seen_counts=meta.seen_counts,
            dropped=meta.dropped,
            sent_at=meta.sent_at,
            partials=meta.partials,
            shed=meta.shed,
            quarantined=meta.quarantined,
        )


def scan_full_batch(data: bytes | memoryview) -> EncodedBatch:
    """Index a full-batch wire frame without decoding its events.

    Decodes only the batch-level metadata; the embedded event batch is
    walked by :func:`~repro.core.events.encoding.scan_batch`, which
    verifies every byte extent.  A torn or corrupted frame raises the
    same structured error :func:`decode_full_batch` would.
    """
    buf = data if isinstance(data, memoryview) else memoryview(data)
    host, query_id, sent_at, dropped, shed, quarantined, pos = (
        _read_full_batch_header(buf)
    )
    frames, pos = scan_batch(buf, pos)
    seen_counts, partials = _read_full_batch_trailer(buf, pos)
    meta = EventBatch(
        host=host,
        query_id=query_id,
        events=[],
        seen_counts=seen_counts,
        dropped=dropped,
        sent_at=sent_at,
        partials=partials,
        shed=shed,
        quarantined=quarantined,
    )
    return EncodedBatch(buf, meta, frames)


def peek_full_batch_host(data: bytes | memoryview) -> str:
    """Read just the host name off a full-batch frame (first field after
    the version byte) — what ``scrubd`` keys its per-host shard queue on
    without touching the rest of the frame."""
    buf = memoryview(data)
    if len(buf) < 1 or buf[0] != _FULL_BATCH_VERSION:
        version = buf[0] if len(buf) else None
        raise ValueError(f"unsupported batch encoding version: {version!r}")
    host, _pos = _read_str(buf, 1)
    return host


def _retupled(value: Any) -> Any:
    """Group keys and partial payloads are tuples in memory but travel as
    the codec's list type; restore tuples recursively on decode."""
    if isinstance(value, list):
        return tuple(_retupled(item) for item in value)
    return value


class Transport(Protocol):
    """Anything that can deliver an :class:`EventBatch` to ScrubCentral."""

    def send(self, batch: EventBatch) -> None:  # pragma: no cover - protocol
        ...


class DirectTransport:
    """Synchronous delivery to a sink callable (no simulated network)."""

    def __init__(self, sink: Callable[[EventBatch], None]) -> None:
        self._sink = sink
        self.batches_sent = 0
        self.bytes_sent = 0

    def send(self, batch: EventBatch) -> None:
        self.batches_sent += 1
        self.bytes_sent += batch.wire_size()
        self._sink(batch)


class RecordingTransport:
    """Keeps every batch for later assertions (tests, examples).

    Tracks ``batches_sent``/``bytes_sent`` with the same semantics as
    :class:`DirectTransport`, so wire-volume assertions hold regardless
    of which transport a test wires in.
    """

    def __init__(self) -> None:
        self.batches: list[EventBatch] = []
        self.batches_sent = 0
        self.bytes_sent = 0

    def send(self, batch: EventBatch) -> None:
        self.batches_sent += 1
        self.bytes_sent += batch.wire_size()
        self.batches.append(batch)

    @property
    def events(self) -> list[Event]:
        return [event for batch in self.batches for event in batch.events]

    def clear(self) -> None:
        self.batches.clear()
