"""Deterministic per-event sampling on the host.

Event sampling (paper Section 3.2) reduces host load when a query
touches many events.  The sampler here is *deterministic in the request
identifier*: whether an event is kept for query Q depends only on
``hash(query_id, request_id)``.  Two properties follow:

* **join coherence** — for a join query, the bid/auction/impression
  events of one request are all kept or all dropped together, so
  sampling never breaks up join pairs;
* **no per-event RNG state** — the decision is a hash and a compare,
  keeping the hot path cheap and the choice reproducible across runs.

Uniformity comes from a splitmix64 finalizer, which is a strong enough
mixer that consecutive request ids map to effectively independent
uniform draws.

A third property makes the sampler safe to *retune* while a query runs
(the closed-loop sampling controller adjusts rates between windows):

* **nested by construction** — the keep decision is a threshold compare
  (``mix(seed, rid) < rate·2^64``) against a per-request draw that does
  not depend on the rate, so for any r1 < r2 the kept set at r1 is a
  strict subset of the kept set at r2.  Lowering a rate only *removes*
  requests (never swaps the kept population), and raising it back
  restores exactly the previously kept ids — a retune never breaks join
  coherence or reshuffles which requests a troubleshooter was watching.
"""

from __future__ import annotations

__all__ = ["EventSampler", "uniform_from_hash"]

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def uniform_from_hash(seed: int, value: int) -> float:
    """A deterministic uniform draw in [0, 1) from (seed, value)."""
    mixed = _splitmix64((seed ^ _splitmix64(value & _MASK64)) & _MASK64)
    return mixed / float(1 << 64)


class EventSampler:
    """Keeps a fraction ``rate`` of events, keyed by request identifier."""

    __slots__ = ("_rate", "_seed", "_always", "_threshold")

    def __init__(self, rate: float, query_id: str) -> None:
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"sampling rate must be in (0, 1], got {rate}")
        self._rate = rate
        self._always = rate >= 1.0
        # Stable across processes: derive the seed from the query id text.
        seed = 0
        for ch in query_id:
            seed = (seed * 131 + ord(ch)) & _MASK64
        self._seed = seed
        # Integer threshold so the hot path is a mix + compare, with no
        # float conversion: keep iff mix(seed, rid) < rate * 2^64.
        self._threshold = int(rate * float(1 << 64))

    @property
    def rate(self) -> float:
        return self._rate

    def set_rate(self, rate: float) -> None:
        """Retune the keep fraction in place, preserving the seed.

        Because ``keep`` compares a rate-independent draw against
        ``rate·2^64``, the kept sets at any two rates are nested: the
        new kept set is a subset (rate lowered) or superset (raised) of
        the old one.  Used by the closed-loop sampling controller.
        """
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"sampling rate must be in (0, 1], got {rate}")
        self._rate = rate
        self._always = rate >= 1.0
        self._threshold = int(rate * float(1 << 64))

    def keep(self, request_id: int) -> bool:
        """Decide whether the event for *request_id* is sampled in."""
        if self._always:
            return True
        mixed = _splitmix64((self._seed ^ _splitmix64(request_id & _MASK64)) & _MASK64)
        return mixed < self._threshold
