"""Bounded event buffer: drop, never block.

"At all levels of the system, accuracy is traded for minimal impact on
the hosts" (paper abstract).  The agent's outbound buffer is strictly
bounded; when the flusher cannot keep up, *new events are dropped* and
counted, and the application thread never blocks or allocates more.
Drop counts are reported to ScrubCentral so the troubleshooter knows
results are partial.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Generic, TypeVar

__all__ = ["BoundedBuffer"]

T = TypeVar("T")


class BoundedBuffer(Generic[T]):
    """A thread-safe FIFO with a hard capacity and drop accounting.

    ``offer`` is O(1) and never blocks; when full it rejects the new
    item (drop-newest: the cheapest policy — no shifting, and under
    sustained overload the retained prefix is an unbiased-enough window
    sample for troubleshooting purposes).
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"buffer capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._items: deque[T] = deque()
        self._dropped = 0
        self._offered = 0
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def dropped(self) -> int:
        """Items rejected because the buffer was full."""
        return self._dropped

    @property
    def offered(self) -> int:
        """Total items ever offered (accepted + dropped)."""
        return self._offered

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self._capacity

    def offer(self, item: T) -> bool:
        """Append *item*; returns False (and counts a drop) when full."""
        with self._lock:
            self._offered += 1
            if len(self._items) >= self._capacity:
                self._dropped += 1
                return False
            self._items.append(item)
            return True

    def offer_unlocked(self, item: T) -> bool:
        """``offer`` without taking the buffer lock.

        For callers that already serialize every producer *and* the
        drainer under their own lock (``ScrubAgent`` holds its RLock
        around both ``log()`` and the drain in ``flush()``), the
        internal lock is pure overhead on the per-event hot path.
        Accounting is identical to ``offer``.
        """
        self._offered += 1
        if len(self._items) >= self._capacity:
            self._dropped += 1
            return False
        self._items.append(item)
        return True

    def drain(self, max_items: int | None = None) -> list[T]:
        """Remove and return up to *max_items* items (all, when None)."""
        with self._lock:
            if max_items is None or max_items >= len(self._items):
                out = list(self._items)
                self._items.clear()
                return out
            out = [self._items.popleft() for _ in range(max_items)]
            return out

    def clear(self) -> int:
        """Discard all buffered items; returns how many were discarded."""
        with self._lock:
            n = len(self._items)
            self._items.clear()
            return n
