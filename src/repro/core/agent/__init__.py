"""Host-side Scrub runtime: agent, sampling, buffering, transport."""

from .agent import AgentStats, QueryStats, ScrubAgent
from .buffer import BoundedBuffer
from .sampling import EventSampler, uniform_from_hash
from .transport import DirectTransport, EventBatch, RecordingTransport, Transport

__all__ = [
    "AgentStats",
    "BoundedBuffer",
    "DirectTransport",
    "EventBatch",
    "EventSampler",
    "QueryStats",
    "RecordingTransport",
    "ScrubAgent",
    "Transport",
    "uniform_from_hash",
]
