"""Host-side Scrub runtime: agent, sampling, buffering, transport,
impact governor."""

from .agent import AgentStats, QueryStats, ScrubAgent
from .buffer import BoundedBuffer
from .governor import ImpactBudget, QueryGovernor
from .sampling import EventSampler, uniform_from_hash
from .transport import DirectTransport, EventBatch, RecordingTransport, Transport

__all__ = [
    "AgentStats",
    "BoundedBuffer",
    "DirectTransport",
    "EventBatch",
    "EventSampler",
    "ImpactBudget",
    "QueryGovernor",
    "QueryStats",
    "RecordingTransport",
    "ScrubAgent",
    "Transport",
    "uniform_from_hash",
]
