"""Host impact governor: per-query budgets with a staged response.

Scrub's defining promise is minimal, *bounded* impact on the hosts —
"accuracy is traded for minimal impact" (paper abstract).  The bounded
buffer already guarantees memory; this module bounds the two remaining
impact dimensions the paper worries about: **CPU** (wall time the
application thread spends inside ``log()``/``preaggregate``) and
**network** (bytes a query ships per interval).

Each installed query gets a :class:`QueryGovernor` holding an
:class:`ImpactBudget`.  Per budget interval the agent charges the
governor with the wall seconds and emitted bytes the query consumed
(plus any buffer drops — the existing drop plumbing doubles as the
pressure signal).  When an interval closes over budget the governor
escalates through three stages:

1. **downgrade** — the effective event-sampling rate is multiplied by
   ``downgrade_factor`` (deterministic request-id thinning, so join
   coherence survives), halving again on each further breached interval;
2. **shed** — once the rate factor falls below ``min_rate_factor``,
   matched events are *dropped with count* (``shed`` counters, distinct
   from buffer ``dropped``) instead of sampled: the query still pays one
   predicate evaluation, never a ship;
3. **quarantine** — while shedding, each interval that still sheds
   events counts as breached (the host keeps paying per-event predicate
   cost, so pressure that persists through shedding is pressure the
   budget cannot absorb); after ``shed_intervals`` consecutive breached
   shedding intervals the query is auto-uninstalled with a structured
   reason, which rides the final flush to ScrubCentral and surfaces in
   STATS and :class:`~repro.core.central.results.WindowCoverage`.

Clean intervals walk the stages back down (shed → downgraded →
healthy), so a transient overload is temporary by construction: either
the pressure stops and the query recovers, or it persists and the
query is quarantined — shedding is never a steady state.  All
accounting is exact: every matched event lands in exactly one of
``shipped``, ``dropped`` (buffer full), or ``shed`` (governor), and the
central estimator widens its error bounds by the shed fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .sampling import _splitmix64

__all__ = [
    "ImpactBudget",
    "QueryGovernor",
    "STAGE_HEALTHY",
    "STAGE_DOWNGRADED",
    "STAGE_SHEDDING",
    "STAGE_QUARANTINED",
    "TIMING_SAMPLE_EVERY",
]

#: The agent measures the governor's wall-time charge by sampling
#: ``perf_counter()`` on one ``log()`` call in N and scaling the
#: measured cost by N, instead of paying two clock reads on *every*
#: call — the governor must not inflate the very budget it polices.
#: The charge stream stays an unbiased estimate of wall spend per
#: interval, so breach/escalation semantics are unchanged; breaches
#: driven by bytes, drops, or shed counts remain exact.  Tests pin the
#: equivalence by constructing agents with ``timing_sample_every=1``.
TIMING_SAMPLE_EVERY = 64

STAGE_HEALTHY = "healthy"
STAGE_DOWNGRADED = "downgraded"
STAGE_SHEDDING = "shedding"
STAGE_QUARANTINED = "quarantined"

_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class ImpactBudget:
    """Per-query, per-interval host impact limits.

    A breach is any interval where the query spent more than
    ``max_wall_seconds`` of application-thread time, emitted more than
    ``max_bytes``, or caused at least one buffer drop (drops mean the
    flusher cannot keep up — already past the impact the budget allows).
    """

    interval_seconds: float = 1.0
    #: Wall seconds of log()/preaggregate work per interval.
    max_wall_seconds: float = 0.050
    #: Bytes buffered for shipping per interval.
    max_bytes: int = 256 * 1024
    #: Sampling-rate multiplier applied on each breached interval.
    downgrade_factor: float = 0.5
    #: Below this effective rate factor, downgrading gives way to shedding.
    min_rate_factor: float = 0.125
    #: Consecutive breached shedding intervals before quarantine.
    shed_intervals: int = 2

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if self.max_wall_seconds <= 0:
            raise ValueError("max_wall_seconds must be positive")
        if self.max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if not 0.0 < self.downgrade_factor < 1.0:
            raise ValueError("downgrade_factor must be in (0, 1)")
        if not 0.0 < self.min_rate_factor <= 1.0:
            raise ValueError("min_rate_factor must be in (0, 1]")
        if self.shed_intervals < 1:
            raise ValueError("shed_intervals must be at least 1")


class QueryGovernor:
    """The per-query stage machine; one instance per installed query id."""

    __slots__ = (
        "budget",
        "query_id",
        "stage",
        "rate_factor",
        "interval_start",
        "wall_seconds",
        "bytes_emitted",
        "buffer_drops",
        "shed_events",
        "breached_shed_intervals",
        "quarantine_reason",
        "breaches",
        "_seed",
        "_threshold",
    )

    def __init__(self, budget: ImpactBudget, query_id: str, started_at: float) -> None:
        self.budget = budget
        self.query_id = query_id
        self.stage = STAGE_HEALTHY
        self.rate_factor = 1.0
        self.interval_start = started_at
        self.wall_seconds = 0.0
        self.bytes_emitted = 0
        self.buffer_drops = 0
        self.shed_events = 0
        self.breached_shed_intervals = 0
        self.quarantine_reason: Optional[str] = None
        #: Total breached intervals over the query's life (diagnostics).
        self.breaches = 0
        # The thinning decision must be independent of the query's own
        # sampler (which keys on the same request id), or downgrading
        # would only re-drop already-dropped events: salt the seed.
        seed = 0x5C3B
        for ch in query_id:
            seed = (seed * 131 + ord(ch)) & _MASK64
        self._seed = seed
        self._threshold = 1 << 64  # rate_factor 1.0

    # -- charging (hot path) ---------------------------------------------------

    def charge(self, wall_seconds: float, nbytes: int = 0) -> None:
        """Attribute one ``log()`` visit's cost to the current interval."""
        self.wall_seconds += wall_seconds
        self.bytes_emitted += nbytes

    def note_drop(self) -> None:
        self.buffer_drops += 1

    def note_shed(self) -> None:
        self.shed_events += 1

    @property
    def shedding(self) -> bool:
        return self.stage == STAGE_SHEDDING

    def keep(self, request_id: int) -> bool:
        """Downgrade-stage thinning: deterministic in the request id (join
        coherence survives), independent of the query's own sampler."""
        if self._threshold >= 1 << 64:
            return True
        mixed = _splitmix64((self._seed ^ _splitmix64(request_id & _MASK64)) & _MASK64)
        return mixed < self._threshold

    # -- interval rollover -----------------------------------------------------

    def roll(self, now: float) -> Optional[str]:
        """Close out an elapsed budget interval, if any.

        Returns the structured quarantine reason when this rollover pushed
        the query into quarantine (the caller must then auto-uninstall);
        ``None`` otherwise.
        """
        budget = self.budget
        if now - self.interval_start < budget.interval_seconds:
            return None
        breached = (
            self.wall_seconds > budget.max_wall_seconds
            or self.bytes_emitted > budget.max_bytes
            or self.buffer_drops > 0
            # Shedding keeps bytes low by construction; what marks the
            # interval breached is matched events still arriving — the
            # host is still paying per-event cost for a shed query.
            or self.shed_events > 0
        )
        reason: Optional[str] = None
        if breached:
            self.breaches += 1
            reason = self._escalate()
        else:
            self._recover()
        self.wall_seconds = 0.0
        self.bytes_emitted = 0
        self.buffer_drops = 0
        self.shed_events = 0
        self.interval_start = now
        return reason

    def _escalate(self) -> Optional[str]:
        budget = self.budget
        if self.stage == STAGE_HEALTHY:
            self.stage = STAGE_DOWNGRADED
            self._set_rate_factor(budget.downgrade_factor)
            return None
        if self.stage == STAGE_DOWNGRADED:
            factor = self.rate_factor * budget.downgrade_factor
            if factor < budget.min_rate_factor:
                self.stage = STAGE_SHEDDING
                self.breached_shed_intervals = 0
            else:
                self._set_rate_factor(factor)
            return None
        if self.stage == STAGE_SHEDDING:
            self.breached_shed_intervals += 1
            if self.breached_shed_intervals >= budget.shed_intervals:
                self.stage = STAGE_QUARANTINED
                self.quarantine_reason = (
                    "impact-budget-exceeded:"
                    f" stage=shedding intervals={self.breached_shed_intervals}"
                    f" wall={self.wall_seconds:.6f}s/{budget.max_wall_seconds:g}s"
                    f" bytes={self.bytes_emitted}/{budget.max_bytes}"
                    f" buffer_drops={self.buffer_drops}"
                    f" shed={self.shed_events}"
                    f" per {budget.interval_seconds:g}s"
                )
                return self.quarantine_reason
        return None

    def _recover(self) -> None:
        if self.stage == STAGE_SHEDDING:
            self.stage = STAGE_DOWNGRADED
            self._set_rate_factor(max(self.rate_factor, self.budget.min_rate_factor))
            self.breached_shed_intervals = 0
        elif self.stage == STAGE_DOWNGRADED:
            factor = min(1.0, self.rate_factor / self.budget.downgrade_factor)
            self._set_rate_factor(factor)
            if factor >= 1.0:
                self.stage = STAGE_HEALTHY

    def _set_rate_factor(self, factor: float) -> None:
        self.rate_factor = factor
        self._threshold = (1 << 64) if factor >= 1.0 else int(factor * float(1 << 64))

    def snapshot(self) -> dict:
        """Diagnostic view (agent STATS)."""
        return {
            "stage": self.stage,
            "rate_factor": self.rate_factor,
            "breaches": self.breaches,
            "quarantine_reason": self.quarantine_reason,
        }
