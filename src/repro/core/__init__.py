"""Scrub core: the paper's primary contribution.

Subpackages:

* :mod:`repro.core.events`  — typed event model and declarative API
* :mod:`repro.core.query`   — the Scrub query language (lexer → planner)
* :mod:`repro.core.agent`   — host-side runtime (selection/projection/sampling)
* :mod:`repro.core.central` — ScrubCentral (join/group-by/aggregation)
* :mod:`repro.core.approx`  — Space-Saving, HyperLogLog, sampling theory

Top-level conveniences: :class:`Scrub` (full in-process deployment) and
:class:`ScrubQueryServer`.
"""

from .api import ManualClock, Scrub
from .server import HostDirectory, QueryHandle, ScrubQueryServer, StaticDirectory

__all__ = [
    "HostDirectory",
    "ManualClock",
    "QueryHandle",
    "Scrub",
    "ScrubQueryServer",
    "StaticDirectory",
]
