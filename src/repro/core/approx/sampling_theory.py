"""Multi-stage sampling estimators and error bounds (paper Eqs. 1–3).

Scrub samples at two levels — machines, and events within each chosen
machine — and, like ApproxHadoop, derives error bounds from two-stage
cluster-sampling theory.  For an approximate SUM it randomly selects
``n`` of ``N`` machines and ``m_i`` of ``M_i`` events at machine ``i``:

    τ̂ = (N/n) · Σ_i ( (M_i/m_i) · Σ_j v_ij )                    (Eq. 1)
    ε = t_{n-1, 1-α/2} · sqrt(V̂ar(τ̂))                           (Eq. 2)
    V̂ar(τ̂) = N(N-n)·s_u²/n + (N/n)·Σ_i M_i(M_i-m_i)·s_i²/m_i    (Eq. 3)

where ``s_i²`` is the sample variance of readings at machine ``i`` and
``s_u²`` the sample variance of the per-machine estimated totals
``τ̂_i = (M_i/m_i)·Σ_j v_ij``.  The first variance term captures
machine-stage sampling error (it vanishes when every machine is
queried, n = N); the second captures event-stage error (it vanishes
when every event is kept, m_i = M_i).

The host agent reports, per flush, how many matching events it *saw*
(``M_i``) alongside the sampled values it shipped, which is exactly the
bookkeeping these estimators need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from scipy import stats as _stats

__all__ = [
    "MachineSample",
    "ApproxEstimate",
    "estimate_sum",
    "estimate_count",
    "estimate_avg",
]


@dataclass(frozen=True)
class MachineSample:
    """Per-machine sampling summary for one window.

    ``machine_total`` is M_i — how many events matched the query's
    selection on the machine; ``count`` is m_i — how many of those were
    actually sampled/shipped; ``total``/``sum_sq`` summarise the shipped
    values so the variance s_i² can be computed without retaining them.
    """

    machine_total: int
    count: int
    total: float
    sum_sq: float

    def __post_init__(self) -> None:
        if self.machine_total < 0:
            raise ValueError("machine_total must be non-negative")
        if not 0 <= self.count <= max(self.machine_total, self.count):
            raise ValueError("sample count must be non-negative")
        if self.count > self.machine_total:
            raise ValueError(
                f"sampled {self.count} events but machine only saw {self.machine_total}"
            )

    @classmethod
    def from_values(cls, machine_total: int, values: Sequence[float]) -> "MachineSample":
        values = [float(v) for v in values]
        return cls(
            machine_total=machine_total,
            count=len(values),
            total=sum(values),
            sum_sq=sum(v * v for v in values),
        )

    @property
    def estimated_total(self) -> float:
        """τ̂_i = (M_i / m_i) · Σ_j v_ij; 0 when nothing was sampled."""
        if self.count == 0:
            return 0.0
        return (self.machine_total / self.count) * self.total

    @property
    def value_variance(self) -> float:
        """Sample variance s_i² of the shipped readings (0 if m_i < 2)."""
        m = self.count
        if m < 2:
            return 0.0
        mean = self.total / m
        # Numerically-guarded n-1 variance from the running sums.
        var = (self.sum_sq - m * mean * mean) / (m - 1)
        return max(var, 0.0)


@dataclass(frozen=True)
class ApproxEstimate:
    """An approximate aggregate with its confidence interval."""

    estimate: float
    error_bound: float  # ε: half-width of the CI; inf when n < 2
    confidence: float
    variance: float
    sampled_machines: int
    total_machines: int
    #: Machine-stage unit variance (s_u² of per-machine estimated totals,
    #: Eq. 3's first factor without the N(N-n)/n population scaling).
    #: Carried so a controller can *invert* the bound: the predicted
    #: machine-stage variance at n' of N sampled hosts is
    #: ``N·(N-n')·machine_dispersion/n'`` — well-defined even when the
    #: observed window ran at n = N, where the realized term is zero.
    machine_dispersion: float = 0.0
    #: Event-stage unit variance ((N/n)·Σ_i M_i·s_i², Eq. 3's second
    #: term with the per-machine keep fraction divided out): predicted
    #: event-stage variance at event rate r is
    #: ``value_dispersion·(1/r - 1)`` — well-defined even at r = 1.
    value_dispersion: float = 0.0
    #: Σ m_i — events actually summarised into this estimate.
    sample_events: int = 0

    @property
    def low(self) -> float:
        return self.estimate - self.error_bound

    @property
    def high(self) -> float:
        return self.estimate + self.error_bound

    @property
    def relative_error(self) -> float:
        """ε / estimate; inf for a zero estimate with non-zero bound."""
        if self.estimate == 0:
            return 0.0 if self.error_bound == 0 else math.inf
        return abs(self.error_bound / self.estimate)

    def __str__(self) -> str:
        pct = self.confidence * 100
        return f"{self.estimate:.6g} ± {self.error_bound:.6g} ({pct:.0f}% CI)"

    def widened(self, shed_fraction: float) -> "ApproxEstimate":
        """Inflate the CI for governor shedding (load-shed events).

        Eqs. 1–3 assume the event stage is a *random* sample of the M_i
        matched events.  Shedding breaks that: during an over-budget
        interval the agent drops every matched event, so the retained
        values are time-biased, not random.  The honest response is a
        wider bound: with a fraction ``f`` of matched events shed, the
        half-width is scaled by ``1/(1-f)`` (and the variance by its
        square) — bounds degrade smoothly toward "no information" as
        shedding approaches 100%.  The point estimate is untouched: it
        is still the best available value, just less certain.
        """
        if shed_fraction <= 0.0:
            return self
        if shed_fraction >= 1.0 or not math.isfinite(self.error_bound):
            return replace(self, error_bound=math.inf, variance=math.inf)
        scale = 1.0 / (1.0 - shed_fraction)
        return replace(
            self,
            error_bound=self.error_bound * scale,
            variance=self.variance * scale * scale,
        )


def estimate_sum(
    samples: Iterable[MachineSample],
    total_machines: int,
    confidence: float = 0.95,
) -> ApproxEstimate:
    """Approximate SUM with its error bound (paper Eqs. 1–3)."""
    samples = list(samples)
    n = len(samples)
    big_n = total_machines
    if big_n < n:
        raise ValueError(f"total_machines ({big_n}) < sampled machines ({n})")
    if n == 0:
        return ApproxEstimate(0.0, math.inf, confidence, math.inf, 0, big_n)

    machine_estimates = [s.estimated_total for s in samples]
    tau_hat = (big_n / n) * sum(machine_estimates)

    # Machine-stage variance term: N(N-n) s_u² / n.
    if n >= 2:
        mean_u = sum(machine_estimates) / n
        s_u_sq = sum((u - mean_u) ** 2 for u in machine_estimates) / (n - 1)
    else:
        s_u_sq = 0.0
    machine_term = big_n * (big_n - n) * s_u_sq / n

    # Event-stage variance term: (N/n) Σ M_i (M_i - m_i) s_i² / m_i.
    event_term = 0.0
    for s in samples:
        if s.count > 0:
            event_term += s.machine_total * (s.machine_total - s.count) * (
                s.value_variance / s.count
            )
    event_term *= big_n / n

    variance = machine_term + event_term

    # Rate-invertible dispersion telemetry for the sampling controller.
    # Kept even in the exact (full-rate) branches below: a window run at
    # full rates has zero realized error but its dispersions still
    # predict the error any *lower* candidate rate would incur.
    value_dispersion = (big_n / n) * sum(
        s.machine_total * s.value_variance for s in samples
    )
    sample_events = sum(s.count for s in samples)

    if n >= 2:
        t_quantile = float(_stats.t.ppf(1.0 - (1.0 - confidence) / 2.0, df=n - 1))
        epsilon = t_quantile * math.sqrt(max(variance, 0.0))
    elif big_n == 1 and samples[0].count == samples[0].machine_total:
        # Exhaustive single-machine reading: exact.
        epsilon = 0.0
    else:
        epsilon = math.inf
    if big_n == n and all(s.count == s.machine_total for s in samples):
        # No sampling anywhere: the estimate is exact.
        epsilon = 0.0
        variance = 0.0
    return ApproxEstimate(
        tau_hat,
        epsilon,
        confidence,
        variance,
        n,
        big_n,
        machine_dispersion=s_u_sq,
        value_dispersion=value_dispersion,
        sample_events=sample_events,
    )


def estimate_count(
    machine_match_counts: Iterable[int],
    total_machines: int,
    confidence: float = 0.95,
    event_sampling_rate: float = 1.0,
) -> ApproxEstimate:
    """Approximate COUNT over sampled machines.

    COUNT is the SUM of v_ij = 1 over matching events, and the agent
    counts *every* matching event it sees (counting is cheap; only
    shipping is sampled), so there is no event-stage error: each
    machine's contribution M_i is known exactly and only the machine
    stage contributes variance.  When the caller only knows the shipped
    counts (it did not receive per-machine totals), pass the event
    sampling rate to scale up — the event-stage error is then folded
    into the machine-stage term because scaled per-machine counts vary.
    """
    machine_match_counts = list(machine_match_counts)
    totals = [c / event_sampling_rate for c in machine_match_counts]
    samples = [
        MachineSample(machine_total=math.ceil(t), count=0, total=0.0, sum_sq=0.0)
        for t in totals
    ]
    # Reuse the SUM machinery with exact per-machine totals.
    n = len(samples)
    big_n = total_machines
    if big_n < n:
        raise ValueError(f"total_machines ({big_n}) < sampled machines ({n})")
    if n == 0:
        return ApproxEstimate(0.0, math.inf, confidence, math.inf, 0, big_n)
    tau_hat = (big_n / n) * sum(totals)
    if n >= 2:
        mean_u = sum(totals) / n
        s_u_sq = sum((u - mean_u) ** 2 for u in totals) / (n - 1)
    else:
        s_u_sq = 0.0
    variance = big_n * (big_n - n) * s_u_sq / n
    if n >= 2:
        t_quantile = float(_stats.t.ppf(1.0 - (1.0 - confidence) / 2.0, df=n - 1))
        epsilon = t_quantile * math.sqrt(max(variance, 0.0))
    else:
        epsilon = 0.0 if (big_n == n and event_sampling_rate == 1.0) else math.inf
    if big_n == n and event_sampling_rate == 1.0:
        epsilon = 0.0
        variance = 0.0
    # COUNT has no event-stage error (M_i is counted exactly at any event
    # rate), so value_dispersion stays 0: the controller learns that
    # lowering the event rate cannot widen a COUNT bound.
    return ApproxEstimate(
        tau_hat,
        epsilon,
        confidence,
        variance,
        n,
        big_n,
        machine_dispersion=s_u_sq,
        value_dispersion=0.0,
        sample_events=sum(int(c) for c in machine_match_counts),
    )


def estimate_avg(
    sum_estimate: ApproxEstimate, count_estimate: ApproxEstimate
) -> ApproxEstimate:
    """Ratio estimator for AVG = SUM/COUNT.

    The error bound uses first-order (delta-method) propagation,
    treating the two estimates as independent — adequate for the
    troubleshooting accuracy Scrub targets (Section 2 explicitly trades
    accuracy for host impact).
    """
    if count_estimate.estimate == 0:
        return ApproxEstimate(
            0.0,
            math.inf,
            sum_estimate.confidence,
            math.inf,
            sum_estimate.sampled_machines,
            sum_estimate.total_machines,
        )
    ratio = sum_estimate.estimate / count_estimate.estimate
    rel_sq = 0.0
    if sum_estimate.estimate != 0 and math.isfinite(sum_estimate.error_bound):
        rel_sq += (sum_estimate.error_bound / sum_estimate.estimate) ** 2
    elif not math.isfinite(sum_estimate.error_bound):
        rel_sq = math.inf
    if math.isfinite(count_estimate.error_bound):
        rel_sq += (count_estimate.error_bound / count_estimate.estimate) ** 2
    else:
        rel_sq = math.inf
    epsilon = abs(ratio) * math.sqrt(rel_sq) if math.isfinite(rel_sq) else math.inf
    # Propagate the dispersions through the same delta method so the
    # prediction formulas (N(N-n')·md/n' and vd·(1/r-1)) stay valid for
    # AVG with the ratio's own scale: rel-var(avg) = rel-var(sum) +
    # rel-var(count), both machine terms scale identically in n', and
    # only the SUM contributes event-stage error.
    machine_dispersion = 0.0
    value_dispersion = 0.0
    if sum_estimate.estimate != 0:
        scale_s = (ratio / sum_estimate.estimate) ** 2
        machine_dispersion += scale_s * sum_estimate.machine_dispersion
        value_dispersion = scale_s * sum_estimate.value_dispersion
    scale_c = (ratio / count_estimate.estimate) ** 2
    machine_dispersion += scale_c * count_estimate.machine_dispersion
    return ApproxEstimate(
        ratio,
        epsilon,
        sum_estimate.confidence,
        epsilon ** 2,
        sum_estimate.sampled_machines,
        sum_estimate.total_machines,
        machine_dispersion=machine_dispersion,
        value_dispersion=value_dispersion,
        sample_events=sum_estimate.sample_events,
    )
