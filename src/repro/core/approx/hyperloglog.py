"""HyperLogLog cardinality estimation for COUNT_DISTINCT.

Scrub computes cardinality counts with HyperLogLog (paper cites Heule,
Nunkesser, Hall — "HyperLogLog in Practice", EDBT 2013, [27]).  This
implementation follows HLL++ without the sparse representation:

* 64-bit hashing (no large-range correction needed);
* empirical bias correction is approximated by linear counting for
  small cardinalities, switching to the raw estimator past the standard
  2.5·m threshold;
* registers merge by pointwise max, so per-window partial sketches from
  ScrubCentral workers combine losslessly.

The standard error is ``1.04 / sqrt(m)`` with ``m = 2**precision``
registers (~1.6% at the default precision of 12).
"""

from __future__ import annotations

import hashlib
import math
import struct
from typing import Hashable, Iterable

__all__ = ["HyperLogLog"]

_HASH_BITS = 64


def _hash64(item: Hashable) -> int:
    """Stable 64-bit hash of an arbitrary hashable item.

    Python's builtin ``hash`` is salted per process for strings, which
    would make sketches non-mergeable across host processes; blake2b is
    stable and fast enough for the reproduction.
    """
    if isinstance(item, bytes):
        data = b"b" + item
    elif isinstance(item, str):
        data = b"s" + item.encode()
    elif isinstance(item, bool):
        data = b"o" + bytes([item])
    elif isinstance(item, int):
        data = b"i" + item.to_bytes(16, "little", signed=True)
    elif isinstance(item, float):
        data = b"f" + struct.pack("<d", item)
    elif item is None:
        data = b"n"
    else:
        data = b"r" + repr(item).encode()
    digest = hashlib.blake2b(data, digest_size=8).digest()
    return int.from_bytes(digest, "little")


def _alpha(m: int) -> float:
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLog:
    """A HyperLogLog sketch with ``2**precision`` one-byte registers."""

    __slots__ = ("_precision", "_m", "_registers")

    def __init__(self, precision: int = 12) -> None:
        if not 4 <= precision <= 18:
            raise ValueError(f"precision must be in [4, 18], got {precision}")
        self._precision = precision
        self._m = 1 << precision
        self._registers = bytearray(self._m)

    @property
    def precision(self) -> int:
        return self._precision

    @property
    def register_count(self) -> int:
        return self._m

    @property
    def standard_error(self) -> float:
        return 1.04 / math.sqrt(self._m)

    def add(self, item: Hashable) -> None:
        h = _hash64(item)
        index = h >> (_HASH_BITS - self._precision)
        remainder = h << self._precision & (1 << _HASH_BITS) - 1
        # Rank: position of the leftmost 1-bit of the remainder, 1-based,
        # over the (64 - precision) remaining bits.
        if remainder == 0:
            rank = _HASH_BITS - self._precision + 1
        else:
            rank = _HASH_BITS - remainder.bit_length() + 1
        if rank > self._registers[index]:
            self._registers[index] = rank

    def update(self, items: Iterable[Hashable]) -> None:
        for item in items:
            self.add(item)

    def cardinality(self) -> float:
        """Estimated number of distinct items added."""
        m = self._m
        inverse_sum = 0.0
        zeros = 0
        for register in self._registers:
            inverse_sum += 2.0 ** -register
            if register == 0:
                zeros += 1
        raw = _alpha(m) * m * m / inverse_sum
        if raw <= 2.5 * m and zeros:
            # Linear counting for the small range (HLL++ behaviour when the
            # raw estimate is below threshold and empty registers remain).
            return m * math.log(m / zeros)
        return raw

    def count(self) -> int:
        """Estimated cardinality rounded to an integer."""
        return int(round(self.cardinality()))

    def merge(self, other: "HyperLogLog") -> None:
        """Pointwise-max merge; both sketches must share a precision."""
        if other._precision != self._precision:
            raise ValueError(
                f"cannot merge HLL precisions {self._precision} and {other._precision}"
            )
        ours = self._registers
        theirs = other._registers
        for i in range(self._m):
            if theirs[i] > ours[i]:
                ours[i] = theirs[i]

    def copy(self) -> "HyperLogLog":
        clone = HyperLogLog(self._precision)
        clone._registers = bytearray(self._registers)
        return clone

    def __len__(self) -> int:
        return self.count()
