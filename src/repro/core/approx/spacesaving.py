"""Space-Saving stream summary for TOP-K queries.

Scrub's ``TOP-K`` aggregate uses the Space-Saving algorithm (Metwally,
Agrawal, El Abbadi — "Efficient Computation of Frequent and Top-k
Elements in Data Streams", ICDT 2005), cited as [36] in the paper.

The summary keeps at most ``capacity`` counters.  When a new item
arrives and the summary is full, the item replaces the counter with the
minimum count and inherits that count plus one; the displaced count is
remembered as the new counter's maximum possible *error*.  Guarantees:

* every item with true frequency > N/capacity is present;
* for each monitored item, ``count - error <= true count <= count``.

Counter bookkeeping uses the "stream summary" bucket structure from the
paper, giving O(1) amortised updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

__all__ = ["SpaceSaving", "TopItem"]


@dataclass(frozen=True)
class TopItem:
    """One reported heavy hitter: estimated count and max overestimation."""

    item: Hashable
    count: int
    error: int

    @property
    def guaranteed_count(self) -> int:
        """Lower bound on the item's true frequency."""
        return self.count - self.error


class _Counter:
    __slots__ = ("item", "count", "error", "bucket", "prev", "next")

    def __init__(self, item: Hashable) -> None:
        self.item = item
        self.count = 0
        self.error = 0
        self.bucket: "_Bucket | None" = None
        self.prev: "_Counter | None" = None
        self.next: "_Counter | None" = None


class _Bucket:
    """All counters sharing one count value, as a doubly linked list."""

    __slots__ = ("value", "head", "prev", "next")

    def __init__(self, value: int) -> None:
        self.value = value
        self.head: _Counter | None = None
        self.prev: "_Bucket | None" = None
        self.next: "_Bucket | None" = None

    @property
    def empty(self) -> bool:
        return self.head is None


class SpaceSaving:
    """Space-Saving summary over a stream of hashable items."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._counters: dict[Hashable, _Counter] = {}
        self._min_bucket: _Bucket | None = None  # ascending linked bucket list
        self._total = 0

    # -- public API -----------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def total(self) -> int:
        """Number of items offered so far."""
        return self._total

    def __len__(self) -> int:
        return len(self._counters)

    def offer(self, item: Hashable, count: int = 1) -> None:
        """Record *count* occurrences of *item*."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self._total += count
        counter = self._counters.get(item)
        if counter is not None:
            self._increment(counter, count)
            return
        if len(self._counters) < self._capacity:
            counter = _Counter(item)
            self._counters[item] = counter
            self._attach(counter, 0)
            self._increment(counter, count)
            return
        # Evict the minimum counter; the newcomer inherits its count as error.
        victim = self._min_bucket.head  # type: ignore[union-attr]
        assert victim is not None
        del self._counters[victim.item]
        victim_error = victim.count
        victim.item = item
        victim.error = victim_error
        self._counters[item] = victim
        self._increment(victim, count)

    def update(self, items: Iterable[Hashable]) -> None:
        for item in items:
            self.offer(item)

    def estimate(self, item: Hashable) -> int:
        """Estimated count (upper bound on true count); 0 if unmonitored."""
        counter = self._counters.get(item)
        return counter.count if counter is not None else 0

    def top(self, k: int) -> list[TopItem]:
        """The k monitored items with the highest estimated counts."""
        if k <= 0:
            return []
        items = sorted(
            (TopItem(c.item, c.count, c.error) for c in self._counters.values()),
            key=_rank_key,
        )
        return items[:k]

    def guaranteed_top(self, k: int) -> list[TopItem]:
        """The subset of :meth:`top` whose order is provably correct.

        Item i is guaranteed to be in the true top-k when its guaranteed
        count is at least the (k+1)-th estimated count.
        """
        ranked = sorted(
            (TopItem(c.item, c.count, c.error) for c in self._counters.values()),
            key=_rank_key,
        )
        if len(ranked) <= k:
            return ranked
        threshold = ranked[k].count
        return [t for t in ranked[:k] if t.guaranteed_count >= threshold]

    def merge(self, other: "SpaceSaving") -> None:
        """Merge another summary into this one (used when ScrubCentral
        combines per-window partial sketches).  The merged summary keeps
        the Space-Saving error semantics: counts are upper bounds."""
        for counter in list(other._counters.values()):
            existing = self._counters.get(counter.item)
            if existing is not None:
                existing.error += counter.error
                self._increment(existing, counter.count)
                self._total += counter.count
            else:
                # offer() would add error only on eviction; replicate the
                # incoming error explicitly.
                self.offer(counter.item, counter.count)
                merged = self._counters.get(counter.item)
                if merged is not None:
                    merged.error += counter.error

    # -- pickling ---------------------------------------------------------------

    def __reduce__(self):
        # The bucket structure is a web of doubly linked objects; default
        # pickling would recurse counter-by-counter (and can exceed the
        # recursion limit on large summaries).  Serialize the flat counter
        # table instead and rebuild the buckets on load — this is the
        # shard-pool boundary for TOP-K partials.
        counters = sorted(
            ((c.item, c.count, c.error) for c in self._counters.values()),
            key=lambda t: -t[1],
        )
        return (_rebuild_spacesaving, (self._capacity, self._total, counters))

    # -- bucket list maintenance ------------------------------------------------

    def _attach(self, counter: _Counter, value: int) -> None:
        """Place *counter* into the bucket for *value*, creating it if needed.

        Buckets form an ascending doubly linked list starting at
        ``_min_bucket``.
        """
        bucket = self._find_or_create_bucket(value)
        counter.bucket = bucket
        counter.prev = None
        counter.next = bucket.head
        if bucket.head is not None:
            bucket.head.prev = counter
        bucket.head = counter

    def _detach(self, counter: _Counter) -> None:
        bucket = counter.bucket
        assert bucket is not None
        if counter.prev is not None:
            counter.prev.next = counter.next
        else:
            bucket.head = counter.next
        if counter.next is not None:
            counter.next.prev = counter.prev
        counter.prev = counter.next = None
        counter.bucket = None
        if bucket.empty:
            self._remove_bucket(bucket)

    def _find_or_create_bucket(self, value: int) -> _Bucket:
        prev: _Bucket | None = None
        node = self._min_bucket
        while node is not None and node.value < value:
            prev = node
            node = node.next
        if node is not None and node.value == value:
            return node
        bucket = _Bucket(value)
        bucket.prev = prev
        bucket.next = node
        if prev is not None:
            prev.next = bucket
        else:
            self._min_bucket = bucket
        if node is not None:
            node.prev = bucket
        return bucket

    def _remove_bucket(self, bucket: _Bucket) -> None:
        if bucket.prev is not None:
            bucket.prev.next = bucket.next
        else:
            self._min_bucket = bucket.next
        if bucket.next is not None:
            bucket.next.prev = bucket.prev

    def _increment(self, counter: _Counter, count: int) -> None:
        self._detach(counter)
        counter.count += count
        self._attach(counter, counter.count)


def _rank_key(t: TopItem) -> tuple:
    """Deterministic total order for reported heavy hitters: by estimated
    count (desc), then error (asc — tighter bounds first), then a stable
    item rendering, so rankings are independent of insertion order (the
    same summary reports the same TOP-K after a pickle round-trip or a
    shard merge)."""
    return (-t.count, t.error, str(t.item))


def _rebuild_spacesaving(
    capacity: int, total: int, counters: list[tuple]
) -> SpaceSaving:
    summary = SpaceSaving(capacity)
    summary._total = total
    # Descending count order makes every bucket insert O(1): each new
    # value lands at the front of the ascending bucket list.
    for item, count, error in counters:
        counter = _Counter(item)
        counter.count = count
        counter.error = error
        summary._counters[item] = counter
        summary._attach(counter, count)
    return summary
