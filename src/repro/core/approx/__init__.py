"""Probabilistic machinery: Space-Saving TOP-K, HyperLogLog, quantile
sketch, sampling theory."""

from .hyperloglog import HyperLogLog
from .quantile import QuantileSketch
from .sampling_theory import (
    ApproxEstimate,
    MachineSample,
    estimate_avg,
    estimate_count,
    estimate_sum,
)
from .spacesaving import SpaceSaving, TopItem

__all__ = [
    "ApproxEstimate",
    "HyperLogLog",
    "MachineSample",
    "QuantileSketch",
    "SpaceSaving",
    "TopItem",
    "estimate_avg",
    "estimate_count",
    "estimate_sum",
]
