"""Mergeable quantile sketch for the QUANTILE aggregate.

A relative-error quantile sketch in the DDSketch family (Masson,
Rim & Lee, VLDB 2019): values are mapped to logarithmically spaced
buckets ``index = ceil(log(value) / log(gamma))`` with
``gamma = (1 + alpha) / (1 - alpha)``, so every reported quantile is
within relative error ``alpha`` of an exact rank-based quantile.

Why this shape instead of a t-digest: ScrubCentral's shard pool merges
per-worker partial states at window close, and the merge order depends
on how events were sharded.  t-digest centroid merging is neither
commutative nor associative, so parallel results would drift from the
serial ones.  Bucketed counts merge by integer addition — commutative,
associative, and partition-independent — which makes QUANTILE results
bit-identical between the serial engine and ``ShardPool(workers=N)``
(a property the differential tests pin).

Negative values get a mirrored bucket store; zeros (and values whose
magnitude is below ``min_value``) a dedicated counter, so the sketch
covers the full real line like the reference DDSketch does.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["QuantileSketch", "DEFAULT_ALPHA"]

#: Default relative-error guarantee (1%).
DEFAULT_ALPHA = 0.01


class QuantileSketch:
    """Relative-error quantile sketch over a stream of real numbers.

    ``quantile(q)`` (q in [0, 1]) is within relative error ``alpha`` of
    the exact quantile for positive and negative values; the zero
    counter is exact.  ``merge`` is exact and associative: merging
    arbitrary partitions of a stream yields the same buckets — and
    therefore the same reported quantiles — as sketching the whole
    stream serially.
    """

    __slots__ = ("alpha", "min_value", "_gamma", "_log_gamma", "_positive",
                 "_negative", "_zero", "count")

    def __init__(self, alpha: float = DEFAULT_ALPHA, min_value: float = 1e-9) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if min_value <= 0.0:
            raise ValueError(f"min_value must be positive, got {min_value}")
        self.alpha = alpha
        self.min_value = min_value
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self._positive: dict[int, int] = {}
        self._negative: dict[int, int] = {}
        self._zero = 0
        self.count = 0

    # -- ingest ----------------------------------------------------------------

    def add(self, value: float) -> None:
        """Record one value.  NaN is ignored (SQL NULL semantics upstream
        already drop NULLs; NaN has no rank)."""
        value = float(value)
        if math.isnan(value):
            return
        self.count += 1
        if value > self.min_value:
            key = self._key(value)
            self._positive[key] = self._positive.get(key, 0) + 1
        elif value < -self.min_value:
            key = self._key(-value)
            self._negative[key] = self._negative.get(key, 0) + 1
        else:
            self._zero += 1

    def update(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def _key(self, magnitude: float) -> int:
        return int(math.ceil(math.log(magnitude) / self._log_gamma))

    # -- merge -----------------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> None:
        """Fold *other* into this sketch.  Exact: bucket counts add, so
        merge order and stream partitioning never change the result."""
        if not isinstance(other, QuantileSketch):
            raise TypeError(f"cannot merge {type(other).__name__}")
        if other.alpha != self.alpha or other.min_value != self.min_value:
            raise ValueError(
                "cannot merge sketches with different parameters: "
                f"alpha {self.alpha} vs {other.alpha}, "
                f"min_value {self.min_value} vs {other.min_value}"
            )
        for key, n in other._positive.items():
            self._positive[key] = self._positive.get(key, 0) + n
        for key, n in other._negative.items():
            self._negative[key] = self._negative.get(key, 0) + n
        self._zero += other._zero
        self.count += other.count

    # -- query -----------------------------------------------------------------

    def quantile(self, q: float) -> float:
        """The q-th quantile (q in [0, 1]); raises on an empty sketch."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            raise ValueError("quantile of empty sketch")
        # Rank of the answer, 0-based, nearest-rank with rounding — the
        # deterministic integer walk keeps results platform-stable.
        rank = q * (self.count - 1)
        target = int(math.floor(rank + 0.5))
        seen = 0
        # Negative buckets first (most negative value = largest key).
        for key in sorted(self._negative, reverse=True):
            seen += self._negative[key]
            if seen > target:
                return -self._bucket_value(key)
        seen += self._zero
        if seen > target:
            return 0.0
        for key in sorted(self._positive):
            seen += self._positive[key]
            if seen > target:
                return self._bucket_value(key)
        raise AssertionError("rank walk exhausted buckets")  # pragma: no cover

    def _bucket_value(self, key: int) -> float:
        # Midpoint of the bucket (gamma^(key-1), gamma^key] in log space:
        # 2*gamma^key/(gamma+1), the estimate with relative error <= alpha.
        return 2.0 * self._gamma ** key / (self._gamma + 1.0)

    # -- plumbing --------------------------------------------------------------

    @property
    def bucket_count(self) -> int:
        """Number of occupied buckets (memory footprint proxy)."""
        return len(self._positive) + len(self._negative) + (1 if self._zero else 0)

    def __reduce__(self):
        return (
            _rebuild,
            (self.alpha, self.min_value, dict(self._positive),
             dict(self._negative), self._zero, self.count),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return (
            self.alpha == other.alpha
            and self.min_value == other.min_value
            and self._positive == other._positive
            and self._negative == other._negative
            and self._zero == other._zero
            and self.count == other.count
        )

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(alpha={self.alpha}, count={self.count}, "
            f"buckets={self.bucket_count})"
        )


def _rebuild(alpha, min_value, positive, negative, zero, count):
    sketch = QuantileSketch(alpha, min_value)
    sketch._positive = positive
    sketch._negative = negative
    sketch._zero = zero
    sketch.count = count
    return sketch
