"""The CI-targeted sampling-rate controller.

A ``TARGET CI ±x%`` query asks Scrub to *close the loop* on accuracy:
instead of the troubleshooter guessing sampling rates, the server
observes each window's realized error bound and retunes the rates so
the confidence interval converges to the target at the lowest possible
host impact.  The controller here is the decision core — engine-free
and synchronous, like ``live.fleet.QueryRollout``, so the in-process
query server and ``scrubd`` can both drive it from their tick loops.

**Inputs** (fed by the hosting server):

* per-window estimator telemetry (:meth:`SamplingController.observe_window`)
  — the ``ApproxEstimate`` dispersions that make Eqs. 1-3 invertible:
  ``machine_dispersion`` (s_u², the machine-stage unit variance) and
  ``value_dispersion`` ((N/n)·Σ M_i·s_i², the event-stage unit
  variance).  Both are well-defined even in a window run at *full*
  rates, so the controller can start wide-open and predict what any
  cheaper rate pair would have cost in accuracy;
* per-host cost telemetry (:meth:`SamplingController.observe_costs`)
  — the ``query_costs`` counters (``ewma_ns``/``routed``) that ride
  agent heartbeats, plus each host's applied ``rates_version``.

**The solve.**  For a candidate pair of n' sampled hosts (of N) at
event rate r', the predicted variance follows directly from Eq. 3:

    V̂ar(n', r') = N·(N-n')·machine_dispersion / n'
                 + value_dispersion · (1/r' - 1)

and the predicted relative half-width is ``t_{n'-1}·sqrt(V̂ar)/|τ̂|``
(Eq. 2).  The controller scans a geometric rate ladder and picks the
feasible pair minimizing normalized cost ``(n'/N)·r'``.  Dispersions
are EWMA-smoothed across windows so one noisy window cannot whipsaw
the rates.

**Robustness rules** (the reason this is a controller and not a
formula):

* *deadband* — the solver aims at ``target·(1-deadband)``; any pair
  whose prediction lands in ``[aim, target]`` is left alone, so the
  loop cannot oscillate around the setpoint;
* *hysteresis* — a tighten/relax decision must repeat for
  ``hysteresis_windows`` consecutive windows before a retune ships;
* *monotone application* — event-rate changes go to the keyed
  threshold sampler (``agent.sampling.EventSampler``), whose kept sets
  are nested across rates, so a retune never reshuffles which requests
  are being watched;
* *budget clamp* — per-host projected wall cost (``ewma_ns ×
  routed/s``) is held under ``budget_safety`` (80%) of the governor's
  ``ImpactBudget``, so the controller backs off *before* the
  governor's thin → shed → quarantine ladder engages.  A clamp applies
  immediately (no hysteresis — it is the safety direction).  If the
  clamped rates cannot meet the target, the controller degrades
  honestly: state ``rate_limited`` with a structured reason and the
  *achievable* widened bound;
* *starvation guard* — a window that kept fewer than
  ``min_telemetry_events`` events measures its dispersions from a
  handful of samples that routinely miss the value tail entirely; such
  a window may only move the variance model *upward*.  Without this, a
  deeply clamped query would talk itself into believing its target is
  suddenly achievable (collapsed dispersions → tiny predicted error)
  and silently drop the ``rate_limited`` report;
* *freeze* — stale telemetry (no window for ``stale_after_windows``),
  a host that does not report an applied ``rates_version`` (a
  pre-controller agent), or a retune that never converges all freeze
  the loop: no retunes are issued until the inputs recover.  A frozen
  controller never flies blind.

Host-set changes are asymmetric by design: the solver may recommend
*more* hosts (the machine-stage term shrinks with n' at no extra
per-host cost) and the hosting server may apply the widening with the
engine's ``extend_targets`` machinery — but a host-set *shrink* is
never applied mid-query (the engine's coverage accounting would count
the removed hosts as missing, and the finite-population correction
would be wrong for already-open windows).  Servers that cannot widen
(scrubd applies event-rate retunes only) construct the controller with
``can_widen=False`` and the solver holds n' fixed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from scipy import stats as _stats

from ..agent.governor import ImpactBudget
from ..central.results import WindowResult
from ..query.ast import TargetCISpec

__all__ = [
    "STATE_WARMUP",
    "STATE_TRACKING",
    "STATE_RATE_LIMITED",
    "STATE_FROZEN",
    "ControllerConfig",
    "RateUpdate",
    "SamplingController",
]

#: No window telemetry yet — the query is still wide-open at its
#: submitted rates and the controller has nothing to invert.
STATE_WARMUP = "warmup"
#: Converged or converging: retunes keep the predicted CI in the
#: deadband below the target.
STATE_TRACKING = "tracking"
#: The impact budget (or rate floor, or host ceiling) prevents meeting
#: the target; rates are clamped and the reported bound is widened.
STATE_RATE_LIMITED = "rate_limited"
#: Inputs went bad (stale windows, version-less or non-converging
#: hosts); the loop holds the last applied rates and issues nothing.
STATE_FROZEN = "frozen"


@dataclass(frozen=True)
class ControllerConfig:
    """Tuning constants; the defaults are documented in SCALING.md."""

    #: Fractional dead zone below the target: the solver aims at
    #: ``target·(1-deadband)`` and leaves alone anything in between.
    deadband: float = 0.10
    #: Consecutive windows a tighten/relax verdict must repeat before a
    #: retune is issued (clamps bypass this).
    hysteresis_windows: int = 2
    #: Freeze when no window telemetry arrives for this many window
    #: lengths.
    stale_after_windows: float = 3.0
    #: Clamp line as a fraction of the governor's wall budget — the
    #: controller backs off at 80% so the governor's ladder never fires.
    budget_safety: float = 0.8
    #: Hard floor for the event rate (1/1024 keeps the keyed sampler's
    #: threshold meaningful and the estimator's m_i non-degenerate).
    min_event_rate: float = 1.0 / 1024.0
    #: Relax only when the cheapest feasible pair costs at least this
    #: fraction less than the current pair.
    relax_margin: float = 0.20
    #: EWMA smoothing for the per-column dispersion telemetry.
    telemetry_alpha: float = 0.5
    #: Geometric step of the event-rate ladder (√½ ≈ 0.707 gives two
    #: steps per halving — fine enough to land in the deadband).
    ladder_step: float = 0.5 ** 0.5
    #: Freeze when an issued retune is still unconfirmed by some host
    #: after this many window lengths.
    convergence_grace_windows: float = 4.0
    #: Ignore clamps that would move the event rate by less than this
    #: relative amount (retune traffic is not free).
    clamp_jitter: float = 0.05
    #: Windows that kept fewer events than this are *starved*: their
    #: dispersion measurements may only raise the variance model, never
    #: lower it, and they do not update the achieved-error figure.
    min_telemetry_events: int = 32


@dataclass(frozen=True)
class RateUpdate:
    """One versioned retune, to be fanned out over the INSTALL path."""

    query_id: str
    version: int
    host_rate: float
    event_rate: float
    #: Absolute host count the host_rate corresponds to (n').
    host_count: int
    #: Why this retune shipped: "tighten" / "relax" / "clamp".
    reason: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "host_rate": self.host_rate,
            "event_rate": self.event_rate,
            "host_count": self.host_count,
            "reason": self.reason,
        }


class _ColumnStat:
    """EWMA-smoothed invertible telemetry for one estimable column."""

    __slots__ = ("abs_tau", "machine_dispersion", "value_dispersion")

    def __init__(self, abs_tau: float, md: float, vd: float) -> None:
        self.abs_tau = abs_tau
        self.machine_dispersion = md
        self.value_dispersion = vd

    def update(self, abs_tau: float, md: float, vd: float, alpha: float) -> None:
        self.abs_tau += alpha * (abs_tau - self.abs_tau)
        self.machine_dispersion += alpha * (md - self.machine_dispersion)
        self.value_dispersion += alpha * (vd - self.value_dispersion)

    def update_upward(self, md: float, vd: float, alpha: float) -> None:
        """Starved-window update: dispersions may only rise (bad news is
        always believed), and the scale estimate is left alone."""
        if md > self.machine_dispersion:
            self.machine_dispersion += alpha * (md - self.machine_dispersion)
        if vd > self.value_dispersion:
            self.value_dispersion += alpha * (vd - self.value_dispersion)


class SamplingController:
    """Closed-loop rate controller for one ``TARGET CI`` query."""

    def __init__(
        self,
        query_id: str,
        target: TargetCISpec,
        *,
        total_hosts: int,
        targeted_hosts: int,
        window_seconds: float,
        event_rate: float = 1.0,
        budget: Optional[ImpactBudget] = None,
        can_widen: bool = False,
        config: Optional[ControllerConfig] = None,
    ) -> None:
        if total_hosts < 1 or targeted_hosts < 1:
            raise ValueError("controller needs at least one planned and targeted host")
        if targeted_hosts > total_hosts:
            raise ValueError(
                f"targeted hosts ({targeted_hosts}) > planned hosts ({total_hosts})"
            )
        self.query_id = query_id
        self.target = target
        self.total_hosts = int(total_hosts)
        self.host_count = int(targeted_hosts)
        self.window_seconds = float(window_seconds)
        self.event_rate = float(event_rate)
        #: The governor budget the clamp respects; reassignable mid-run
        #: (operations may tighten it while the query is live).
        self.budget = budget
        self.can_widen = can_widen
        self.config = config if config is not None else ControllerConfig()
        #: Version of the last issued retune; 0 = install-time rates.
        self.version = 0

        self._columns: dict[str, _ColumnStat] = {}
        self._windows_observed = 0
        self._evaluated_windows = 0
        self._last_window_at: Optional[float] = None
        self._achieved: Optional[float] = None
        self._predicted: Optional[float] = None
        self._state = STATE_WARMUP
        self._frozen_reason: Optional[str] = None
        self._limited: Optional[dict[str, Any]] = None
        self._last_update_reason = "install"
        self._pending_direction: Optional[str] = None
        self._pending_streak = 0
        self._version_issued_at: Optional[float] = None
        # Per-host cost tracking: host -> (last_routed, last_at, wall_ewma_s).
        self._host_cost: dict[str, tuple[int, float, float]] = {}
        self._host_versions: dict[str, Optional[int]] = {}
        self._t_cache: dict[int, float] = {}

    # -- telemetry intake ------------------------------------------------------

    def observe_window(self, window: WindowResult, at: float) -> None:
        """Feed one closed window's estimator telemetry."""
        self._windows_observed += 1
        self._last_window_at = at
        achieved: Optional[float] = None
        alpha = self.config.telemetry_alpha
        for name, est in window.estimates.items():
            starved = est.sample_events < self.config.min_telemetry_events
            rel = est.relative_error
            if not starved and (achieved is None or rel > achieved):
                achieved = rel
            abs_tau = abs(est.estimate)
            if abs_tau == 0.0:
                # A zero estimate has no relative-error scale; keep the
                # previous telemetry rather than dividing by nothing.
                continue
            stat = self._columns.get(name)
            if stat is None:
                # Bootstrap accepts anything: with no model at all, a
                # starved measurement still beats flying blind.
                self._columns[name] = _ColumnStat(
                    abs_tau, est.machine_dispersion, est.value_dispersion
                )
            elif starved:
                stat.update_upward(
                    est.machine_dispersion, est.value_dispersion, alpha
                )
            else:
                stat.update(
                    abs_tau, est.machine_dispersion, est.value_dispersion, alpha
                )
        if achieved is not None:
            self._achieved = achieved

    def observe_costs(
        self, host_costs: Mapping[str, Mapping[str, Any]], at: float
    ) -> None:
        """Feed per-host ``query_costs`` counters for this query.

        *host_costs* maps host name to the agent's counters
        (``ewma_ns``, cumulative ``routed``, and — from
        controller-aware agents — the applied ``rates_version``).
        """
        for host, counters in host_costs.items():
            self._host_versions[host] = counters.get("rates_version")
            routed = int(counters.get("routed", 0))
            ewma_ns = float(counters.get("ewma_ns", 0.0) or 0.0)
            prev = self._host_cost.get(host)
            if prev is None:
                self._host_cost[host] = (routed, at, 0.0)
                continue
            last_routed, last_at, wall_ewma = prev
            dt = at - last_at
            if dt <= 0.0:
                continue
            routed_per_sec = max(routed - last_routed, 0) / dt
            interval = (
                self.budget.interval_seconds if self.budget is not None else 1.0
            )
            wall = ewma_ns * 1e-9 * routed_per_sec * interval
            wall_ewma += 0.5 * (wall - wall_ewma)
            self._host_cost[host] = (routed, at, wall_ewma)

    def forget_host(self, host: str) -> None:
        """Drop a departed host's cost/version telemetry (age-out or
        disconnect) so it cannot freeze the loop forever."""
        self._host_cost.pop(host, None)
        self._host_versions.pop(host, None)

    # -- the control step ------------------------------------------------------

    def tick(self, now: float) -> Optional[RateUpdate]:
        """Run one control evaluation; returns a retune to apply, or None.

        The caller owns application: fan the update out over its INSTALL
        path (and journal it) — the controller already advanced its own
        version and considers the update in flight until every host's
        heartbeat confirms it.
        """
        if self._windows_observed == 0:
            self._state = STATE_WARMUP
            return None

        freeze = self._freeze_reason(now)
        if freeze is not None:
            self._state = STATE_FROZEN
            self._frozen_reason = freeze
            return None
        self._frozen_reason = None

        # An issued retune still propagating blocks further moves (the
        # solver would be reasoning about rates the fleet isn't at yet);
        # within the grace window this is normal convergence, past it
        # the freeze check above has already tripped.
        converging = any(
            v is not None and v < self.version
            for v in self._host_versions.values()
        )

        cap = self._event_rate_cap()

        # Safety first: a budget clamp applies immediately, without
        # hysteresis and even mid-convergence — by the time the
        # governor would start shedding, the controller must already
        # have backed off.
        if cap < self.event_rate * (1.0 - self.config.clamp_jitter):
            update = self._issue(now, self.host_count, max(cap, self.config.min_event_rate), "clamp")
            self._refresh_limited(cap)
            return update

        if not self._columns:
            # Windows arrived but every estimate was zero-valued; there
            # is no scale to solve against yet.
            self._state = STATE_WARMUP
            return None

        best = self._solve(cap)
        predicted_current = self._predict(self.host_count, self.event_rate)
        self._predicted = predicted_current
        self._refresh_limited(cap, best)
        if converging:
            return None

        # Hysteresis is counted in windows, not ticks.
        if self._windows_observed == self._evaluated_windows:
            return None
        self._evaluated_windows = self._windows_observed

        if best is None:
            # Nothing feasible even unclamped: already at the widest
            # rates we may apply; _refresh_limited has set the state.
            return None

        best_n, best_r = best
        direction: Optional[str] = None
        target = self.target.relative_error
        cur_cost = self._cost(self.host_count, self.event_rate)
        best_cost = self._cost(best_n, best_r)
        if predicted_current > target:
            direction = "tighten"
        elif best_cost < cur_cost * (1.0 - self.config.relax_margin):
            direction = "relax"

        if direction is None:
            # In the deadband: predicted CI meets the target and no
            # materially cheaper pair exists.
            self._pending_direction = None
            self._pending_streak = 0
            return None

        if direction != self._pending_direction:
            self._pending_direction = direction
            self._pending_streak = 1
        else:
            self._pending_streak += 1
        if self._pending_streak < self.config.hysteresis_windows:
            return None
        self._pending_direction = None
        self._pending_streak = 0
        return self._issue(now, best_n, best_r, direction)

    # -- solver ----------------------------------------------------------------

    def _predict(self, host_count: int, event_rate: float) -> float:
        """Worst predicted relative half-width across tracked columns at
        the candidate pair (Eqs. 2-3 inverted over the dispersions)."""
        worst = 0.0
        big_n = self.total_hosts
        n = host_count
        for stat in self._columns.values():
            variance = big_n * (big_n - n) * stat.machine_dispersion / n
            if event_rate < 1.0:
                variance += stat.value_dispersion * (1.0 / event_rate - 1.0)
            if variance <= 0.0:
                continue
            if n < 2:
                return math.inf
            rel = self._t(n - 1) * math.sqrt(variance) / stat.abs_tau
            if rel > worst:
                worst = rel
        return worst

    def _solve(self, cap: float) -> Optional[tuple[int, float]]:
        """Cheapest (n', r') meeting the aim under the cap; None if the
        target is unreachable within the rates this server may apply."""
        aim = self.target.relative_error * (1.0 - self.config.deadband)
        best: Optional[tuple[int, float]] = None
        best_cost = math.inf
        for n in self._host_candidates():
            for r in self._rate_candidates(cap):
                if self._predict(n, r) > aim:
                    continue
                cost = self._cost(n, r)
                # Tie-break toward fewer hosts: a host held at full
                # rate is cheaper operationally than two at half.
                if cost < best_cost - 1e-12 or (
                    best is not None
                    and abs(cost - best_cost) <= 1e-12
                    and n < best[0]
                ):
                    best = (n, r)
                    best_cost = cost
        return best

    def _host_candidates(self) -> list[int]:
        """n' ladder: never below the current host set (a shrink is not
        applied mid-query), doubling up to N when widening is allowed."""
        if not self.can_widen or self.host_count >= self.total_hosts:
            return [self.host_count]
        out = [self.host_count]
        n = self.host_count
        while n < self.total_hosts:
            n = min(n * 2, self.total_hosts)
            out.append(n)
        return out

    def _rate_candidates(self, cap: float) -> list[float]:
        cfg = self.config
        out: list[float] = []
        r = 1.0
        while r >= cfg.min_event_rate:
            if r <= cap + 1e-12:
                out.append(r)
            r *= cfg.ladder_step
        if not out and cap >= cfg.min_event_rate:
            out.append(cap)
        return out

    def _cost(self, host_count: int, event_rate: float) -> float:
        """Normalized fleet cost: fraction of hosts × fraction of events."""
        return (host_count / self.total_hosts) * event_rate

    def _t(self, df: int) -> float:
        t = self._t_cache.get(df)
        if t is None:
            t = float(
                _stats.t.ppf(1.0 - (1.0 - self.target.confidence) / 2.0, df=df)
            )
            self._t_cache[df] = t
        return t

    # -- clamp / freeze --------------------------------------------------------

    def _event_rate_cap(self) -> float:
        """Max event rate the impact budget permits, projecting the
        per-host wall cost as proportional to the kept fraction.

        Proportional scaling flatters rate cuts (dispatch cost does not
        shrink with the rate), but the loop is closed: the post-retune
        ``ewma_ns × routed/s`` feeds straight back in, and the cap
        ratchets again if the first cut was not enough — a geometric
        descent that bottoms out at ``min_event_rate``, always below
        the governor's own trigger line.
        """
        if self.budget is None or not self._host_cost:
            return 1.0
        worst_wall = max(wall for _r, _t, wall in self._host_cost.values())
        if worst_wall <= 0.0:
            return 1.0
        line = self.budget.max_wall_seconds * self.config.budget_safety
        if worst_wall <= line:
            # Headroom: allow raising the rate proportionally.
            return min(1.0, self.event_rate * line / worst_wall)
        return max(
            self.config.min_event_rate, self.event_rate * line / worst_wall
        )

    def _freeze_reason(self, now: float) -> Optional[str]:
        stale_after = self.config.stale_after_windows * self.window_seconds
        if (
            self._last_window_at is not None
            and now - self._last_window_at > stale_after
        ):
            return "telemetry-stale"
        if any(v is None for v in self._host_versions.values()):
            return "host-missing-rate-version"
        if (
            self.version > 0
            and self._version_issued_at is not None
            and any(
                v is not None and v < self.version
                for v in self._host_versions.values()
            )
            and now - self._version_issued_at
            > self.config.convergence_grace_windows * self.window_seconds
        ):
            return "retune-not-converging"
        return None

    def _refresh_limited(
        self, cap: float, best: Optional[tuple[int, float]] = None
    ) -> None:
        """Decide tracking vs rate_limited and build the structured
        degradation report when the target cannot be met."""
        target = self.target.relative_error
        achievable_pair = (
            max(self._host_candidates()),
            max(self._rate_candidates(cap), default=self.config.min_event_rate),
        )
        achievable = (
            self._predict(*achievable_pair) if self._columns else 0.0
        )
        if best is not None or achievable <= target:
            self._limited = None
            self._state = STATE_TRACKING
            return
        reason = (
            "impact-budget"
            if cap < 1.0 - 1e-12
            else "target-unreachable"
        )
        self._limited = {
            "reason": reason,
            "achievable_relative_error": achievable,
            "cap_event_rate": cap,
            "target_relative_error": target,
        }
        self._state = STATE_RATE_LIMITED

    def _issue(
        self, now: float, host_count: int, event_rate: float, reason: str
    ) -> RateUpdate:
        self.version += 1
        self.host_count = host_count
        self.event_rate = event_rate
        self._version_issued_at = now
        self._last_update_reason = reason
        self._pending_direction = None
        self._pending_streak = 0
        return RateUpdate(
            query_id=self.query_id,
            version=self.version,
            host_rate=host_count / self.total_hosts,
            event_rate=event_rate,
            host_count=host_count,
            reason=reason,
        )

    # -- reporting -------------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    def status(self) -> dict[str, Any]:
        """The structured view surfaced via STATS, ``\\rates`` and the
        result set's ``sampling`` attachment."""
        return {
            "state": self._state,
            "version": self.version,
            "host_rate": self.host_count / self.total_hosts,
            "event_rate": self.event_rate,
            "host_count": self.host_count,
            "total_hosts": self.total_hosts,
            "target_relative_error": self.target.relative_error,
            "confidence": self.target.confidence,
            "achieved_relative_error": self._achieved,
            "predicted_relative_error": self._predicted,
            "windows_observed": self._windows_observed,
            "last_update_reason": self._last_update_reason,
            "rate_limited": self._limited,
            "frozen_reason": self._frozen_reason,
        }
