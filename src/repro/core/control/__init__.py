"""Closed-loop accuracy-aware sampling control.

The :class:`SamplingController` inverts the paper's two-stage sampling
error bounds (Eqs. 1-3) to pick the *cheapest* ``(host_rate,
event_rate)`` pair that still meets a query's ``TARGET CI`` accuracy
goal, under the host impact budget.  See ``controller.py`` and
``docs/SCALING.md`` ("Closed-loop sampling").
"""

from .controller import (
    STATE_FROZEN,
    STATE_RATE_LIMITED,
    STATE_TRACKING,
    STATE_WARMUP,
    ControllerConfig,
    RateUpdate,
    SamplingController,
)

__all__ = [
    "STATE_FROZEN",
    "STATE_RATE_LIMITED",
    "STATE_TRACKING",
    "STATE_WARMUP",
    "ControllerConfig",
    "RateUpdate",
    "SamplingController",
]
