"""Aggregate function states for ScrubCentral.

Each aggregate in a query's SELECT list gets one state object per
(window, group).  States are incremental (O(1) or sketch-sized updates)
and mergeable, so partial results from parallel ingest paths combine.

Supported (paper Section 3.2): MIN, MAX, AVG, SUM, COUNT, plus the
probabilistic TOP-K (Space-Saving stream summary) and COUNT_DISTINCT
(HyperLogLog).

Scale-up under sampling: COUNT and SUM admit a Horvitz–Thompson style
scale factor (1 / event-rate × N/n over hosts), applied by the engine
via :meth:`AggregateState.scaled_result`.  AVG is a ratio of two scaled
quantities so the factors cancel; MIN/MAX/TOP-K/COUNT_DISTINCT are
reported unscaled from the sample (TOP-K item *counts* are scaled, the
ranking itself is sample-based).
"""

from __future__ import annotations

import math
from typing import Any, Optional

from ..approx.hyperloglog import HyperLogLog
from ..approx.quantile import QuantileSketch
from ..approx.spacesaving import SpaceSaving
from ..query.ast import AggregateCall

__all__ = ["AggregateState", "make_state", "TOPK_CAPACITY_FACTOR", "HLL_PRECISION"]

#: The Space-Saving summary keeps this many counters per requested k.
TOPK_CAPACITY_FACTOR = 10
#: Default HyperLogLog precision (4096 registers, ~1.6% std error).
HLL_PRECISION = 12


class AggregateState:
    """Base class; subclasses implement update/merge/result."""

    __slots__ = ()

    #: Whether the state round-trips through a plain-value partial —
    #: the requirement for host-side pre-aggregation (sketch states
    #: could too, but their partials are not plain values; host
    #: aggregation is restricted to these five).
    supports_partials = False

    def update(self, value: Any) -> None:
        raise NotImplementedError

    def update_many(self, values: list) -> None:
        """Feed a pre-extracted value sequence (batched ingest hot path).

        Equivalent to ``update`` in iteration order — subclasses override
        only to hoist attribute lookups / use builtins, never to change
        the fold order, so batched and per-event ingest stay identical.
        """
        for value in values:
            self.update(value)

    def merge(self, other: "AggregateState") -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError

    def scaled_result(self, factor: float) -> Any:
        """Result scaled for sampling; default: scaling does not apply."""
        return self.result()

    def to_partial(self) -> Any:
        """A plain-value snapshot mergeable via :meth:`merge_partial`."""
        raise NotImplementedError(f"{type(self).__name__} has no partial form")

    def merge_partial(self, payload: Any) -> None:
        raise NotImplementedError(f"{type(self).__name__} has no partial form")


class CountState(AggregateState):
    __slots__ = ("count",)
    supports_partials = True

    def __init__(self) -> None:
        self.count = 0

    def update(self, value: Any) -> None:
        # COUNT(expr) counts non-NULL values; COUNT(*) passes a sentinel.
        if value is not None:
            self.count += 1

    def update_many(self, values: list) -> None:
        self.count += len(values) - values.count(None)

    def merge(self, other: "AggregateState") -> None:
        assert isinstance(other, CountState)
        self.count += other.count

    def result(self) -> int:
        return self.count

    def scaled_result(self, factor: float) -> float | int:
        if factor == 1.0:
            return self.count
        return self.count * factor

    def to_partial(self) -> int:
        return self.count

    def merge_partial(self, payload: int) -> None:
        self.count += payload


class SumState(AggregateState):
    __slots__ = ("total", "any")
    supports_partials = True

    def __init__(self) -> None:
        self.total = 0.0
        self.any = False

    def update(self, value: Any) -> None:
        if value is not None:
            self.total += value
            self.any = True

    def update_many(self, values: list) -> None:
        # Accumulate in a local with the same left-fold association as the
        # per-event path — bit-identical float totals either way.
        total = self.total
        any_values = self.any
        for value in values:
            if value is not None:
                total += value
                any_values = True
        self.total = total
        self.any = any_values

    def merge(self, other: "AggregateState") -> None:
        assert isinstance(other, SumState)
        self.total += other.total
        self.any = self.any or other.any

    def result(self) -> Optional[float]:
        return self.total if self.any else None

    def scaled_result(self, factor: float) -> Optional[float]:
        if not self.any:
            return None
        return self.total * factor

    def to_partial(self) -> tuple[float, bool]:
        return (self.total, self.any)

    def merge_partial(self, payload: tuple[float, bool]) -> None:
        total, any_values = payload
        self.total += total
        self.any = self.any or any_values


class AvgState(AggregateState):
    __slots__ = ("total", "count")
    supports_partials = True

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def update(self, value: Any) -> None:
        if value is not None:
            self.total += value
            self.count += 1

    def update_many(self, values: list) -> None:
        total = self.total
        count = self.count
        for value in values:
            if value is not None:
                total += value
                count += 1
        self.total = total
        self.count = count

    def merge(self, other: "AggregateState") -> None:
        assert isinstance(other, AvgState)
        self.total += other.total
        self.count += other.count

    def result(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count

    # AVG is a ratio: the sampling scale factors cancel — no scaled variant.

    def to_partial(self) -> tuple[float, int]:
        return (self.total, self.count)

    def merge_partial(self, payload: tuple[float, int]) -> None:
        total, count = payload
        self.total += total
        self.count += count


class MinState(AggregateState):
    __slots__ = ("value",)
    supports_partials = True

    def __init__(self) -> None:
        self.value: Any = None

    def update(self, value: Any) -> None:
        if value is not None and (self.value is None or value < self.value):
            self.value = value

    def update_many(self, values: list) -> None:
        present = [v for v in values if v is not None]
        if present:
            low = min(present)
            if self.value is None or low < self.value:
                self.value = low

    def merge(self, other: "AggregateState") -> None:
        assert isinstance(other, MinState)
        self.update(other.value)

    def result(self) -> Any:
        return self.value

    def to_partial(self) -> Any:
        return self.value

    def merge_partial(self, payload: Any) -> None:
        self.update(payload)


class MaxState(AggregateState):
    __slots__ = ("value",)
    supports_partials = True

    def __init__(self) -> None:
        self.value: Any = None

    def update(self, value: Any) -> None:
        if value is not None and (self.value is None or value > self.value):
            self.value = value

    def update_many(self, values: list) -> None:
        present = [v for v in values if v is not None]
        if present:
            high = max(present)
            if self.value is None or high > self.value:
                self.value = high

    def merge(self, other: "AggregateState") -> None:
        assert isinstance(other, MaxState)
        self.update(other.value)

    def result(self) -> Any:
        return self.value

    def to_partial(self) -> Any:
        return self.value

    def merge_partial(self, payload: Any) -> None:
        self.update(payload)


class CountDistinctState(AggregateState):
    """COUNT_DISTINCT via HyperLogLog (paper [27]).

    The result is the estimated cardinality *of the sampled stream*;
    distinct counts do not scale linearly with the sampling rate, so no
    scale factor is applied (documented accuracy trade, Section 2).
    """

    __slots__ = ("sketch",)

    def __init__(self, precision: int = HLL_PRECISION) -> None:
        self.sketch = HyperLogLog(precision)

    def update(self, value: Any) -> None:
        if value is not None:
            self.sketch.add(_hashable(value))

    def update_many(self, values: list) -> None:
        add = self.sketch.add
        for value in values:
            if value is not None:
                add(_hashable(value))

    def merge(self, other: "AggregateState") -> None:
        assert isinstance(other, CountDistinctState)
        self.sketch.merge(other.sketch)

    def result(self) -> int:
        return self.sketch.count()


class TopKState(AggregateState):
    """TOP-K via the Space-Saving stream summary (paper [36]).

    ``result()`` is a list of ``(item, count)`` pairs, largest first.
    """

    __slots__ = ("k", "summary")

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"TOP-K requires positive k, got {k}")
        self.k = k
        self.summary = SpaceSaving(max(k * TOPK_CAPACITY_FACTOR, 64))

    def update(self, value: Any) -> None:
        if value is not None:
            self.summary.offer(_hashable(value))

    def update_many(self, values: list) -> None:
        offer = self.summary.offer
        for value in values:
            if value is not None:
                offer(_hashable(value))

    def merge(self, other: "AggregateState") -> None:
        assert isinstance(other, TopKState)
        self.summary.merge(other.summary)

    def result(self) -> list[tuple[Any, int]]:
        return [(t.item, t.count) for t in self.summary.top(self.k)]

    def scaled_result(self, factor: float) -> list[tuple[Any, float | int]]:
        if factor == 1.0:
            return self.result()
        return [
            (t.item, t.count * factor) for t in self.summary.top(self.k)
        ]


class QuantileState(AggregateState):
    """QUANTILE(expr, q) via the mergeable relative-error sketch.

    The bucket-count merge is exact (integer addition), so serial and
    shard-pool executions report bit-identical quantiles regardless of
    how events were partitioned across workers.  Like MIN/MAX, the
    reported quantile is a property of the sampled values themselves and
    does not scale with the sampling rate — no scaled variant.
    """

    __slots__ = ("q", "sketch")

    def __init__(self, q: float) -> None:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"QUANTILE requires q in [0, 1], got {q}")
        self.q = q
        self.sketch = QuantileSketch()

    def update(self, value: Any) -> None:
        if value is not None:
            self.sketch.add(value)

    def update_many(self, values: list) -> None:
        add = self.sketch.add
        for value in values:
            if value is not None:
                add(value)

    def merge(self, other: "AggregateState") -> None:
        assert isinstance(other, QuantileState)
        self.sketch.merge(other.sketch)

    def result(self) -> Optional[float]:
        if self.sketch.count == 0:
            return None
        return self.sketch.quantile(self.q)


def _hashable(value: Any) -> Any:
    """Values reaching sketches must be hashable; lists/dicts are folded
    into tuples so a list-typed field can still feed COUNT_DISTINCT."""
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    return value


def make_state(agg: AggregateCall) -> AggregateState:
    """Instantiate the state object for one aggregate call."""
    func = agg.func
    if func == "COUNT":
        return CountState()
    if func == "SUM":
        return SumState()
    if func == "AVG":
        return AvgState()
    if func == "MIN":
        return MinState()
    if func == "MAX":
        return MaxState()
    if func == "COUNT_DISTINCT":
        return CountDistinctState()
    if func == "TOP":
        assert agg.k is not None
        return TopKState(agg.k)
    if func == "QUANTILE":
        assert agg.q is not None
        return QuantileState(agg.q)
    raise ValueError(f"unsupported aggregate: {func}")
