"""ScrubCentral: windows, equi-join, group-by, aggregates, engine, results."""

from .aggregates import AggregateState, make_state
from .engine import DEFAULT_GRACE_SECONDS, CentralEngine, CentralStats
from .groupby import GroupByProcessor, WindowGroups, make_field_getter
from .join import JoinBuffer, JoinedRow
from .pool import ShardPool
from .results import ResultRow, ResultSet, WindowResult
from .shm_ring import DEFAULT_RING_CAPACITY, RingUnavailable, ShmRing
from .window import (
    SlidingWindowAssigner,
    TumblingWindowAssigner,
    WindowAssigner,
    WindowTracker,
)

__all__ = [
    "AggregateState",
    "CentralEngine",
    "CentralStats",
    "DEFAULT_GRACE_SECONDS",
    "DEFAULT_RING_CAPACITY",
    "GroupByProcessor",
    "JoinBuffer",
    "JoinedRow",
    "ResultRow",
    "ResultSet",
    "RingUnavailable",
    "ShardPool",
    "ShmRing",
    "SlidingWindowAssigner",
    "TumblingWindowAssigner",
    "WindowAssigner",
    "WindowGroups",
    "WindowResult",
    "WindowTracker",
    "make_field_getter",
    "make_state",
]
