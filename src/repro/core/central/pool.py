"""Process-parallel ScrubCentral: a supervised pool of shard workers.

The paper runs ScrubCentral as a dedicated multi-machine facility
(Section 4); this module is the single-box analogue — N OS processes,
each owning a shard of the event stream keyed by the request-id hash
(the same key ``scrubd`` shards its asyncio queues by), so join
co-location is preserved: every event of one request lands on one
worker.

Division of labour (docs/SCALING.md):

* The **parent** keeps every piece of accounting that needs a global
  view — window tracking and late-event counting, per-host M_i counts,
  drop attribution, coverage, sampling estimation, result finalization —
  and routes window-segmented event slices to the workers.
* The **workers** do only the per-event heavy lifting: residual
  predicates, group segmentation, aggregate updates (including the HLL
  and Space-Saving sketch updates that dominate rich queries).
* At window close the parent collects each worker's partial group map
  and folds it in with the aggregate ``merge()`` operators; sketches
  merge losslessly (HLL) or within the Space-Saving error envelope.

Raw-selection queries (no aggregates, no GROUP BY) stay on the parent:
their output rows must preserve arrival order, which a fan-out/merge
would have to re-sequence for no gain — they are cheap per event.

**Self-healing** (docs/SCALING.md §"Worker failure & load shedding"):
the parent supervises its workers.  A pipe error during ingest or
broadcast, a dead pipe at window close, or a worker that fails to
answer a close within ``worker_timeout`` seconds (hung — e.g. SIGSTOP)
triggers a **respawn**: the worker process is killed and replaced, the
shard's active queries are re-registered on the fresh process, and —
because the dead worker's in-flight window state is unrecoverable — the
loss is reported as *degraded coverage*: every window open at respawn
time carries a ``shard_gaps`` entry naming the shard and the reason in
its :class:`WindowCoverage`.  The pool itself never poisons: all
parent-side accounting (M_i counts, drops, shed, coverage) is
untouched, per-query failure isolation is preserved, and ``close()``
stays idempotent with dead workers in any state.

The boundary is the pickle-able event codec: events cross the pipe via
``Event.__reduce__``, aggregate states come back via their flat pickle
forms.  On the default shared-memory transport the hot path is leaner
still: ``ingest_frame`` writes each shard's wire bytes once into that
worker's SPSC ring (``shm_ring.ShmRing``) and sends only an integer
descriptor over the pipe — the parent passes offsets, not bytes (see
docs/SCALING.md §"Shared-memory ring ingest").  Ring-full spills to the
pipe-bytes path, platform problems fall back to it entirely, and every
respawn gets a fresh generation-tagged ring.  Everything observable —
results, stats, coverage, drop/late accounting — matches the serial
engine exactly in fault-free runs; ``benchmarks/run_bench.py`` and
``tests/core/test_shard_pool.py`` pin that equivalence with supervision
enabled, on both transports.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import warnings
from typing import Any, Callable, Mapping, Optional

from ..agent.transport import EventBatch, scan_full_batch
from ..events.encoding import decode_event_frames
from ..query.errors import ScrubExecutionError
from ..query.planner import CentralQueryObject
from .engine import DEFAULT_GRACE_SECONDS, CentralEngine, _RunningQuery
from .results import ResultSet, WindowResult
from .shm_ring import DEFAULT_RING_CAPACITY, ShmRing
from .window import TumblingWindowAssigner

__all__ = ["ShardPool", "DEFAULT_WORKER_TIMEOUT"]

_log = logging.getLogger(__name__)

#: Seconds the parent waits for a worker's window-close reply before it
#: declares the worker hung and respawns it.
DEFAULT_WORKER_TIMEOUT = 10.0

#: Idle-recv heartbeat: how often a quiescent worker checks whether its
#: parent is still alive (a parent killed without close() cannot EOF the
#: pipe — the fork child holds the other end too).
_ORPHAN_POLL_SECONDS = 2.0


def _worker_main(
    conn,
    grace_seconds: float,
    ring_name: Optional[str] = None,
    generation: int = 0,
) -> None:
    """Shard worker loop: a thin message pump around a CentralEngine.

    The worker reuses the engine's batched processing internals but never
    closes windows itself — the parent owns window lifecycle and asks for
    partial state instead.  Errors are remembered per query and reported
    on the next close so a poisoned event cannot wedge the protocol.

    When the parent assigned a shared-memory ring, the very first pipe
    message is the attach handshake ``("ready", ok, detail)`` — sent
    before any other traffic so the parent can fall back to pipe-bytes
    without desynchronizing later replies.
    """
    engine = CentralEngine(grace_seconds=grace_seconds)
    failed: dict[str, str] = {}
    parent_pid = os.getppid()
    ring = None
    if ring_name is not None:
        try:
            ring = ShmRing.attach(ring_name, generation)
            conn.send(("ready", True, ""))
        except Exception as exc:  # noqa: BLE001 - reported in the handshake
            try:
                conn.send(("ready", False, f"{type(exc).__name__}: {exc}"))
            except (BrokenPipeError, OSError):
                pass
    while True:
        try:
            # The fork child inherits the parent-side pipe end, so a
            # parent that dies without close() never EOFs this recv —
            # the worker would block forever, pinning its ring segment
            # in /dev/shm.  Poll with a heartbeat and exit once we have
            # been reparented; the resource tracker then reaps the
            # orphaned segments.
            if not conn.poll(_ORPHAN_POLL_SECONDS):
                if os.getppid() != parent_pid:
                    break
                continue
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "events":
            _, query_id, window, events = message
            if query_id in failed:
                continue
            rq = engine._queries.get(query_id)
            if rq is None:
                continue
            try:
                engine._process_window_events(rq, window, events)
            except Exception as exc:  # noqa: BLE001 - reported at close
                failed[query_id] = f"{type(exc).__name__}: {exc}"
        elif kind == "frames":
            # Zero-copy ingest: the parent shipped this shard's slice of a
            # wire frame undecoded; the Event objects are built here, on
            # the worker's core, off the parent's critical path.
            _, query_id, window, count, payload = message
            if query_id in failed:
                continue
            rq = engine._queries.get(query_id)
            if rq is None:
                continue
            try:
                events = decode_event_frames(payload, count)
                engine._process_window_events(rq, window, events)
            except Exception as exc:  # noqa: BLE001 - reported at close
                failed[query_id] = f"{type(exc).__name__}: {exc}"
        elif kind == "shm":
            # Shared-memory ingest: the payload bytes never crossed the
            # pipe — decode them straight out of the ring, then release
            # the span back to the producer.  The release runs even when
            # the query failed or vanished; a skipped ack would strand
            # those bytes and jam the ring into permanent spill.
            _, query_id, window, count, offset, length, upto, _seq, gen = message
            if ring is None or gen != ring.generation:
                continue
            events = None
            error: Optional[str] = None
            rq = None
            payload = ring.payload(offset, length)
            try:
                if query_id not in failed:
                    rq = engine._queries.get(query_id)
                    if rq is not None:
                        try:
                            events = decode_event_frames(payload, count)
                        except Exception as exc:  # noqa: BLE001
                            error = f"{type(exc).__name__}: {exc}"
            finally:
                # Decode copied the bytes out; drop the sub-view *before*
                # acking — a lingering export would keep the segment's
                # mmap pinned past ring.close() at worker exit.
                payload.release()
                ring.release(upto)
            if error is not None:
                failed[query_id] = error
            elif events is not None:
                try:
                    engine._process_window_events(rq, window, events)
                except Exception as exc:  # noqa: BLE001 - reported at close
                    failed[query_id] = f"{type(exc).__name__}: {exc}"
        elif kind == "close":
            _, query_id, window = message
            error = failed.get(query_id)
            if error is not None:
                conn.send(("error", error))
                continue
            try:
                conn.send(("closed", *_collect_window(engine, query_id, window)))
            except Exception as exc:  # noqa: BLE001
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
        elif kind == "register":
            _, spec = message
            if spec.query_id not in engine._queries:
                engine.register(spec)
        elif kind == "unregister":
            _, query_id = message
            engine._queries.pop(query_id, None)
            failed.pop(query_id, None)
        elif kind == "stop":
            break
    if ring is not None:
        ring.close()
    conn.close()


def _collect_window(engine: CentralEngine, query_id: str, window: int):
    """Extract one window's partial state from a worker engine.

    Returns ``(groups, rows_processed, host_values)`` where *groups* maps
    group key -> aggregate states (the shard's partial aggregates) and
    *host_values* carries the per-host value summaries the parent's
    sampling estimator folds into its own accumulators.
    """
    rq = engine._queries.get(query_id)
    if rq is None:
        return ({}, 0, {})
    rq.hosts_by_window.pop(window, None)
    buffer = rq.join_buffers.pop(window, None)
    state = rq.windows.pop(window, None)
    if buffer is not None:
        if state is None:
            state = rq.processor.make_window_state()
        accepted = state.process_batch(buffer.join())
        if rq.estimable_aggs and accepted:
            engine._accumulate_host_values_batch(rq, window, accepted)
    host_values = {}
    per_host = rq.host_acc.pop(window, None)
    if per_host:
        host_values = {
            host: (acc.counts, acc.totals, acc.sum_sqs)
            for host, acc in per_host.items()
        }
    if state is None:
        return ({}, 0, host_values)
    return (state.groups, state.rows_processed, host_values)


class _Worker:
    """One supervised shard worker: process, pipe, generation, and ring.

    ``ring`` is ``None`` on the pipe-bytes transport (or after a
    capability fallback); the per-worker counters feed ``pool_health()``.
    """

    __slots__ = (
        "index", "proc", "conn", "generation",
        "ring", "seq", "descriptors", "bytes_in_place", "spills",
    )

    def __init__(self, index: int, proc, conn, generation: int, ring=None) -> None:
        self.index = index
        self.proc = proc
        self.conn = conn
        self.generation = generation
        self.ring = ring
        #: Monotonic descriptor sequence (debugging/observability aid).
        self.seq = 0
        self.descriptors = 0
        self.bytes_in_place = 0
        self.spills = 0


class _WorkerHung(Exception):
    """Internal: a worker missed its close-reply heartbeat deadline."""


class ShardPool(CentralEngine):
    """A drop-in CentralEngine that fans aggregation out to N processes.

    The public surface is exactly the serial engine's — ``register`` /
    ``ingest`` / ``advance`` / ``finish`` — plus ``close()`` (also via
    context manager) to reap the worker processes, and ``pool_health()``
    for the supervisor's respawn accounting.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        grace_seconds: float = DEFAULT_GRACE_SECONDS,
        on_window: Optional[Callable[[WindowResult], None]] = None,
        worker_timeout: float = DEFAULT_WORKER_TIMEOUT,
        transport: str = "shm",
        ring_capacity: int = DEFAULT_RING_CAPACITY,
    ) -> None:
        super().__init__(grace_seconds, on_window)
        self.workers = max(1, workers if workers is not None else (os.cpu_count() or 1))
        if worker_timeout <= 0:
            raise ValueError(f"worker_timeout must be positive, got {worker_timeout}")
        if transport not in ("shm", "pipe"):
            raise ValueError(f"transport must be 'shm' or 'pipe', got {transport!r}")
        if ring_capacity <= 0:
            raise ValueError(f"ring_capacity must be positive, got {ring_capacity}")
        self._worker_timeout = worker_timeout
        self._grace_seconds = grace_seconds
        #: Whether new worker spawns get a shared-memory ring.  Flips to
        #: False (once, with a log line) on any create/attach failure —
        #: the pool degrades to pipe-bytes instead of crashing.
        self._use_shm = transport == "shm"
        self._ring_capacity = ring_capacity
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        #: Supervisor accounting: how many times a worker was respawned,
        #: and why (index, generation, reason per event).
        self.worker_respawns = 0
        self._respawn_log: list[dict[str, Any]] = []
        self._workers: list[_Worker] = [
            self._spawn(i, generation=0) for i in range(self.workers)
        ]
        self._closed = False

    # Back-compat views (tests and tooling peek at these).
    @property
    def _procs(self) -> list:
        return [w.proc for w in self._workers]

    @property
    def _conns(self) -> list:
        return [w.conn for w in self._workers]

    # -- supervision -----------------------------------------------------------

    def _fallback_to_pipe(self, reason: str) -> None:
        """Disable the shm transport for this pool, logging once."""
        if self._use_shm:
            self._use_shm = False
            _log.warning(
                "shared-memory ring transport disabled (%s); "
                "falling back to pipe-bytes shard ingest",
                reason,
            )

    def _spawn(self, index: int, generation: int) -> _Worker:
        ring = None
        if self._use_shm:
            try:
                ring = ShmRing.create(self._ring_capacity, generation)
            except Exception as exc:  # noqa: BLE001 - capability fallback
                self._fallback_to_pipe(f"ring create failed: {exc}")
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                self._grace_seconds,
                ring.name if ring is not None else None,
                generation,
            ),
            name=f"scrub-shard-{index}.{generation}",
            daemon=True,
        )
        with warnings.catch_warnings():
            # Python 3.12 warns when forking a process that has ever
            # started a thread; the workers only read their pipe.
            warnings.simplefilter("ignore", DeprecationWarning)
            proc.start()
        child_conn.close()
        worker = _Worker(index, proc, parent_conn, generation, ring)
        if ring is not None:
            worker = self._confirm_ring(worker)
        return worker

    def _confirm_ring(self, worker: _Worker) -> _Worker:
        """Wait for the worker's attach handshake; degrade on failure.

        A worker that reports a failed attach keeps running ring-less
        (it sent the handshake, so its pipe is in sync).  A worker that
        never answers is killed and respawned without a ring — the
        ring-less spawn path has no handshake, so this cannot recurse.
        Either way the pool-wide transport falls back and the orphaned
        segment is unlinked; the pool never crashes here.
        """
        ring = worker.ring
        answered = True
        try:
            if not worker.conn.poll(self._worker_timeout):
                raise _WorkerHung()
            reply = worker.conn.recv()
            ok = reply[0] == "ready" and reply[1]
            detail = reply[2] if len(reply) > 2 else ""
        except _WorkerHung:
            answered, ok = False, False
            detail = f"no attach reply within {self._worker_timeout:g}s"
        except (EOFError, OSError) as exc:
            answered, ok = False, False
            detail = f"worker died during attach: {exc}"
        if ok:
            return worker
        self._fallback_to_pipe(f"worker {worker.index} ring attach failed: {detail}")
        ring.destroy()
        worker.ring = None
        if answered:
            # The worker reported the failure itself: it is alive, its
            # pipe is in sync, and it runs fine without a ring.
            return worker
        worker.proc.kill()
        worker.proc.join(timeout=5)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        return self._spawn(worker.index, worker.generation)

    def _supervise(self, index: int, reason: str) -> None:
        """Replace a dead or hung worker and account for the data gap.

        The fresh process gets every active parallel query re-registered;
        whatever the dead worker held for currently-open windows is gone,
        so each such window is marked with a ``shard_gaps`` coverage
        entry instead of poisoning the pool or the query.
        """
        if self._closed:
            return
        old = self._workers[index]
        if old.proc.is_alive():
            # Hung (e.g. SIGSTOP): SIGKILL works even on a stopped process.
            old.proc.kill()
        old.proc.join(timeout=5)
        try:
            old.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        if old.ring is not None:
            # The dead worker's unacked in-flight descriptors die with its
            # ring; the replacement gets a fresh generation-tagged segment
            # so it can never read its predecessor's stale cursors.  The
            # data loss is what _mark_gap below reports as shard_gaps.
            old.ring.destroy()
            old.ring = None

        fresh = self._spawn(index, generation=old.generation + 1)
        # Transport counters are shard-lifetime, not process-lifetime.
        fresh.spills += old.spills
        fresh.descriptors += old.descriptors
        fresh.bytes_in_place += old.bytes_in_place
        self._workers[index] = fresh
        self.worker_respawns += 1
        gap_reason = f"worker respawned: {reason}"
        self._respawn_log.append(
            {"shard": index, "generation": fresh.generation, "reason": reason}
        )
        for rq in self._queries.values():
            if not getattr(rq, "parallel", False):
                continue
            try:
                fresh.conn.send(("register", rq.spec))
            except (BrokenPipeError, OSError):  # pragma: no cover - defensive
                break
            self._mark_gap(rq, index, gap_reason)

    def _mark_gap(self, rq: _RunningQuery, index: int, gap_reason: str) -> None:
        """Record the shard's data loss on every window still open: the
        dead worker's slices of those windows are unrecoverable."""
        gaps = rq.shard_gaps  # created in register()
        for window in rq.tracker.open_windows:
            gaps.setdefault(window, {})[f"shard-{index}"] = gap_reason

    def _shard_gaps_for(self, rq: _RunningQuery, window: int) -> dict[str, str]:
        gaps = getattr(rq, "shard_gaps", None)
        if not gaps:
            return {}
        return gaps.pop(window, {})

    def pool_health(self) -> dict[str, Any]:
        """Supervisor view: liveness, respawn history, and ring transport.

        ``transport`` reports the pool-wide mode (``"pipe"`` after a
        capability fallback even if some earlier workers still hold
        rings); the ``rings`` list gives the per-worker truth.
        """
        rings = []
        spills = 0
        bytes_in_place = 0
        for w in self._workers:
            ring = w.ring
            entry = {
                "shard": w.index,
                "generation": w.generation,
                "transport": "shm" if ring is not None else "pipe",
                "depth": 0,
                "high_water": 0,
                "capacity": 0,
                "descriptors": w.descriptors,
                "bytes_in_place": w.bytes_in_place,
                "spills": w.spills,
            }
            if ring is not None:
                entry.update(ring.stats())
            spills += w.spills
            bytes_in_place += w.bytes_in_place
            rings.append(entry)
        return {
            "workers": self.workers,
            "alive": sum(1 for w in self._workers if w.proc.is_alive()),
            "respawns": self.worker_respawns,
            "respawn_log": list(self._respawn_log),
            "transport": "shm" if self._use_shm else "pipe",
            "ring_spills": spills,
            "ring_bytes_in_place": bytes_in_place,
            "rings": rings,
        }

    def _send_to_worker(self, index: int, message: tuple, reason: str) -> bool:
        """Send with supervision: on a dead pipe, respawn and retry once
        (the fresh worker has the queries re-registered, so the retried
        slice lands instead of widening the gap).  Returns False only
        when even the fresh worker could not be reached."""
        try:
            self._workers[index].conn.send(message)
            return True
        except (BrokenPipeError, EOFError, OSError):
            self._supervise(index, reason)
        try:
            self._workers[index].conn.send(message)
            return True
        except (BrokenPipeError, EOFError, OSError):  # pragma: no cover
            return False

    # -- lifecycle -------------------------------------------------------------

    def register(
        self,
        spec: CentralQueryObject,
        planned_hosts: int = 1,
        targeted_hosts: int = 1,
        targeted_names: tuple[str, ...] = (),
        delivery_state: Optional[Callable[[], Mapping[str, str]]] = None,
    ) -> None:
        super().register(
            spec,
            planned_hosts=planned_hosts,
            targeted_hosts=targeted_hosts,
            targeted_names=targeted_names,
            delivery_state=delivery_state,
        )
        rq = self._queries[spec.query_id]
        # Raw selections preserve arrival order on the parent; everything
        # aggregating fans out.
        rq.parallel = rq.processor.is_aggregating
        #: window -> {"shard-<i>": reason} respawn gaps, reported as
        #: degraded coverage when the window closes.
        rq.shard_gaps = {}
        if rq.parallel:
            self._broadcast(("register", spec))

    def finish(self, query_id: str, drain: bool = True) -> ResultSet:
        rq = self._queries.get(query_id)
        parallel = rq is not None and getattr(rq, "parallel", False)
        if parallel and not drain:
            # Windows left open are never collected; drop the workers'
            # copies instead of leaking them.
            self._broadcast(("unregister", query_id))
            parallel = False
        results = super().finish(query_id, drain=drain)
        if parallel:
            self._broadcast(("unregister", query_id))
        return results

    def close(self) -> None:
        """Stop and reap the worker processes.

        Idempotent, and safe whatever state the workers are in: a dead
        worker's pipe error is swallowed, a stopped worker that ignores
        the graceful stop is terminated and, failing that, SIGKILLed.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            proc = worker.proc
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2)
            if proc.is_alive():  # pragma: no cover - stopped/unkillable
                proc.kill()
                proc.join(timeout=5)
        for worker in self._workers:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        # Rings are unlinked only now, after every worker has been joined
        # (or killed): the join is the cursor drain — no process still
        # maps a segment, no descriptor is mid-decode, so the unlink can
        # never race a reader or leak a SharedMemory segment.
        for worker in self._workers:
            if worker.ring is not None:
                worker.ring.destroy()
                worker.ring = None

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- ingest ----------------------------------------------------------------

    def ingest(self, batch: EventBatch) -> None:
        rq = self._queries.get(batch.query_id)
        if rq is None:
            return
        if not getattr(rq, "parallel", False):
            super().ingest(batch)
            return
        stats = self.stats
        stats.batches_received += 1
        stats.events_received += len(batch.events)
        stats.bytes_received += batch.wire_size()

        self._ingest_metadata(rq, batch)
        if not batch.events:
            return
        query_id = batch.query_id
        n = self.workers
        for window, events in self._segment_events(rq, batch.events).items():
            hosts = rq.hosts_by_window.get(window)
            if hosts is None:
                hosts = rq.hosts_by_window[window] = set()
            for event in events:
                hosts.add(event.host)
            if n == 1:
                self._send_to_worker(
                    0, ("events", query_id, window, events),
                    "pipe error during ingest",
                )
                continue
            shards: list[list] = [[] for _ in range(n)]
            for event in events:
                shards[event.request_id % n].append(event)
            for index, shard_events in enumerate(shards):
                if shard_events:
                    self._send_to_worker(
                        index, ("events", query_id, window, shard_events),
                        "pipe error during ingest",
                    )

    def ingest_frame(self, data: bytes | memoryview) -> None:
        """Zero-copy ingest of a wire frame: scan, slice, ship.

        One skip-scan over the frame (:func:`scan_full_batch`) yields the
        batch metadata plus every event's ``request_id``, timestamp, host,
        and byte extents — no :class:`Event` is built on this process.
        Window segmentation and shard partitioning run over that header
        index; each worker's per-window slice then ships via
        :meth:`_ship_shard` — on the shm transport the bytes are written
        once into the worker's ring and only an integer descriptor
        crosses the pipe; on the pipe transport (or on ring-full spill)
        the raw bytes go as ``("frames", query_id, window, count,
        payload)``.  Either way the worker decodes on its side.  Falls
        back to the decoded object path for non-parallel (raw-selection)
        queries, which run on the parent.
        """
        enc = scan_full_batch(data)
        meta = enc.meta
        rq = self._queries.get(meta.query_id)
        if rq is None:
            # Query ended while the frame was in flight — expected race.
            return
        if not getattr(rq, "parallel", False):
            CentralEngine.ingest(self, enc.to_event_batch())
            return
        stats = self.stats
        stats.batches_received += 1
        stats.events_received += len(enc.frames)
        stats.bytes_received += enc.wire_size()

        self._ingest_metadata(rq, meta)
        if not enc.frames:
            return
        query_id = meta.query_id
        n = self.workers
        buf = enc.data
        for window, frames in self._segment_frames(rq, enc.frames).items():
            hosts = rq.hosts_by_window.get(window)
            if hosts is None:
                hosts = rq.hosts_by_window[window] = set()
            if n == 1:
                extents: list[tuple[int, int]] = []
                total = 0
                for _rid, _ts, host, start, stop in frames:
                    hosts.add(host)
                    extents.append((start, stop))
                    total += stop - start
                self._ship_shard(0, query_id, window, len(frames), extents, total, buf)
                continue
            shard_extents: list[Optional[list[tuple[int, int]]]] = [None] * n
            counts = [0] * n
            totals = [0] * n
            for rid, _ts, host, start, stop in frames:
                hosts.add(host)
                index = rid % n
                slot = shard_extents[index]
                if slot is None:
                    slot = shard_extents[index] = []
                slot.append((start, stop))
                counts[index] += 1
                totals[index] += stop - start
            for index, slot in enumerate(shard_extents):
                if slot is not None:
                    self._ship_shard(
                        index, query_id, window, counts[index], slot,
                        totals[index], buf,
                    )

    def _ship_shard(
        self,
        index: int,
        query_id: str,
        window: int,
        count: int,
        extents: list[tuple[int, int]],
        total: int,
        buf,
    ) -> None:
        """Ship one shard's slice of a scanned frame to its worker.

        Shared-memory fast path: reserve ``total`` ring bytes, copy each
        frame extent straight from the source buffer into the ring (the
        single copy on this path — no intermediate join), and send an
        integer descriptor.  Any failure degrades instead of blocking:

        * ring full / payload larger than the ring → spill the bytes over
          the pipe (``spills`` counter), never wait for the consumer;
        * pipe death after the reserve → supervise.  The reserved span
          belonged to the torn-down ring, and the fresh worker has a
          fresh ring — re-shipping the *descriptor* would point into
          freed memory, so the payload is re-sent as pipe bytes instead.
        """
        worker = self._workers[index]
        ring = worker.ring
        if ring is not None:
            reserved = ring.try_reserve(total)
            if reserved is not None:
                offset, release = reserved
                dest = ring.data
                pos = offset
                for start, stop in extents:
                    n = stop - start
                    dest[pos : pos + n] = buf[start:stop]
                    pos += n
                worker.seq += 1
                message = (
                    "shm", query_id, window, count,
                    offset, total, release, worker.seq, worker.generation,
                )
                try:
                    worker.conn.send(message)
                except (BrokenPipeError, EOFError, OSError):
                    self._supervise(index, "pipe error during ingest")
                else:
                    worker.descriptors += 1
                    worker.bytes_in_place += total
                    return
            self._workers[index].spills += 1
        payload = bytearray()
        for start, stop in extents:
            payload += buf[start:stop]
        self._send_to_worker(
            index,
            ("frames", query_id, window, count, bytes(payload)),
            "pipe error during ingest",
        )

    def _segment_frames(
        self, rq: _RunningQuery, frames: list
    ) -> dict[int, list]:
        """:meth:`CentralEngine._segment_events` over scanned frame tuples.

        Identical window assignment and late accounting, keyed on the
        header timestamp (``frame[1]``) instead of ``event.timestamp`` —
        the differential suite holds the two segmentations to the same
        windows, order, and late counts.
        """
        tracker = rq.tracker
        segments: dict[int, list] = {}
        assigner = tracker.assigner
        if type(assigner) is TumblingWindowAssigner:
            length = assigner.length
            closed_upto = tracker._closed_upto
            open_set = tracker._open
            late = 0
            for frame in frames:
                index = int(frame[1] // length)
                if closed_upto is not None and index <= closed_upto:
                    late += 1
                    continue
                slot = segments.get(index)
                if slot is None:
                    slot = segments[index] = []
                    open_set.add(index)
                slot.append(frame)
            if late:
                tracker.late_events += late
                self.stats.events_late += late
                rq.late_since_close += late
        else:
            stats = self.stats
            for frame in frames:
                indices = tracker.observe(frame[1])
                if not indices:
                    stats.events_late += 1
                    rq.late_since_close += 1
                    continue
                for window in indices:
                    segments.setdefault(window, []).append(frame)
        return segments

    # -- window close ----------------------------------------------------------

    def _close_window(self, rq: _RunningQuery, window: int) -> WindowResult:
        if getattr(rq, "parallel", False):
            query_id = rq.spec.query_id
            state = rq.windows.get(window)
            if state is None:
                state = rq.windows[window] = rq.processor.make_window_state()
            # A worker supervised here loses this window's slice; the
            # query may already be unregistered (finish() pops first), so
            # mark the gap on this rq explicitly as well.
            gap = lambda index, why: rq.shard_gaps.setdefault(  # noqa: E731
                window, {}
            ).setdefault(f"shard-{index}", f"worker respawned: {why}")
            asked: list[_Worker] = []
            for index in range(self.workers):
                worker = self._workers[index]
                try:
                    worker.conn.send(("close", query_id, window))
                except (BrokenPipeError, EOFError, OSError):
                    why = "pipe error at window close"
                    self._supervise(index, why)
                    gap(index, why)
                    continue
                asked.append(worker)
            errors: list[str] = []
            # Replies are merged in worker-index order: a fixed order keeps
            # merged float sums and Space-Saving contents deterministic.
            for worker in asked:
                index = worker.index
                try:
                    if not worker.conn.poll(self._worker_timeout):
                        raise _WorkerHung()
                    reply = worker.conn.recv()
                except _WorkerHung:
                    why = (
                        f"no close reply within {self._worker_timeout:g}s (hung)"
                    )
                    self._supervise(index, why)
                    gap(index, why)
                    continue
                except (EOFError, OSError):
                    why = "worker died at window close"
                    self._supervise(index, why)
                    gap(index, why)
                    continue
                if reply[0] == "error":
                    # Per-query failure isolation: remember, keep draining
                    # the other workers (their replies are already queued;
                    # abandoning them would desynchronize the pipes), then
                    # fail this query only.
                    errors.append(
                        f"shard worker {index} failed for query {query_id}: "
                        f"{reply[1]}"
                    )
                    continue
                _, groups, rows_processed, host_values = reply
                if groups or rows_processed:
                    state.merge_groups(groups, rows_processed)
                if host_values:
                    self._merge_host_values(rq, window, host_values)
            if errors:
                raise ScrubExecutionError("; ".join(errors))
        return super()._close_window(rq, window)

    def _merge_host_values(
        self, rq: _RunningQuery, window: int, host_values: Mapping[str, tuple]
    ) -> None:
        for host, (counts, totals, sum_sqs) in host_values.items():
            acc = rq.host_window_acc(window, host)
            for i, count in enumerate(counts):
                acc.counts[i] += count
                acc.totals[i] += totals[i]
                acc.sum_sqs[i] += sum_sqs[i]

    # -- plumbing --------------------------------------------------------------

    def _broadcast(self, message: tuple) -> None:
        for index in range(self.workers):
            self._send_to_worker(index, message, "pipe error during broadcast")
