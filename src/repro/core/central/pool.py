"""Process-parallel ScrubCentral: a supervised pool of shard workers.

The paper runs ScrubCentral as a dedicated multi-machine facility
(Section 4); this module is the single-box analogue — N OS processes,
each owning a shard of the event stream keyed by the request-id hash
(the same key ``scrubd`` shards its asyncio queues by), so join
co-location is preserved: every event of one request lands on one
worker.

Division of labour (docs/SCALING.md):

* The **parent** keeps every piece of accounting that needs a global
  view — window tracking and late-event counting, per-host M_i counts,
  drop attribution, coverage, sampling estimation, result finalization —
  and routes window-segmented event slices to the workers.
* The **workers** do only the per-event heavy lifting: residual
  predicates, group segmentation, aggregate updates (including the HLL
  and Space-Saving sketch updates that dominate rich queries).
* At window close the parent collects each worker's partial group map
  and folds it in with the aggregate ``merge()`` operators; sketches
  merge losslessly (HLL) or within the Space-Saving error envelope.

Raw-selection queries (no aggregates, no GROUP BY) stay on the parent:
their output rows must preserve arrival order, which a fan-out/merge
would have to re-sequence for no gain — they are cheap per event.

**Self-healing** (docs/SCALING.md §"Worker failure & load shedding"):
the parent supervises its workers.  A pipe error during ingest or
broadcast, a dead pipe at window close, or a worker that fails to
answer a close within ``worker_timeout`` seconds (hung — e.g. SIGSTOP)
triggers a **respawn**: the worker process is killed and replaced, the
shard's active queries are re-registered on the fresh process, and —
because the dead worker's in-flight window state is unrecoverable — the
loss is reported as *degraded coverage*: every window open at respawn
time carries a ``shard_gaps`` entry naming the shard and the reason in
its :class:`WindowCoverage`.  The pool itself never poisons: all
parent-side accounting (M_i counts, drops, shed, coverage) is
untouched, per-query failure isolation is preserved, and ``close()``
stays idempotent with dead workers in any state.

The boundary is the pickle-able event codec: events cross the pipe via
``Event.__reduce__``, aggregate states come back via their flat pickle
forms.  Everything observable — results, stats, coverage, drop/late
accounting — matches the serial engine exactly in fault-free runs;
``benchmarks/run_bench.py`` and ``tests/core/test_shard_pool.py`` pin
that equivalence with supervision enabled.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from typing import Any, Callable, Mapping, Optional

from ..agent.transport import EventBatch, scan_full_batch
from ..events.encoding import decode_event_frames
from ..query.errors import ScrubExecutionError
from ..query.planner import CentralQueryObject
from .engine import DEFAULT_GRACE_SECONDS, CentralEngine, _RunningQuery
from .results import ResultSet, WindowResult
from .window import TumblingWindowAssigner

__all__ = ["ShardPool", "DEFAULT_WORKER_TIMEOUT"]

#: Seconds the parent waits for a worker's window-close reply before it
#: declares the worker hung and respawns it.
DEFAULT_WORKER_TIMEOUT = 10.0


def _worker_main(conn, grace_seconds: float) -> None:
    """Shard worker loop: a thin message pump around a CentralEngine.

    The worker reuses the engine's batched processing internals but never
    closes windows itself — the parent owns window lifecycle and asks for
    partial state instead.  Errors are remembered per query and reported
    on the next close so a poisoned event cannot wedge the protocol.
    """
    engine = CentralEngine(grace_seconds=grace_seconds)
    failed: dict[str, str] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "events":
            _, query_id, window, events = message
            if query_id in failed:
                continue
            rq = engine._queries.get(query_id)
            if rq is None:
                continue
            try:
                engine._process_window_events(rq, window, events)
            except Exception as exc:  # noqa: BLE001 - reported at close
                failed[query_id] = f"{type(exc).__name__}: {exc}"
        elif kind == "frames":
            # Zero-copy ingest: the parent shipped this shard's slice of a
            # wire frame undecoded; the Event objects are built here, on
            # the worker's core, off the parent's critical path.
            _, query_id, window, count, payload = message
            if query_id in failed:
                continue
            rq = engine._queries.get(query_id)
            if rq is None:
                continue
            try:
                events = decode_event_frames(payload, count)
                engine._process_window_events(rq, window, events)
            except Exception as exc:  # noqa: BLE001 - reported at close
                failed[query_id] = f"{type(exc).__name__}: {exc}"
        elif kind == "close":
            _, query_id, window = message
            error = failed.get(query_id)
            if error is not None:
                conn.send(("error", error))
                continue
            try:
                conn.send(("closed", *_collect_window(engine, query_id, window)))
            except Exception as exc:  # noqa: BLE001
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
        elif kind == "register":
            _, spec = message
            if spec.query_id not in engine._queries:
                engine.register(spec)
        elif kind == "unregister":
            _, query_id = message
            engine._queries.pop(query_id, None)
            failed.pop(query_id, None)
        elif kind == "stop":
            break
    conn.close()


def _collect_window(engine: CentralEngine, query_id: str, window: int):
    """Extract one window's partial state from a worker engine.

    Returns ``(groups, rows_processed, host_values)`` where *groups* maps
    group key -> aggregate states (the shard's partial aggregates) and
    *host_values* carries the per-host value summaries the parent's
    sampling estimator folds into its own accumulators.
    """
    rq = engine._queries.get(query_id)
    if rq is None:
        return ({}, 0, {})
    rq.hosts_by_window.pop(window, None)
    buffer = rq.join_buffers.pop(window, None)
    state = rq.windows.pop(window, None)
    if buffer is not None:
        if state is None:
            state = rq.processor.make_window_state()
        accepted = state.process_batch(buffer.join())
        if rq.estimable_aggs and accepted:
            engine._accumulate_host_values_batch(rq, window, accepted)
    host_values = {}
    per_host = rq.host_acc.pop(window, None)
    if per_host:
        host_values = {
            host: (acc.counts, acc.totals, acc.sum_sqs)
            for host, acc in per_host.items()
        }
    if state is None:
        return ({}, 0, host_values)
    return (state.groups, state.rows_processed, host_values)


class _Worker:
    """One supervised shard worker: its process, pipe, and generation."""

    __slots__ = ("index", "proc", "conn", "generation")

    def __init__(self, index: int, proc, conn, generation: int) -> None:
        self.index = index
        self.proc = proc
        self.conn = conn
        self.generation = generation


class _WorkerHung(Exception):
    """Internal: a worker missed its close-reply heartbeat deadline."""


class ShardPool(CentralEngine):
    """A drop-in CentralEngine that fans aggregation out to N processes.

    The public surface is exactly the serial engine's — ``register`` /
    ``ingest`` / ``advance`` / ``finish`` — plus ``close()`` (also via
    context manager) to reap the worker processes, and ``pool_health()``
    for the supervisor's respawn accounting.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        grace_seconds: float = DEFAULT_GRACE_SECONDS,
        on_window: Optional[Callable[[WindowResult], None]] = None,
        worker_timeout: float = DEFAULT_WORKER_TIMEOUT,
    ) -> None:
        super().__init__(grace_seconds, on_window)
        self.workers = max(1, workers if workers is not None else (os.cpu_count() or 1))
        if worker_timeout <= 0:
            raise ValueError(f"worker_timeout must be positive, got {worker_timeout}")
        self._worker_timeout = worker_timeout
        self._grace_seconds = grace_seconds
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        #: Supervisor accounting: how many times a worker was respawned,
        #: and why (index, generation, reason per event).
        self.worker_respawns = 0
        self._respawn_log: list[dict[str, Any]] = []
        self._workers: list[_Worker] = [
            self._spawn(i, generation=0) for i in range(self.workers)
        ]
        self._closed = False

    # Back-compat views (tests and tooling peek at these).
    @property
    def _procs(self) -> list:
        return [w.proc for w in self._workers]

    @property
    def _conns(self) -> list:
        return [w.conn for w in self._workers]

    # -- supervision -----------------------------------------------------------

    def _spawn(self, index: int, generation: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._grace_seconds),
            name=f"scrub-shard-{index}.{generation}",
            daemon=True,
        )
        with warnings.catch_warnings():
            # Python 3.12 warns when forking a process that has ever
            # started a thread; the workers only read their pipe.
            warnings.simplefilter("ignore", DeprecationWarning)
            proc.start()
        child_conn.close()
        return _Worker(index, proc, parent_conn, generation)

    def _supervise(self, index: int, reason: str) -> None:
        """Replace a dead or hung worker and account for the data gap.

        The fresh process gets every active parallel query re-registered;
        whatever the dead worker held for currently-open windows is gone,
        so each such window is marked with a ``shard_gaps`` coverage
        entry instead of poisoning the pool or the query.
        """
        if self._closed:
            return
        old = self._workers[index]
        if old.proc.is_alive():
            # Hung (e.g. SIGSTOP): SIGKILL works even on a stopped process.
            old.proc.kill()
        old.proc.join(timeout=5)
        try:
            old.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass

        fresh = self._spawn(index, generation=old.generation + 1)
        self._workers[index] = fresh
        self.worker_respawns += 1
        gap_reason = f"worker respawned: {reason}"
        self._respawn_log.append(
            {"shard": index, "generation": fresh.generation, "reason": reason}
        )
        for rq in self._queries.values():
            if not getattr(rq, "parallel", False):
                continue
            try:
                fresh.conn.send(("register", rq.spec))
            except (BrokenPipeError, OSError):  # pragma: no cover - defensive
                break
            self._mark_gap(rq, index, gap_reason)

    def _mark_gap(self, rq: _RunningQuery, index: int, gap_reason: str) -> None:
        """Record the shard's data loss on every window still open: the
        dead worker's slices of those windows are unrecoverable."""
        gaps = rq.shard_gaps  # created in register()
        for window in rq.tracker.open_windows:
            gaps.setdefault(window, {})[f"shard-{index}"] = gap_reason

    def _shard_gaps_for(self, rq: _RunningQuery, window: int) -> dict[str, str]:
        gaps = getattr(rq, "shard_gaps", None)
        if not gaps:
            return {}
        return gaps.pop(window, {})

    def pool_health(self) -> dict[str, Any]:
        """Supervisor view: worker liveness and respawn history."""
        return {
            "workers": self.workers,
            "alive": sum(1 for w in self._workers if w.proc.is_alive()),
            "respawns": self.worker_respawns,
            "respawn_log": list(self._respawn_log),
        }

    def _send_to_worker(self, index: int, message: tuple, reason: str) -> bool:
        """Send with supervision: on a dead pipe, respawn and retry once
        (the fresh worker has the queries re-registered, so the retried
        slice lands instead of widening the gap).  Returns False only
        when even the fresh worker could not be reached."""
        try:
            self._workers[index].conn.send(message)
            return True
        except (BrokenPipeError, EOFError, OSError):
            self._supervise(index, reason)
        try:
            self._workers[index].conn.send(message)
            return True
        except (BrokenPipeError, EOFError, OSError):  # pragma: no cover
            return False

    # -- lifecycle -------------------------------------------------------------

    def register(
        self,
        spec: CentralQueryObject,
        planned_hosts: int = 1,
        targeted_hosts: int = 1,
        targeted_names: tuple[str, ...] = (),
        delivery_state: Optional[Callable[[], Mapping[str, str]]] = None,
    ) -> None:
        super().register(
            spec,
            planned_hosts=planned_hosts,
            targeted_hosts=targeted_hosts,
            targeted_names=targeted_names,
            delivery_state=delivery_state,
        )
        rq = self._queries[spec.query_id]
        # Raw selections preserve arrival order on the parent; everything
        # aggregating fans out.
        rq.parallel = rq.processor.is_aggregating
        #: window -> {"shard-<i>": reason} respawn gaps, reported as
        #: degraded coverage when the window closes.
        rq.shard_gaps = {}
        if rq.parallel:
            self._broadcast(("register", spec))

    def finish(self, query_id: str, drain: bool = True) -> ResultSet:
        rq = self._queries.get(query_id)
        parallel = rq is not None and getattr(rq, "parallel", False)
        if parallel and not drain:
            # Windows left open are never collected; drop the workers'
            # copies instead of leaking them.
            self._broadcast(("unregister", query_id))
            parallel = False
        results = super().finish(query_id, drain=drain)
        if parallel:
            self._broadcast(("unregister", query_id))
        return results

    def close(self) -> None:
        """Stop and reap the worker processes.

        Idempotent, and safe whatever state the workers are in: a dead
        worker's pipe error is swallowed, a stopped worker that ignores
        the graceful stop is terminated and, failing that, SIGKILLed.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            proc = worker.proc
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2)
            if proc.is_alive():  # pragma: no cover - stopped/unkillable
                proc.kill()
                proc.join(timeout=5)
        for worker in self._workers:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- ingest ----------------------------------------------------------------

    def ingest(self, batch: EventBatch) -> None:
        rq = self._queries.get(batch.query_id)
        if rq is None:
            return
        if not getattr(rq, "parallel", False):
            super().ingest(batch)
            return
        stats = self.stats
        stats.batches_received += 1
        stats.events_received += len(batch.events)
        stats.bytes_received += batch.wire_size()

        self._ingest_metadata(rq, batch)
        if not batch.events:
            return
        query_id = batch.query_id
        n = self.workers
        for window, events in self._segment_events(rq, batch.events).items():
            hosts = rq.hosts_by_window.get(window)
            if hosts is None:
                hosts = rq.hosts_by_window[window] = set()
            for event in events:
                hosts.add(event.host)
            if n == 1:
                self._send_to_worker(
                    0, ("events", query_id, window, events),
                    "pipe error during ingest",
                )
                continue
            shards: list[list] = [[] for _ in range(n)]
            for event in events:
                shards[event.request_id % n].append(event)
            for index, shard_events in enumerate(shards):
                if shard_events:
                    self._send_to_worker(
                        index, ("events", query_id, window, shard_events),
                        "pipe error during ingest",
                    )

    def ingest_frame(self, data: bytes | memoryview) -> None:
        """Zero-copy ingest of a wire frame: scan, slice, ship.

        One skip-scan over the frame (:func:`scan_full_batch`) yields the
        batch metadata plus every event's ``request_id``, timestamp, host,
        and byte extents — no :class:`Event` is built on this process.
        Window segmentation and shard partitioning run over that header
        index; each worker gets its shard's raw bytes per window as
        ``("frames", query_id, window, count, payload)`` and decodes on
        its side of the pipe.  Falls back to the decoded object path for
        non-parallel (raw-selection) queries, which run on the parent.
        """
        enc = scan_full_batch(data)
        meta = enc.meta
        rq = self._queries.get(meta.query_id)
        if rq is None:
            # Query ended while the frame was in flight — expected race.
            return
        if not getattr(rq, "parallel", False):
            CentralEngine.ingest(self, enc.to_event_batch())
            return
        stats = self.stats
        stats.batches_received += 1
        stats.events_received += len(enc.frames)
        stats.bytes_received += enc.wire_size()

        self._ingest_metadata(rq, meta)
        if not enc.frames:
            return
        query_id = meta.query_id
        n = self.workers
        buf = enc.data
        for window, frames in self._segment_frames(rq, enc.frames).items():
            hosts = rq.hosts_by_window.get(window)
            if hosts is None:
                hosts = rq.hosts_by_window[window] = set()
            if n == 1:
                payload = bytearray()
                for _rid, _ts, host, start, stop in frames:
                    hosts.add(host)
                    payload += buf[start:stop]
                self._send_to_worker(
                    0, ("frames", query_id, window, len(frames), bytes(payload)),
                    "pipe error during ingest",
                )
                continue
            shards: list[Optional[bytearray]] = [None] * n
            counts = [0] * n
            for rid, _ts, host, start, stop in frames:
                hosts.add(host)
                index = rid % n
                shard = shards[index]
                if shard is None:
                    shard = shards[index] = bytearray()
                shard += buf[start:stop]
                counts[index] += 1
            for index, shard in enumerate(shards):
                if shard is not None:
                    self._send_to_worker(
                        index,
                        ("frames", query_id, window, counts[index], bytes(shard)),
                        "pipe error during ingest",
                    )

    def _segment_frames(
        self, rq: _RunningQuery, frames: list
    ) -> dict[int, list]:
        """:meth:`CentralEngine._segment_events` over scanned frame tuples.

        Identical window assignment and late accounting, keyed on the
        header timestamp (``frame[1]``) instead of ``event.timestamp`` —
        the differential suite holds the two segmentations to the same
        windows, order, and late counts.
        """
        tracker = rq.tracker
        segments: dict[int, list] = {}
        assigner = tracker.assigner
        if type(assigner) is TumblingWindowAssigner:
            length = assigner.length
            closed_upto = tracker._closed_upto
            open_set = tracker._open
            late = 0
            for frame in frames:
                index = int(frame[1] // length)
                if closed_upto is not None and index <= closed_upto:
                    late += 1
                    continue
                slot = segments.get(index)
                if slot is None:
                    slot = segments[index] = []
                    open_set.add(index)
                slot.append(frame)
            if late:
                tracker.late_events += late
                self.stats.events_late += late
                rq.late_since_close += late
        else:
            stats = self.stats
            for frame in frames:
                indices = tracker.observe(frame[1])
                if not indices:
                    stats.events_late += 1
                    rq.late_since_close += 1
                    continue
                for window in indices:
                    segments.setdefault(window, []).append(frame)
        return segments

    # -- window close ----------------------------------------------------------

    def _close_window(self, rq: _RunningQuery, window: int) -> WindowResult:
        if getattr(rq, "parallel", False):
            query_id = rq.spec.query_id
            state = rq.windows.get(window)
            if state is None:
                state = rq.windows[window] = rq.processor.make_window_state()
            # A worker supervised here loses this window's slice; the
            # query may already be unregistered (finish() pops first), so
            # mark the gap on this rq explicitly as well.
            gap = lambda index, why: rq.shard_gaps.setdefault(  # noqa: E731
                window, {}
            ).setdefault(f"shard-{index}", f"worker respawned: {why}")
            asked: list[_Worker] = []
            for index in range(self.workers):
                worker = self._workers[index]
                try:
                    worker.conn.send(("close", query_id, window))
                except (BrokenPipeError, EOFError, OSError):
                    why = "pipe error at window close"
                    self._supervise(index, why)
                    gap(index, why)
                    continue
                asked.append(worker)
            errors: list[str] = []
            # Replies are merged in worker-index order: a fixed order keeps
            # merged float sums and Space-Saving contents deterministic.
            for worker in asked:
                index = worker.index
                try:
                    if not worker.conn.poll(self._worker_timeout):
                        raise _WorkerHung()
                    reply = worker.conn.recv()
                except _WorkerHung:
                    why = (
                        f"no close reply within {self._worker_timeout:g}s (hung)"
                    )
                    self._supervise(index, why)
                    gap(index, why)
                    continue
                except (EOFError, OSError):
                    why = "worker died at window close"
                    self._supervise(index, why)
                    gap(index, why)
                    continue
                if reply[0] == "error":
                    # Per-query failure isolation: remember, keep draining
                    # the other workers (their replies are already queued;
                    # abandoning them would desynchronize the pipes), then
                    # fail this query only.
                    errors.append(
                        f"shard worker {index} failed for query {query_id}: "
                        f"{reply[1]}"
                    )
                    continue
                _, groups, rows_processed, host_values = reply
                if groups or rows_processed:
                    state.merge_groups(groups, rows_processed)
                if host_values:
                    self._merge_host_values(rq, window, host_values)
            if errors:
                raise ScrubExecutionError("; ".join(errors))
        return super()._close_window(rq, window)

    def _merge_host_values(
        self, rq: _RunningQuery, window: int, host_values: Mapping[str, tuple]
    ) -> None:
        for host, (counts, totals, sum_sqs) in host_values.items():
            acc = rq.host_window_acc(window, host)
            for i, count in enumerate(counts):
                acc.counts[i] += count
                acc.totals[i] += totals[i]
                acc.sum_sqs[i] += sum_sqs[i]

    # -- plumbing --------------------------------------------------------------

    def _broadcast(self, message: tuple) -> None:
        for index in range(self.workers):
            self._send_to_worker(index, message, "pipe error during broadcast")
