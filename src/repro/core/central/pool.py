"""Process-parallel ScrubCentral: a pool of shard worker processes.

The paper runs ScrubCentral as a dedicated multi-machine facility
(Section 4); this module is the single-box analogue — N OS processes,
each owning a shard of the event stream keyed by the request-id hash
(the same key ``scrubd`` shards its asyncio queues by), so join
co-location is preserved: every event of one request lands on one
worker.

Division of labour (docs/SCALING.md):

* The **parent** keeps every piece of accounting that needs a global
  view — window tracking and late-event counting, per-host M_i counts,
  drop attribution, coverage, sampling estimation, result finalization —
  and routes window-segmented event slices to the workers.
* The **workers** do only the per-event heavy lifting: residual
  predicates, group segmentation, aggregate updates (including the HLL
  and Space-Saving sketch updates that dominate rich queries).
* At window close the parent collects each worker's partial group map
  and folds it in with the aggregate ``merge()`` operators; sketches
  merge losslessly (HLL) or within the Space-Saving error envelope.

Raw-selection queries (no aggregates, no GROUP BY) stay on the parent:
their output rows must preserve arrival order, which a fan-out/merge
would have to re-sequence for no gain — they are cheap per event.

The boundary is the pickle-able event codec: events cross the pipe via
``Event.__reduce__``, aggregate states come back via their flat pickle
forms.  Everything observable — results, stats, coverage, drop/late
accounting — matches the serial engine exactly; ``benchmarks/run_bench.py``
and ``tests/core/test_shard_pool.py`` pin that equivalence.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from typing import Callable, Mapping, Optional

from ..agent.transport import EventBatch
from ..query.errors import ScrubExecutionError
from ..query.planner import CentralQueryObject
from .engine import DEFAULT_GRACE_SECONDS, CentralEngine, _RunningQuery
from .results import ResultSet, WindowResult

__all__ = ["ShardPool"]


def _worker_main(conn, grace_seconds: float) -> None:
    """Shard worker loop: a thin message pump around a CentralEngine.

    The worker reuses the engine's batched processing internals but never
    closes windows itself — the parent owns window lifecycle and asks for
    partial state instead.  Errors are remembered per query and reported
    on the next close so a poisoned event cannot wedge the protocol.
    """
    engine = CentralEngine(grace_seconds=grace_seconds)
    failed: dict[str, str] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "events":
            _, query_id, window, events = message
            if query_id in failed:
                continue
            rq = engine._queries.get(query_id)
            if rq is None:
                continue
            try:
                engine._process_window_events(rq, window, events)
            except Exception as exc:  # noqa: BLE001 - reported at close
                failed[query_id] = f"{type(exc).__name__}: {exc}"
        elif kind == "close":
            _, query_id, window = message
            error = failed.get(query_id)
            if error is not None:
                conn.send(("error", error))
                continue
            try:
                conn.send(("closed", *_collect_window(engine, query_id, window)))
            except Exception as exc:  # noqa: BLE001
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
        elif kind == "register":
            _, spec = message
            if spec.query_id not in engine._queries:
                engine.register(spec)
        elif kind == "unregister":
            _, query_id = message
            engine._queries.pop(query_id, None)
            failed.pop(query_id, None)
        elif kind == "stop":
            break
    conn.close()


def _collect_window(engine: CentralEngine, query_id: str, window: int):
    """Extract one window's partial state from a worker engine.

    Returns ``(groups, rows_processed, host_values)`` where *groups* maps
    group key -> aggregate states (the shard's partial aggregates) and
    *host_values* carries the per-host value summaries the parent's
    sampling estimator folds into its own accumulators.
    """
    rq = engine._queries.get(query_id)
    if rq is None:
        return ({}, 0, {})
    rq.hosts_by_window.pop(window, None)
    buffer = rq.join_buffers.pop(window, None)
    state = rq.windows.pop(window, None)
    if buffer is not None:
        if state is None:
            state = rq.processor.make_window_state()
        accepted = state.process_batch(buffer.join())
        if rq.estimable_aggs and accepted:
            engine._accumulate_host_values_batch(rq, window, accepted)
    host_values = {}
    per_host = rq.host_acc.pop(window, None)
    if per_host:
        host_values = {
            host: (acc.counts, acc.totals, acc.sum_sqs)
            for host, acc in per_host.items()
        }
    if state is None:
        return ({}, 0, host_values)
    return (state.groups, state.rows_processed, host_values)


class ShardPool(CentralEngine):
    """A drop-in CentralEngine that fans aggregation out to N processes.

    The public surface is exactly the serial engine's — ``register`` /
    ``ingest`` / ``advance`` / ``finish`` — plus ``close()`` (also via
    context manager) to reap the worker processes.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        grace_seconds: float = DEFAULT_GRACE_SECONDS,
        on_window: Optional[Callable[[WindowResult], None]] = None,
    ) -> None:
        super().__init__(grace_seconds, on_window)
        self.workers = max(1, workers if workers is not None else (os.cpu_count() or 1))
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        self._conns = []
        self._procs = []
        for i in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, grace_seconds),
                name=f"scrub-shard-{i}",
                daemon=True,
            )
            with warnings.catch_warnings():
                # Python 3.12 warns when forking a process that has ever
                # started a thread; the workers only read their pipe.
                warnings.simplefilter("ignore", DeprecationWarning)
                proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._closed = False

    # -- lifecycle -------------------------------------------------------------

    def register(
        self,
        spec: CentralQueryObject,
        planned_hosts: int = 1,
        targeted_hosts: int = 1,
        targeted_names: tuple[str, ...] = (),
        delivery_state: Optional[Callable[[], Mapping[str, str]]] = None,
    ) -> None:
        super().register(
            spec,
            planned_hosts=planned_hosts,
            targeted_hosts=targeted_hosts,
            targeted_names=targeted_names,
            delivery_state=delivery_state,
        )
        rq = self._queries[spec.query_id]
        # Raw selections preserve arrival order on the parent; everything
        # aggregating fans out.
        rq.parallel = rq.processor.is_aggregating
        if rq.parallel:
            self._broadcast(("register", spec))

    def finish(self, query_id: str, drain: bool = True) -> ResultSet:
        rq = self._queries.get(query_id)
        parallel = rq is not None and getattr(rq, "parallel", False)
        if parallel and not drain:
            # Windows left open are never collected; drop the workers'
            # copies instead of leaking them.
            self._broadcast(("unregister", query_id))
            parallel = False
        results = super().finish(query_id, drain=drain)
        if parallel:
            self._broadcast(("unregister", query_id))
        return results

    def close(self) -> None:
        """Stop and reap the worker processes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- ingest ----------------------------------------------------------------

    def ingest(self, batch: EventBatch) -> None:
        rq = self._queries.get(batch.query_id)
        if rq is None:
            return
        if not getattr(rq, "parallel", False):
            super().ingest(batch)
            return
        stats = self.stats
        stats.batches_received += 1
        stats.events_received += len(batch.events)
        stats.bytes_received += batch.wire_size()

        self._ingest_metadata(rq, batch)
        if not batch.events:
            return
        query_id = batch.query_id
        conns = self._conns
        n = self.workers
        for window, events in self._segment_events(rq, batch.events).items():
            hosts = rq.hosts_by_window.get(window)
            if hosts is None:
                hosts = rq.hosts_by_window[window] = set()
            for event in events:
                hosts.add(event.host)
            if n == 1:
                conns[0].send(("events", query_id, window, events))
                continue
            shards: list[list] = [[] for _ in range(n)]
            for event in events:
                shards[event.request_id % n].append(event)
            for index, shard_events in enumerate(shards):
                if shard_events:
                    conns[index].send(("events", query_id, window, shard_events))

    # -- window close ----------------------------------------------------------

    def _close_window(self, rq: _RunningQuery, window: int) -> WindowResult:
        if getattr(rq, "parallel", False):
            query_id = rq.spec.query_id
            for conn in self._conns:
                conn.send(("close", query_id, window))
            state = rq.windows.get(window)
            if state is None:
                state = rq.windows[window] = rq.processor.make_window_state()
            # Replies are merged in worker-index order: a fixed order keeps
            # merged float sums and Space-Saving contents deterministic.
            for index, conn in enumerate(self._conns):
                reply = conn.recv()
                if reply[0] == "error":
                    raise ScrubExecutionError(
                        f"shard worker {index} failed for query {query_id}: {reply[1]}"
                    )
                _, groups, rows_processed, host_values = reply
                if groups or rows_processed:
                    state.merge_groups(groups, rows_processed)
                if host_values:
                    self._merge_host_values(rq, window, host_values)
        return super()._close_window(rq, window)

    def _merge_host_values(
        self, rq: _RunningQuery, window: int, host_values: Mapping[str, tuple]
    ) -> None:
        for host, (counts, totals, sum_sqs) in host_values.items():
            acc = rq.host_window_acc(window, host)
            for i, count in enumerate(counts):
                acc.counts[i] += count
                acc.totals[i] += totals[i]
                acc.sum_sqs[i] += sum_sqs[i]

    # -- plumbing --------------------------------------------------------------

    def _broadcast(self, message: tuple) -> None:
        for conn in self._conns:
            conn.send(message)
