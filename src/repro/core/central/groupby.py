"""Group-by and select-list evaluation at ScrubCentral.

For each window the engine keeps a :class:`WindowGroups`: the per-group
aggregate states (for aggregating queries) or the evaluated output rows
(for plain selections).  At window close the group states are rendered
into result rows by substituting aggregate results and group-key values
into the SELECT expressions — so ``1000 * AVG(impression.cost)`` (paper
Fig. 13) evaluates with AVG computed first, arithmetic after.

Group-key and aggregate matching is by structural AST equality: a
SELECT item equal to a GROUP BY expression reads the group key, and
identical aggregate calls share one state.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Callable, Optional

from ..events import Event
from ..query.ast import (
    AggregateCall,
    Between,
    BinaryOp,
    BoolOp,
    Comparison,
    Expr,
    InList,
    IsNull,
    Literal,
    UnaryOp,
    normalize_expr,
    unparse,
    walk_exprs,
)
from ..query.compile import FieldGetter, compile_expr, compile_predicate, like_to_regex
from ..query.errors import ScrubExecutionError
from ..query.planner import CentralQueryObject, unique_aggregates
from .aggregates import AggregateState, make_state
from .results import ResultRow

__all__ = [
    "GroupByProcessor",
    "WindowGroups",
    "make_field_getter",
    "compile_cached",
    "compilation_cache_info",
]

#: Sentinel passed to COUNT(*) states: always non-NULL, so every row counts.
_COUNT_STAR = object()


def make_field_getter(sources: tuple[str, ...]) -> FieldGetter:
    """Field access over central rows.

    Single-source queries pass events directly (no per-event dict); join
    queries pass ``{event_type: Event}`` rows.
    """
    if len(sources) == 1:
        def single(_event_type: Optional[str], field: str) -> Callable[[Event], Any]:
            return lambda event: event.get(field)
        return single

    def joined(event_type: Optional[str], field: str) -> Callable[[dict[str, Event]], Any]:
        if event_type is None:  # pragma: no cover - validator resolves all refs
            raise ScrubExecutionError(f"unresolved field reference {field!r} in join")
        return lambda row: row[event_type].get(field)

    return joined


@lru_cache(maxsize=512)
def _compile_normalized(expr: Expr, sources: tuple[str, ...]) -> Callable[[Any], Any]:
    return compile_expr(expr, make_field_getter(sources))


def compile_cached(expr: Expr, sources: tuple[str, ...]) -> Callable[[Any], Any]:
    """Compile *expr* for rows of *sources*, caching by normalized AST.

    Re-installed queries (reconnect re-installs, shard workers compiling
    the same spec, repeated shell sessions) hit the cache instead of
    re-walking the AST; normalization makes structurally different but
    semantically identical predicates share one closure.  Compiled
    closures are stateless, so sharing across queries is safe.
    """
    try:
        return _compile_normalized(normalize_expr(expr), sources)
    except TypeError:
        # An unhashable literal (not produced by the parser, but the AST
        # is public API) — compile without caching.
        return compile_expr(expr, make_field_getter(sources))


def compilation_cache_info():
    """Hit/miss statistics for the normalized-AST compilation cache."""
    return _compile_normalized.cache_info()


class GroupByProcessor:
    """Compiled per-query machinery shared by all of its windows."""

    def __init__(self, spec: CentralQueryObject) -> None:
        self.spec = spec
        sources = spec.sources
        getter = make_field_getter(sources)
        self.has_residual = spec.residual_predicate is not None
        if self.has_residual:
            inner = compile_cached(spec.residual_predicate, sources)
            self.residual = lambda row: inner(row) is True
        else:
            self.residual = compile_predicate(None, getter)

        self.group_exprs: tuple[Expr, ...] = spec.group_by
        self._group_fns = [compile_cached(g, sources) for g in spec.group_by]

        # Unique aggregate calls across SELECT and HAVING (structural
        # dedup); the shared helper fixes the order host partials are
        # indexed by.  HAVING-only aggregates get a state like any other.
        self.agg_calls: tuple[AggregateCall, ...] = unique_aggregates(
            spec.select_items, spec.having
        )
        #: Post-aggregation group filter; evaluated per group at finalize.
        self.having: Optional[Expr] = spec.having
        self._agg_arg_fns: list[Callable[[Any], Any]] = [
            (lambda _row: _COUNT_STAR)
            if agg.arg is None
            else compile_cached(agg.arg, sources)
            for agg in self.agg_calls
        ]
        #: COUNT(*) never inspects its rows — the batched path can bump
        #: the counter by the group size instead of feeding sentinels.
        self._count_star = [agg.arg is None and agg.func == "COUNT" for agg in self.agg_calls]

        self.is_aggregating = bool(self.agg_calls) or bool(spec.group_by)
        if not self.is_aggregating:
            self._select_fns = [
                compile_cached(item.expr, sources) for item in spec.select_items
            ]
        else:
            self._select_fns = []

    def make_window_state(self) -> "WindowGroups":
        return WindowGroups(self)


class WindowGroups:
    """Mutable per-window state: groups & aggregate states, or raw rows."""

    def __init__(self, processor: GroupByProcessor) -> None:
        self._p = processor
        self.groups: dict[tuple[Any, ...], list[AggregateState]] = {}
        self.raw_rows: list[ResultRow] = []
        self.rows_processed = 0

    def process(self, row: Any) -> bool:
        """Feed one central row (Event or JoinedRow); returns False when
        the residual predicate rejected it."""
        p = self._p
        if not p.residual(row):
            return False
        self.rows_processed += 1
        if not p.is_aggregating:
            self.raw_rows.append(
                ResultRow(tuple(fn(row) for fn in p._select_fns))
            )
            return True
        key = tuple(_group_key_part(fn(row)) for fn in p._group_fns)
        states = self.groups.get(key)
        if states is None:
            states = [make_state(agg) for agg in p.agg_calls]
            self.groups[key] = states
        for state, arg_fn in zip(states, p._agg_arg_fns):
            state.update(arg_fn(row))
        return True

    def process_batch(self, rows: list[Any]) -> list[Any]:
        """Feed many central rows at once; returns the accepted rows.

        Semantically identical to calling :meth:`process` per row (same
        update order, so even order-sensitive states like Space-Saving
        end up byte-identical), but pays the residual predicate, group
        segmentation, and aggregate dispatch per *batch* instead of per
        event.  The returned list (rows that passed the residual) feeds
        the engine's per-host estimator accumulation.
        """
        p = self._p
        if p.has_residual:
            residual = p.residual
            rows = [row for row in rows if residual(row)]
        if not rows:
            return rows
        self.rows_processed += len(rows)
        if not p.is_aggregating:
            fns = p._select_fns
            self.raw_rows.extend(
                ResultRow(tuple(fn(row) for fn in fns)) for row in rows
            )
            return rows

        group_fns = p._group_fns
        if not group_fns:
            segments = {(): rows}
        elif len(group_fns) == 1:
            fn = group_fns[0]
            segments = {}
            for row in rows:
                segments.setdefault((_group_key_part(fn(row)),), []).append(row)
        else:
            segments = {}
            for row in rows:
                key = tuple(_group_key_part(fn(row)) for fn in group_fns)
                segments.setdefault(key, []).append(row)

        for key, members in segments.items():
            states = self.groups.get(key)
            if states is None:
                states = [make_state(agg) for agg in p.agg_calls]
                self.groups[key] = states
            for state, arg_fn, star in zip(states, p._agg_arg_fns, p._count_star):
                if star:
                    state.count += len(members)  # COUNT(*): no per-row work
                else:
                    state.update_many([arg_fn(row) for row in members])
        return rows

    def merge(self, other: "WindowGroups") -> None:
        """Fold another window's state for the *same* query into this one.

        The shard-merge operator: commutative and associative for every
        aggregate except SUM ordering (floats) and saturated Space-Saving
        summaries — see docs/SCALING.md for the exactness contract.
        *other* is consumed; its states may be adopted rather than copied.
        """
        if not self._p.is_aggregating:
            self.rows_processed += other.rows_processed
            self.raw_rows.extend(other.raw_rows)
            return
        self.merge_groups(other.groups, other.rows_processed)

    def merge_groups(
        self,
        groups: dict[tuple[Any, ...], list[AggregateState]],
        rows_processed: int,
    ) -> None:
        """Merge a bare groups map (a shard's partial) into this window."""
        self.rows_processed += rows_processed
        mine = self.groups
        for key, other_states in groups.items():
            states = mine.get(key)
            if states is None:
                mine[key] = other_states
            else:
                for state, other in zip(states, other_states):
                    state.merge(other)

    def finalize(
        self,
        scale_factor: float = 1.0,
        agg_overrides: Optional[dict[AggregateCall, Any]] = None,
    ) -> list[ResultRow]:
        """Render this window's output rows, applying the sampling scale
        factor to scalable aggregates (COUNT/SUM/TOP-K counts).

        *agg_overrides* lets the engine substitute better estimates — the
        multi-stage sampling estimator's values — for specific aggregate
        calls (global aggregates under sampling).
        """
        p = self._p
        if not p.is_aggregating:
            return self.raw_rows
        rows: list[ResultRow] = []
        for key, states in sorted(self.groups.items(), key=_sort_key):
            group_values = dict(zip(p.group_exprs, key))
            agg_values = {
                agg: state.scaled_result(scale_factor)
                for agg, state in zip(p.agg_calls, states)
            }
            if agg_overrides:
                agg_values.update(agg_overrides)
            if p.having is not None:
                # SQL HAVING: keep the group only when the predicate is
                # definitely true (3VL, same rule as WHERE).  Evaluated
                # over the scaled/overridden values the row would show.
                if _eval_output(p.having, group_values, agg_values) is not True:
                    continue
            values = tuple(
                _eval_output(item.expr, group_values, agg_values)
                for item in p.spec.select_items
            )
            rows.append(ResultRow(values))
        return rows

    def aggregate_states_for(self, key: tuple[Any, ...]) -> list[AggregateState]:
        return self.groups[key]


def _group_key_part(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_group_key_part(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _group_key_part(v)) for k, v in value.items()))
    return value


def _sort_key(item: tuple[tuple[Any, ...], Any]) -> tuple:
    """Deterministic group ordering; None sorts first, mixed types by repr."""
    key = item[0]
    return tuple(
        (0, "") if part is None else (1, part) if isinstance(part, (int, float, bool)) else (2, str(part))
        for part in key
    )


def _eval_output(
    expr: Expr,
    group_values: dict[Expr, Any],
    agg_values: dict[AggregateCall, Any],
) -> Any:
    """Evaluate a SELECT or HAVING expression after aggregation.

    Group-by expressions and aggregate calls are leaves here; everything
    else is literals, arithmetic, and (for HAVING) predicates over them
    — with the same three-valued-logic semantics the row-level compiler
    gives WHERE (``compile.py``), so ``HAVING COUNT(*) > n`` filters
    exactly like the equivalent post-hoc filter over the output rows.
    """
    if expr in group_values:
        return group_values[expr]
    if isinstance(expr, AggregateCall):
        return agg_values[expr]
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, BinaryOp):
        left = _eval_output(expr.left, group_values, agg_values)
        right = _eval_output(expr.right, group_values, agg_values)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left / right if right != 0 else None
        if expr.op == "%":
            return left % right if right != 0 else None
        raise ScrubExecutionError(f"bad arithmetic op {expr.op!r}")
    if isinstance(expr, UnaryOp):
        value = _eval_output(expr.operand, group_values, agg_values)
        if value is None:
            return None
        return -value if expr.op == "-" else (not value)
    if isinstance(expr, Comparison):
        left = _eval_output(expr.left, group_values, agg_values)
        right = _eval_output(expr.right, group_values, agg_values)
        if left is None or right is None:
            return None
        try:
            if expr.op == "LIKE":
                return like_to_regex(right).fullmatch(str(left)) is not None
            return _COMPARATORS[expr.op](left, right)
        except TypeError:
            return None
    if isinstance(expr, InList):
        value = _eval_output(expr.expr, group_values, agg_values)
        if value is None:
            return None
        members = [v.value for v in expr.values]
        try:
            hit = value in [m for m in members if m is not None]
        except TypeError:
            return None
        if not hit and None in members:
            return None  # SQL: x IN (..., NULL) is UNKNOWN when no match
        return (not hit) if expr.negated else hit
    if isinstance(expr, Between):
        value = _eval_output(expr.expr, group_values, agg_values)
        low = _eval_output(expr.low, group_values, agg_values)
        high = _eval_output(expr.high, group_values, agg_values)
        if value is None or low is None or high is None:
            return None
        try:
            hit = low <= value <= high
        except TypeError:
            return None
        return (not hit) if expr.negated else hit
    if isinstance(expr, IsNull):
        value = _eval_output(expr.expr, group_values, agg_values)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, BoolOp):
        unknown = False
        if expr.op == "AND":
            for term in expr.terms:
                result = _eval_output(term, group_values, agg_values)
                if result is False:
                    return False
                if result is None:
                    unknown = True
            return None if unknown else True
        for term in expr.terms:
            result = _eval_output(term, group_values, agg_values)
            if result is True:
                return True
            if result is None:
                unknown = True
        return None if unknown else False
    raise ScrubExecutionError(
        f"cannot evaluate {unparse(expr)} after aggregation; "
        "it is neither a group key nor an aggregate"
    )


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}
