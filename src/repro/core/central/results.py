"""Query results: rows per tumbling window, and whole-query result sets.

ScrubCentral emits one :class:`WindowResult` each time a tumbling window
closes; a :class:`ResultSet` accumulates them for the query's lifetime
and is what the query server hands back to the troubleshooter.
Completeness metadata (host drops, late events, sampling estimates with
error bounds) rides along with the rows, because Scrub deliberately
trades accuracy for host impact and the user must be able to see by how
much.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from ..approx.sampling_theory import ApproxEstimate

__all__ = ["ResultRow", "WindowCoverage", "WindowResult", "ResultSet"]


@dataclass(frozen=True)
class WindowCoverage:
    """Which targeted hosts actually fed one window — and why the rest
    did not.

    Numbers in a window are silently *partial* whenever a targeted host
    shipped nothing into it; per the degraded-telemetry lesson of the
    Facebook RCA work, that partiality must be flagged, not folded in.
    ``missing`` maps each absent host to its delivery state at window
    close: ``"silent"`` (connected, nothing matched or arrived),
    ``"disconnected"``, ``"lease-expired"``, ``"unreachable"`` (an
    install push failed), ``"never-seen"`` (recovered from the
    journal; the host has not re-attached), ``"stale"`` (silent past
    the fleet age-out threshold; membership no longer counts it live),
    or ``"quarantined"`` (the host's impact governor auto-uninstalled
    the query).

    Three further degradation sources are named explicitly so partial
    numbers are never silently partial:

    * ``shard_gaps`` — central-side loss: a ShardPool worker process
      died or hung while this window was open, so its in-flight slice
      of the window is gone; maps ``"shard-<i>"`` to the supervisor's
      respawn reason.
    * ``shed`` — host-side load shedding: per reporting host, how many
      matched events the impact governor dropped-with-count for this
      window (the estimator widens its bounds by the shed fraction).
    * ``quarantined`` — per host, the structured reason its governor
      auto-uninstalled this query (the host stops reporting for good).
    """

    expected: tuple[str, ...]
    reporting: tuple[str, ...]
    missing: dict[str, str]
    #: Central-side worker-respawn gaps: "shard-<i>" -> reason.
    shard_gaps: dict[str, str] = field(default_factory=dict)
    #: Host -> matched events the governor shed into this window.
    shed: dict[str, int] = field(default_factory=dict)
    #: Host -> structured quarantine reason (governor auto-uninstall).
    quarantined: dict[str, str] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        return bool(
            self.missing or self.shard_gaps or self.shed or self.quarantined
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "expected": list(self.expected),
            "reporting": list(self.reporting),
            "missing": dict(self.missing),
            "shard_gaps": dict(self.shard_gaps),
            "shed": dict(self.shed),
            "quarantined": dict(self.quarantined),
        }


@dataclass(frozen=True)
class ResultRow:
    """One output row: values in SELECT-list order."""

    values: tuple[Any, ...]

    def as_dict(self, columns: tuple[str, ...]) -> dict[str, Any]:
        return dict(zip(columns, self.values))

    def __getitem__(self, index: int) -> Any:
        return self.values[index]

    def __len__(self) -> int:
        return len(self.values)


@dataclass
class WindowResult:
    """All rows produced for one tumbling window of one query."""

    query_id: str
    window_start: float
    window_end: float
    columns: tuple[str, ...]
    rows: list[ResultRow]
    #: Per-column sampling estimates (global aggregates under sampling only);
    #: key is the output column name.
    estimates: dict[str, ApproxEstimate] = field(default_factory=dict)
    #: Events dropped on hosts (full buffers) attributed to this window's span.
    host_dropped: int = 0
    #: Matched events the hosts' impact governors shed (drop-with-count)
    #: attributed to this window's span.
    host_shed: int = 0
    #: Events that arrived after the window had closed and were discarded.
    late_events: int = 0
    #: Hosts that contributed at least one batch overlapping this window.
    contributing_hosts: int = 0
    #: Per-host delivery accounting (only when the engine was told the
    #: targeted host names); ``None`` means coverage was not tracked.
    coverage: Optional[WindowCoverage] = None

    @property
    def degraded(self) -> bool:
        """True when a targeted host is known to be absent from this window."""
        return self.coverage is not None and self.coverage.degraded

    def as_dicts(self) -> list[dict[str, Any]]:
        return [row.as_dict(self.columns) for row in self.rows]

    def column(self, name: str) -> list[Any]:
        try:
            index = self.columns.index(name)
        except ValueError:
            raise KeyError(
                f"no column {name!r}; columns are {list(self.columns)}"
            ) from None
        return [row[index] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[ResultRow]:
        return iter(self.rows)


@dataclass
class ResultSet:
    """Every window result a query produced, in window order."""

    query_id: str
    columns: tuple[str, ...]
    windows: list[WindowResult] = field(default_factory=list)
    #: Fleet-rollout status attached by scrubd when the query was
    #: submitted with a rollout policy: state, stage, installed hosts,
    #: and — after an auto-abort — the structured abort reason.  ``None``
    #: for queries installed everywhere at once.
    rollout: Optional[dict[str, Any]] = None
    #: Closed-loop sampling-controller status attached by the server for
    #: ``TARGET CI`` queries: controller state (``tracking`` /
    #: ``rate_limited`` / ``frozen``), current rates + rate version,
    #: target vs achieved relative CI, and — when the impact budget
    #: clamped the retune — the structured ``rate_limited`` reason with
    #: the widened achievable bound.  ``None`` for open-loop queries.
    sampling: Optional[dict[str, Any]] = None

    def add(self, window: WindowResult) -> None:
        self.windows.append(window)

    @property
    def rows(self) -> list[ResultRow]:
        return [row for window in self.windows for row in window.rows]

    def as_dicts(self) -> list[dict[str, Any]]:
        """Flatten to dicts, each annotated with its window start."""
        out = []
        for window in self.windows:
            for row in window.rows:
                record = row.as_dict(self.columns)
                record["_window"] = window.window_start
                out.append(record)
        return out

    def column(self, name: str) -> list[Any]:
        try:
            index = self.columns.index(name)
        except ValueError:
            raise KeyError(
                f"no column {name!r}; columns are {list(self.columns)}"
            ) from None
        return [row[index] for row in self.rows]

    @property
    def total_host_dropped(self) -> int:
        return sum(w.host_dropped for w in self.windows)

    @property
    def total_host_shed(self) -> int:
        return sum(w.host_shed for w in self.windows)

    @property
    def total_late_events(self) -> int:
        return sum(w.late_events for w in self.windows)

    @property
    def degraded_windows(self) -> list[WindowResult]:
        """Windows where at least one targeted host is known absent."""
        return [w for w in self.windows if w.degraded]

    def coverage_summary(self) -> dict[str, Any]:
        """Whole-query delivery health: how many windows were degraded and
        which hosts went missing (host -> windows missed)."""
        missed: dict[str, int] = {}
        gapped: dict[str, int] = {}
        shed: dict[str, int] = {}
        quarantined: dict[str, str] = {}
        for window in self.windows:
            if window.coverage is None:
                continue
            for host in window.coverage.missing:
                missed[host] = missed.get(host, 0) + 1
            for shard in window.coverage.shard_gaps:
                gapped[shard] = gapped.get(shard, 0) + 1
            for host, count in window.coverage.shed.items():
                shed[host] = shed.get(host, 0) + count
            quarantined.update(window.coverage.quarantined)
        return {
            "windows": len(self.windows),
            "degraded_windows": len(self.degraded_windows),
            "hosts_missed": missed,
            "shard_gaps": gapped,
            "hosts_shed": shed,
            "hosts_quarantined": quarantined,
        }

    def window_starting_at(self, start: float) -> Optional[WindowResult]:
        for window in self.windows:
            if window.window_start == start:
                return window
        return None

    def __len__(self) -> int:
        return len(self.windows)

    def __iter__(self) -> Iterator[WindowResult]:
        return iter(self.windows)

    def to_json(self, indent: int | None = None) -> str:
        """Serialize all windows to JSON (lists survive; estimates become
        objects carrying the bound plus its variance/sample telemetry)."""
        payload = {
            "query_id": self.query_id,
            "columns": list(self.columns),
            "rollout": self.rollout,
            "sampling": self.sampling,
            "windows": [
                {
                    "start": w.window_start,
                    "end": w.window_end,
                    "rows": [list(_jsonable(v) for v in r.values) for r in w.rows],
                    "estimates": {
                        name: {
                            "estimate": est.estimate,
                            "error_bound": est.error_bound,
                            "confidence": est.confidence,
                            "variance": est.variance,
                            "sampled_machines": est.sampled_machines,
                            "total_machines": est.total_machines,
                            "sample_events": est.sample_events,
                        }
                        for name, est in w.estimates.items()
                    },
                    "host_dropped": w.host_dropped,
                    "host_shed": w.host_shed,
                    "late_events": w.late_events,
                    "coverage": (
                        None if w.coverage is None else w.coverage.as_dict()
                    ),
                }
                for w in self.windows
            ],
        }
        return json.dumps(payload, indent=indent)

    def to_csv(self) -> str:
        """Flatten all windows to CSV with a leading ``window_start`` column."""
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(["window_start", *self.columns])
        for window in self.windows:
            for row in window.rows:
                writer.writerow(
                    [window.window_start]
                    + [_csv_cell(value) for value in row.values]
                )
        return out.getvalue()

    def pretty(self, max_rows: int = 20) -> str:
        """A small fixed-width rendering for examples and debugging."""
        lines = [f"query {self.query_id}: {len(self.windows)} window(s)"]
        if self.rollout is not None:
            stage = self.rollout.get("stage")
            state = self.rollout.get("state")
            installed = self.rollout.get("installed", [])
            lines.append(
                f"   rollout: {state} (stage {stage}, "
                f"{len(installed)} host(s) installed)"
            )
            abort = self.rollout.get("abort")
            if abort:
                lines.append(
                    f"   aborted: {abort.get('reason')} on {abort.get('host')}"
                    f" — {abort.get('detail')}"
                )
        if self.sampling is not None:
            target = self.sampling.get("target_relative_error")
            achieved = self.sampling.get("achieved_relative_error")
            lines.append(
                f"   sampling: {self.sampling.get('state')}"
                f" v{self.sampling.get('version')}"
                f" hosts={self.sampling.get('host_rate', 0.0):g}"
                f" events={self.sampling.get('event_rate', 0.0):g}"
                + (f" target ±{target * 100:g}%" if target is not None else "")
                + (
                    f" achieved ±{achieved * 100:.2g}%"
                    if achieved is not None and achieved == achieved
                    else ""
                )
            )
            limited = self.sampling.get("rate_limited")
            if limited:
                lines.append(
                    f"   rate-limited: {limited.get('reason')}"
                    f" — achievable ±{limited.get('achievable_relative_error', 0.0) * 100:.2g}%"
                )
        for window in self.windows:
            degraded = ""
            if window.degraded:
                assert window.coverage is not None
                parts = []
                if window.coverage.missing:
                    parts.append("missing " + ", ".join(
                        f"{host}[{state}]"
                        for host, state in sorted(window.coverage.missing.items())
                    ))
                if window.coverage.shard_gaps:
                    parts.append("gaps " + ", ".join(
                        sorted(window.coverage.shard_gaps)
                    ))
                if window.coverage.shed:
                    parts.append("shed " + ", ".join(
                        f"{host}:{count}"
                        for host, count in sorted(window.coverage.shed.items())
                    ))
                if window.coverage.quarantined:
                    parts.append("quarantined " + ", ".join(
                        sorted(window.coverage.quarantined)
                    ))
                degraded = "  (degraded: " + "; ".join(parts) + ")"
            lines.append(
                f"-- window [{window.window_start:g}, {window.window_end:g})"
                + (f"  (+{window.late_events} late)" if window.late_events else "")
                + degraded
            )
            header = " | ".join(self.columns)
            lines.append("   " + header)
            for row in window.rows[:max_rows]:
                lines.append(
                    "   " + " | ".join(_fmt(value) for value in row.values)
                )
            if len(window.rows) > max_rows:
                lines.append(f"   ... {len(window.rows) - max_rows} more row(s)")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return list(value)
    if isinstance(value, list):
        return [_jsonable(v) for v in value]
    if isinstance(value, float) and (value != value):  # NaN
        return None
    return value


def _csv_cell(value: Any) -> Any:
    if value is None:
        return ""
    if isinstance(value, (list, tuple)):
        # TOP-K results and list fields: a compact JSON cell.
        return json.dumps(_jsonable(value))
    return value
