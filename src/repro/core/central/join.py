"""Windowed equi-join on the request identifier.

Scrub restricts joins to equi-joins on the request id (paper Sections 1,
11): event types listed together in FROM are matched per request within
each tumbling window.  This is a hash join keyed by ``request_id``; the
join runs at ScrubCentral only — hosts never see each other's events
(contrast with baggage propagation, Section 8.4).

A joined row maps event type -> event.  When a request produced several
events of one type in the window (e.g. many ``exclusion`` events per
bid request), the join emits the cross product for that request, which
is the semantics SQL would give the underlying equi-join.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

from ..events import Event

__all__ = ["JoinedRow", "JoinBuffer"]

#: A joined row: event type name -> the event instance for this request.
JoinedRow = dict[str, Event]


class JoinBuffer:
    """Per-window buffer of events awaiting the window-close join."""

    def __init__(self, sources: tuple[str, ...]) -> None:
        if len(sources) < 2:
            raise ValueError("JoinBuffer requires at least two event types")
        self.sources = sources
        # event_type -> request_id -> events of that type for the request.
        self._by_type: dict[str, dict[int, list[Event]]] = {s: {} for s in sources}
        self.buffered = 0

    def add(self, event: Event) -> None:
        per_request = self._by_type[event.event_type]
        per_request.setdefault(event.request_id, []).append(event)
        self.buffered += 1

    def join(self) -> Iterator[JoinedRow]:
        """Produce joined rows for every request id present in *all* types.

        Iterates the smallest side's request ids — the classic hash-join
        probe order — so a type with few matches bounds the work.
        """
        smallest = min(self._by_type.values(), key=len)
        others = [
            (name, table)
            for name, table in self._by_type.items()
            if table is not smallest
        ]
        smallest_name = next(
            name for name, table in self._by_type.items() if table is smallest
        )
        for request_id, seed_events in smallest.items():
            groups: list[list[Event]] = [seed_events]
            names = [smallest_name]
            missing = False
            for name, table in others:
                matches = table.get(request_id)
                if not matches:
                    missing = True
                    break
                groups.append(matches)
                names.append(name)
            if missing:
                continue
            for combo in product(*groups):
                yield dict(zip(names, combo))

    def unmatched_count(self) -> int:
        """Events that will never join (their request id is absent from at
        least one other type) — reported for observability."""
        joined_requests = None
        for table in self._by_type.values():
            keys = set(table)
            joined_requests = keys if joined_requests is None else joined_requests & keys
        joined_requests = joined_requests or set()
        unmatched = 0
        for table in self._by_type.values():
            for request_id, events in table.items():
                if request_id not in joined_requests:
                    unmatched += len(events)
        return unmatched
