"""ScrubCentral: the dedicated centralized query execution facility.

All join, group-by and aggregation activity happens here, not on the
application hosts (paper Section 4).  The engine receives
:class:`~repro.core.agent.transport.EventBatch` objects from host
agents, assigns events to tumbling windows, joins on the request id,
groups, aggregates, and emits a :class:`WindowResult` when a window
closes.

Sampling estimation: for *global* aggregates (no GROUP BY) over a
single event type, the engine applies the multi-stage sampling
estimator of paper Eqs. 1–3, using the per-host per-window matched
counts (M_i) the agents report and the per-host value summaries it
accumulates during ingest.  Grouped aggregates are scaled by the
Horvitz–Thompson factor (hosts-planned / hosts-targeted) / event-rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from ..approx.sampling_theory import (
    ApproxEstimate,
    MachineSample,
    estimate_avg,
    estimate_count,
    estimate_sum,
)
from ..agent.transport import EventBatch, decode_full_batch
from ..query.ast import AggregateCall
from ..query.errors import QueryNotFoundError, ScrubExecutionError
from ..query.planner import CentralQueryObject
from .groupby import GroupByProcessor, WindowGroups
from .join import JoinBuffer
from .results import ResultRow, ResultSet, WindowCoverage, WindowResult
from .aggregates import make_state
from .window import SlidingWindowAssigner, TumblingWindowAssigner, WindowTracker

__all__ = ["CentralEngine", "CentralStats", "DEFAULT_GRACE_SECONDS"]

#: How long past a window's end the engine waits before closing it, to
#: absorb host flush delays.  Tuned to the agents' flush cadence.
DEFAULT_GRACE_SECONDS = 2.0


@dataclass
class CentralStats:
    """Whole-engine accounting (feeds the throughput experiments)."""

    batches_received: int = 0
    events_received: int = 0
    events_late: int = 0
    bytes_received: int = 0
    windows_emitted: int = 0
    rows_emitted: int = 0
    #: Matched events host governors shed (reported on batches).
    events_shed: int = 0
    #: (query, host) quarantine notices received from host governors.
    quarantines_reported: int = 0


@dataclass
class _HostWindowAcc:
    """Per (host, window) accumulation for the sampling estimator."""

    seen: int = 0  # M_i: matched events the host saw for this window
    # Parallel to the query's aggregate list: per-aggregate shipped-value
    # summaries (m_i, Σv, Σv²) — only filled for estimable aggregates.
    counts: list[int] = field(default_factory=list)
    totals: list[float] = field(default_factory=list)
    sum_sqs: list[float] = field(default_factory=list)


class _RunningQuery:
    """Per-query state inside the engine."""

    def __init__(
        self,
        spec: CentralQueryObject,
        planned_hosts: int,
        targeted_hosts: int,
        grace_seconds: float,
        targeted_names: tuple[str, ...] = (),
        delivery_state: Optional[Callable[[], Mapping[str, str]]] = None,
    ) -> None:
        self.spec = spec
        #: Host names chosen for this query; enables per-window coverage.
        self.targeted_names = targeted_names
        #: Live view of per-host delivery health (the daemon's lease
        #: table); consulted when a window closes to explain absences.
        self.delivery_state = delivery_state
        self.processor = GroupByProcessor(spec)
        if spec.slide_seconds is not None:
            assigner = SlidingWindowAssigner(
                spec.window_seconds, slide=spec.slide_seconds
            )
        else:
            assigner = TumblingWindowAssigner(spec.window_seconds)
        self.tracker = WindowTracker(assigner, grace_seconds)
        self.windows: dict[int, WindowGroups] = {}
        self.join_buffers: dict[int, JoinBuffer] = {}
        self.planned_hosts = planned_hosts
        self.targeted_hosts = targeted_hosts
        self.results = ResultSet(spec.query_id, spec.column_names)
        self.dropped_by_window: dict[int, int] = {}
        #: window -> host -> governor-shed counts attributed to it.
        self.shed_by_window: dict[int, dict[str, int]] = {}
        #: host -> structured governor quarantine reason (permanent: the
        #: host stays quarantined for every later window of this query).
        self.quarantined: dict[str, str] = {}
        self.hosts_by_window: dict[int, set[str]] = {}
        self.late_since_close = 0
        # Estimation applies to global aggregates over one source under
        # sampling; joins and grouped queries fall back to HT scaling.
        # A residual predicate would make the host-reported M_i counts
        # overcount the centrally-matched population, so estimation also
        # requires that all selection ran on the hosts.
        # TARGET CI queries are estimable even at full rates: estimation
        # is exact there (zero-width bounds), and running it from the
        # first window is what gives the sampling controller the variance
        # telemetry it inverts to pick cheaper rates.
        self.estimable = (
            (spec.sampling.is_sampled or spec.target_ci is not None)
            and not spec.group_by
            and len(spec.sources) == 1
            and spec.residual_predicate is None
            and spec.slide_seconds is None
            and not spec.host_aggregated
            and self.processor.is_aggregating
        )
        self.host_acc: dict[int, dict[str, _HostWindowAcc]] = {}
        self.estimable_aggs: tuple[int, ...] = ()
        if self.estimable:
            self.estimable_aggs = tuple(
                i
                for i, agg in enumerate(self.processor.agg_calls)
                if agg.func in ("COUNT", "SUM", "AVG")
            )

    @property
    def scale_factor(self) -> float:
        host_scale = (
            self.planned_hosts / self.targeted_hosts if self.targeted_hosts else 1.0
        )
        return host_scale / self.spec.sampling.event_rate

    def host_window_acc(self, window: int, host: str) -> _HostWindowAcc:
        per_host = self.host_acc.setdefault(window, {})
        acc = per_host.get(host)
        if acc is None:
            acc = _HostWindowAcc(
                counts=[0] * len(self.processor.agg_calls),
                totals=[0.0] * len(self.processor.agg_calls),
                sum_sqs=[0.0] * len(self.processor.agg_calls),
            )
            per_host[host] = acc
        return acc


class CentralEngine:
    """The ScrubCentral facility: register queries, ingest, advance time."""

    def __init__(
        self,
        grace_seconds: float = DEFAULT_GRACE_SECONDS,
        on_window: Optional[Callable[[WindowResult], None]] = None,
    ) -> None:
        self._grace = grace_seconds
        self._queries: dict[str, _RunningQuery] = {}
        self._on_window = on_window
        self.stats = CentralStats()

    # -- query lifecycle -----------------------------------------------------

    def register(
        self,
        spec: CentralQueryObject,
        planned_hosts: int = 1,
        targeted_hosts: int = 1,
        targeted_names: tuple[str, ...] = (),
        delivery_state: Optional[Callable[[], Mapping[str, str]]] = None,
    ) -> None:
        """Install the central query object for a new query.

        *planned_hosts* is the host population the target expression
        matched (N); *targeted_hosts* is how many were actually chosen
        after host sampling (n).  When *targeted_names* is given, every
        emitted window carries a :class:`WindowCoverage` naming the
        targeted hosts that fed it and the ones that went missing;
        *delivery_state* (a callable returning host -> state) lets the
        caller explain *why* a host is absent (lease expired,
        disconnected, ...) rather than defaulting to "silent".
        """
        if spec.query_id in self._queries:
            raise ScrubExecutionError(f"query {spec.query_id} already registered")
        if targeted_hosts > planned_hosts:
            raise ScrubExecutionError(
                f"targeted hosts ({targeted_hosts}) exceed planned ({planned_hosts})"
            )
        self._queries[spec.query_id] = _RunningQuery(
            spec,
            planned_hosts,
            targeted_hosts,
            self._grace,
            targeted_names=tuple(targeted_names),
            delivery_state=delivery_state,
        )

    def extend_targets(
        self,
        query_id: str,
        names: tuple[str, ...],
        planned_delta: int = 0,
    ) -> None:
        """Widen a running query's targeted host set — the central half of
        an incremental (canary) rollout, and of late-joining agents being
        pulled into an already-running query.

        Newly added names join ``targeted_names`` so subsequent windows
        expect them in coverage; *planned_delta* grows the planned
        population when the new hosts were not part of the original
        resolve (a late joiner), keeping the sampling scale factor
        honest.  Coverage state lives on the parent process even under
        :class:`~repro.core.central.pool.ShardPool`, so this is safe for
        the pooled engine too.
        """
        rq = self._queries.get(query_id)
        if rq is None:
            raise ScrubExecutionError(f"query {query_id} is not registered")
        fresh = tuple(n for n in names if n not in rq.targeted_names)
        rq.planned_hosts += planned_delta
        if not fresh:
            return
        rq.targeted_names = rq.targeted_names + fresh
        rq.targeted_hosts += len(fresh)
        if rq.targeted_hosts > rq.planned_hosts:
            rq.planned_hosts = rq.targeted_hosts

    def is_registered(self, query_id: str) -> bool:
        return query_id in self._queries

    def registered_queries(self) -> tuple[str, ...]:
        return tuple(self._queries)

    # -- ingest ---------------------------------------------------------------

    def ingest(self, batch: EventBatch) -> None:
        """Consume one host flush.

        Batch-oriented: events are segmented by window once, then each
        window's slice goes through one residual/group/aggregate pass
        (:meth:`WindowGroups.process_batch`).  Produces results identical
        to :meth:`ingest_reference`, the retained per-event path.
        """
        rq = self._queries.get(batch.query_id)
        if rq is None:
            # The query ended while the batch was in flight; drop silently —
            # this is the expected race, not an error.
            return
        stats = self.stats
        stats.batches_received += 1
        stats.events_received += len(batch.events)
        stats.bytes_received += batch.wire_size()

        self._ingest_metadata(rq, batch)
        if batch.events:
            for window, events in self._segment_events(rq, batch.events).items():
                self._process_window_events(rq, window, events)

    def ingest_frame(self, data: bytes | memoryview) -> None:
        """Consume one host flush still in its wire-frame form.

        The serial engine has no partition step to skip, so this is
        simply decode-then-:meth:`ingest`.  :class:`ShardPool` overrides
        it with the zero-copy scan-and-slice path; ``scrubd`` calls
        ``ingest_frame`` for every socket batch and gets whichever the
        engine provides (docs/SCALING.md §"Zero-copy shard ingest").
        """
        self.ingest(decode_full_batch(data))

    def ingest_reference(self, batch: EventBatch) -> None:
        """Consume one host flush via per-event dispatch.

        The pre-batching ingest path, kept verbatim as the reference
        semantics: the differential tests and ``benchmarks/run_bench.py``
        hold the batched and process-parallel paths to exactly this
        behavior (and the benchmark uses it as the serial baseline).
        """
        rq = self._queries.get(batch.query_id)
        if rq is None:
            return
        stats = self.stats
        stats.batches_received += 1
        stats.events_received += len(batch.events)
        # wire_size() is pinned byte-equal to len(encode_full_batch(batch));
        # the arithmetic form keeps a full encode off the ingest path.
        stats.bytes_received += batch.wire_size()

        self._ingest_metadata(rq, batch)

        is_join = rq.spec.is_join
        for event in batch.events:
            indices = rq.tracker.observe(event.timestamp)
            if not indices:
                stats.events_late += 1
                rq.late_since_close += 1
                continue
            for window in indices:
                rq.hosts_by_window.setdefault(window, set()).add(event.host)
                if is_join:
                    buffer = rq.join_buffers.get(window)
                    if buffer is None:
                        buffer = JoinBuffer(rq.spec.sources)
                        rq.join_buffers[window] = buffer
                    buffer.add(event)
                else:
                    state = rq.windows.get(window)
                    if state is None:
                        state = rq.processor.make_window_state()
                        rq.windows[window] = state
                    if state.process(event) and rq.estimable_aggs:
                        self._accumulate_host_values(rq, window, event)

    def _ingest_metadata(self, rq: _RunningQuery, batch: EventBatch) -> None:
        """Batch-level bookkeeping: M_i counts, drop attribution, partials."""
        # Per-window matched counts (M_i) from the agent.
        for (_event_type, window), count in batch.seen_counts.items():
            acc = rq.host_window_acc(window, batch.host)
            acc.seen += count
            rq.hosts_by_window.setdefault(window, set()).add(batch.host)

        if batch.dropped:
            open_windows = rq.tracker.open_windows
            window = open_windows[-1] if open_windows else 0
            rq.dropped_by_window[window] = (
                rq.dropped_by_window.get(window, 0) + batch.dropped
            )

        if batch.shed:
            # Same attribution rule as drops: the latest open window.
            open_windows = rq.tracker.open_windows
            window = open_windows[-1] if open_windows else 0
            per_host = rq.shed_by_window.setdefault(window, {})
            per_host[batch.host] = per_host.get(batch.host, 0) + batch.shed
            self.stats.events_shed += batch.shed

        if batch.quarantined:
            if batch.host not in rq.quarantined:
                self.stats.quarantines_reported += 1
            rq.quarantined[batch.host] = batch.quarantined

        for partial in batch.partials:
            self._ingest_partial(rq, batch.host, partial)

    def _segment_events(
        self, rq: _RunningQuery, events: list
    ) -> dict[int, list]:
        """Split a batch's events into per-window slices, counting lates.

        Tumbling windows take an inlined assignment fast path (one floor
        division per event); sliding windows go through the tracker's
        generic multi-assignment.  Late accounting matches the per-event
        path exactly: one late count per event all of whose windows have
        closed.
        """
        tracker = rq.tracker
        segments: dict[int, list] = {}
        assigner = tracker.assigner
        if type(assigner) is TumblingWindowAssigner:
            length = assigner.length
            closed_upto = tracker._closed_upto
            open_set = tracker._open
            late = 0
            for event in events:
                index = int(event.timestamp // length)
                if closed_upto is not None and index <= closed_upto:
                    late += 1
                    continue
                slot = segments.get(index)
                if slot is None:
                    slot = segments[index] = []
                    open_set.add(index)
                slot.append(event)
            if late:
                tracker.late_events += late
                self.stats.events_late += late
                rq.late_since_close += late
        else:
            stats = self.stats
            for event in events:
                indices = tracker.observe(event.timestamp)
                if not indices:
                    stats.events_late += 1
                    rq.late_since_close += 1
                    continue
                for window in indices:
                    segments.setdefault(window, []).append(event)
        return segments

    def _process_window_events(
        self, rq: _RunningQuery, window: int, events: list
    ) -> None:
        """Run one window's slice of a batch through join/group/aggregate."""
        hosts = rq.hosts_by_window.get(window)
        if hosts is None:
            hosts = rq.hosts_by_window[window] = set()
        for event in events:
            hosts.add(event.host)
        if rq.spec.is_join:
            buffer = rq.join_buffers.get(window)
            if buffer is None:
                buffer = JoinBuffer(rq.spec.sources)
                rq.join_buffers[window] = buffer
            for event in events:
                buffer.add(event)
            return
        state = rq.windows.get(window)
        if state is None:
            state = rq.processor.make_window_state()
            rq.windows[window] = state
        accepted = state.process_batch(events)
        if rq.estimable_aggs and accepted:
            self._accumulate_host_values_batch(rq, window, accepted)

    def _ingest_partial(self, rq: _RunningQuery, host: str, partial) -> None:
        """Merge one host's pre-aggregated (window, group) contribution."""
        start = rq.tracker.assigner.start_of(partial.window)
        if not rq.tracker.observe(start):
            self.stats.events_late += 1
            rq.late_since_close += 1
            return
        rq.hosts_by_window.setdefault(partial.window, set()).add(host)
        state = rq.windows.get(partial.window)
        if state is None:
            state = rq.processor.make_window_state()
            rq.windows[partial.window] = state
        states = state.groups.get(partial.group_key)
        if states is None:
            states = [make_state(agg) for agg in rq.processor.agg_calls]
            state.groups[partial.group_key] = states
        for aggregate_state, payload in zip(states, partial.values):
            aggregate_state.merge_partial(payload)

    def _accumulate_host_values(self, rq: _RunningQuery, window: int, event: Any) -> None:
        acc = rq.host_window_acc(window, event.host)
        arg_fns = rq.processor._agg_arg_fns
        for i in rq.estimable_aggs:
            agg = rq.processor.agg_calls[i]
            if agg.func == "COUNT":
                continue  # M_i alone estimates COUNT; no values needed
            value = arg_fns[i](event)
            if value is None:
                continue
            acc.counts[i] += 1
            acc.totals[i] += value
            acc.sum_sqs[i] += value * value

    def _accumulate_host_values_batch(
        self, rq: _RunningQuery, window: int, events: list
    ) -> None:
        """Batched :meth:`_accumulate_host_values`: one host-grouping pass,
        then per-host left folds in event order (float-identical to the
        per-event path, which also folds each host's values in order)."""
        by_host: dict[str, list] = {}
        for event in events:
            by_host.setdefault(event.host, []).append(event)
        arg_fns = rq.processor._agg_arg_fns
        agg_calls = rq.processor.agg_calls
        for host, host_events in by_host.items():
            acc = rq.host_window_acc(window, host)
            for i in rq.estimable_aggs:
                if agg_calls[i].func == "COUNT":
                    continue
                fn = arg_fns[i]
                count = acc.counts[i]
                total = acc.totals[i]
                sum_sq = acc.sum_sqs[i]
                for event in host_events:
                    value = fn(event)
                    if value is None:
                        continue
                    count += 1
                    total += value
                    sum_sq += value * value
                acc.counts[i] = count
                acc.totals[i] = total
                acc.sum_sqs[i] = sum_sq

    # -- window closing ------------------------------------------------------

    def advance(self, now: float) -> list[WindowResult]:
        """Close every window whose end + grace has passed; returns the
        emitted results (also appended to each query's ResultSet)."""
        emitted: list[WindowResult] = []
        for rq in self._queries.values():
            for window in rq.tracker.closable(now):
                emitted.append(self._close_window(rq, window))
        return emitted

    def finish(self, query_id: str, drain: bool = True) -> ResultSet:
        """End a query: close remaining windows, unregister, return results."""
        rq = self._queries.pop(query_id, None)
        if rq is None:
            raise QueryNotFoundError(query_id)
        if drain:
            for window in rq.tracker.close_all():
                self._close_window(rq, window)
        return rq.results

    def results_so_far(self, query_id: str) -> ResultSet:
        rq = self._queries.get(query_id)
        if rq is None:
            raise QueryNotFoundError(query_id)
        return rq.results

    def _close_window(self, rq: _RunningQuery, window: int) -> WindowResult:
        rq.tracker.close(window)
        # Join queries defer all row processing to window close.
        buffer = rq.join_buffers.pop(window, None)
        state = rq.windows.pop(window, None)
        if buffer is not None:
            if state is None:
                state = rq.processor.make_window_state()
            for row in buffer.join():
                state.process(row)
        if state is None:
            state = rq.processor.make_window_state()

        shed_hosts = rq.shed_by_window.pop(window, {})
        estimates: dict[str, ApproxEstimate] = {}
        overrides: dict[AggregateCall, Any] = {}
        if rq.estimable:
            estimates, overrides = self._estimate_window(rq, window, shed_hosts)
        rows = state.finalize(rq.scale_factor, overrides or None)

        reporting = rq.hosts_by_window.pop(window, set())
        shard_gaps = self._shard_gaps_for(rq, window)
        coverage: Optional[WindowCoverage] = None
        if rq.targeted_names or shard_gaps or shed_hosts or rq.quarantined:
            states = dict(rq.delivery_state()) if rq.delivery_state else {}
            missing: dict[str, str] = {}
            for host in rq.targeted_names:
                if host in reporting:
                    continue
                if host in rq.quarantined:
                    # The host's governor auto-uninstalled this query; it
                    # will never report again, whatever its link state.
                    missing[host] = "quarantined"
                    continue
                state_name = states.get(host, "silent")
                if state_name == "connected":
                    # Healthy link but nothing arrived for this window:
                    # matched nothing, or its flushes never made it.
                    state_name = "silent"
                missing[host] = state_name
            coverage = WindowCoverage(
                expected=rq.targeted_names,
                reporting=tuple(sorted(reporting)),
                missing=missing,
                shard_gaps=shard_gaps,
                shed=dict(shed_hosts),
                quarantined=dict(rq.quarantined),
            )

        result = WindowResult(
            query_id=rq.spec.query_id,
            window_start=rq.tracker.assigner.start_of(window),
            window_end=rq.tracker.assigner.end_of(window),
            columns=rq.spec.column_names,
            rows=rows,
            estimates=estimates,
            host_dropped=rq.dropped_by_window.pop(window, 0),
            host_shed=sum(shed_hosts.values()),
            late_events=rq.late_since_close,
            contributing_hosts=len(reporting),
            coverage=coverage,
        )
        rq.late_since_close = 0
        rq.host_acc.pop(window, None)
        rq.results.add(result)
        self.stats.windows_emitted += 1
        self.stats.rows_emitted += len(result.rows)
        if self._on_window is not None:
            self._on_window(result)
        return result

    def _shard_gaps_for(self, rq: _RunningQuery, window: int) -> dict[str, str]:
        """Central-side coverage gaps for one window; the serial engine
        has none — the ShardPool supervisor overrides this to report
        worker-respawn data loss."""
        del rq, window
        return {}

    def quarantines(self) -> dict[str, dict[str, str]]:
        """Governor quarantines reported by hosts, per running query:
        query_id -> host -> structured reason (for STATS surfaces)."""
        return {
            query_id: dict(rq.quarantined)
            for query_id, rq in self._queries.items()
            if rq.quarantined
        }

    def _estimate_window(
        self, rq: _RunningQuery, window: int, shed_hosts: Mapping[str, int] = {}
    ) -> tuple[dict[str, ApproxEstimate], dict[AggregateCall, Any]]:
        """Multi-stage sampling estimates for a global aggregate window."""
        per_host = rq.host_acc.get(window, {})
        n = rq.targeted_hosts
        big_n = rq.planned_hosts
        # Hosts that reported nothing still count as sampled machines with
        # M_i = 0 — omitting them would bias every estimate upward.
        silent_hosts = max(n - len(per_host), 0)

        estimates: dict[str, ApproxEstimate] = {}
        overrides: dict[AggregateCall, Any] = {}
        count_estimate: Optional[ApproxEstimate] = None

        match_counts = [acc.seen for acc in per_host.values()] + [0] * silent_hosts
        # COUNT first: AVG's ratio estimator reuses it.
        for i in rq.estimable_aggs:
            agg = rq.processor.agg_calls[i]
            if agg.func == "COUNT" or agg.func == "AVG":
                if count_estimate is None:
                    count_estimate = estimate_count(match_counts, big_n)
        for i in rq.estimable_aggs:
            agg = rq.processor.agg_calls[i]
            column = self._column_for_agg(rq, agg)
            if agg.func == "COUNT":
                assert count_estimate is not None
                estimates[column] = count_estimate
                overrides[agg] = count_estimate.estimate
            elif agg.func in ("SUM", "AVG"):
                samples = [
                    MachineSample(
                        machine_total=acc.seen,
                        count=acc.counts[i],
                        total=acc.totals[i],
                        sum_sq=acc.sum_sqs[i],
                    )
                    for acc in per_host.values()
                ] + [MachineSample(0, 0, 0.0, 0.0)] * silent_hosts
                sum_estimate = estimate_sum(samples, big_n)
                if agg.func == "SUM":
                    estimates[column] = sum_estimate
                    overrides[agg] = sum_estimate.estimate
                else:
                    assert count_estimate is not None
                    avg_estimate = estimate_avg(sum_estimate, count_estimate)
                    estimates[column] = avg_estimate
                    if math.isfinite(avg_estimate.estimate) and count_estimate.estimate:
                        overrides[agg] = avg_estimate.estimate

        # Governor shedding breaks the random-event-sample assumption of
        # Eqs. 1–3: during an over-budget interval every matched event is
        # dropped, so the retained values are time-biased.  Widen the
        # value-based bounds (SUM/AVG) by the shed fraction of the
        # matched population.  COUNT stays exact: shed events still
        # increment the host's M_i (they matched before they were shed).
        shed_total = sum(shed_hosts.values())
        if shed_total:
            seen_total = sum(match_counts)
            fraction = (
                1.0 if seen_total <= 0 else min(shed_total / seen_total, 1.0)
            )
            value_columns = {
                self._column_for_agg(rq, rq.processor.agg_calls[i])
                for i in rq.estimable_aggs
                if rq.processor.agg_calls[i].func in ("SUM", "AVG")
            }
            for column in value_columns & estimates.keys():
                estimates[column] = estimates[column].widened(fraction)
        return estimates, overrides

    @staticmethod
    def _column_for_agg(rq: _RunningQuery, agg: AggregateCall) -> str:
        """Output column whose SELECT expression contains *agg*; falls back
        to the aggregate's own text when it only appears nested."""
        from ..query.ast import unparse, walk_exprs

        for item, column in zip(rq.spec.select_items, rq.spec.column_names):
            if item.expr == agg:
                return column
        for item, column in zip(rq.spec.select_items, rq.spec.column_names):
            if any(node == agg for node in walk_exprs(item.expr)):
                return column
        return unparse(agg)
