"""Single-producer/single-consumer shared-memory ring for shard ingest.

The parallel central's last two hot-path copies are the per-shard
``bytes`` join and the pipe write (docs/SCALING.md §"Shared-memory ring
ingest").  This module removes both: the parent writes each shard's wire
bytes **once**, straight from the scanned frame buffer into a per-worker
:mod:`multiprocessing.shared_memory` segment, and ships only a tiny
descriptor of integers over the existing pipe.  The worker decodes
events directly from a ``memoryview`` of the ring — the payload bytes
cross the process boundary zero times.

Layout (one ring per worker, parent = producer, worker = consumer)::

    byte 0        8        16          24          32       64
    +--------+--------+------------+----------+---------+----
    |  head  |  tail  | generation | capacity | (spare) | data ...
    +--------+--------+------------+----------+---------+----
       u64      u64       u64          u64      zeroes    `capacity` bytes

``head`` and ``tail`` are **monotonic** byte cursors, never wrapped:
the physical write position is ``head % capacity`` and the occupied
span is ``head - tail``.  The producer alone writes ``head``, the
consumer alone writes ``tail``; each is a single aligned 8-byte store,
which the platforms we run on (x86-64, aarch64) make atomic — no locks,
no futexes, no torn reads.  Pipe-message FIFO ordering provides the
happens-before edge: the parent's ``memcpy`` into the ring completes
before the descriptor is sent, and the descriptor arrives before the
worker looks at the bytes.

A payload that would straddle the physical end of the ring is not
split: the producer *wastes the tail* (skips ``capacity - head %
capacity`` bytes) and writes at offset 0, so every payload is one
contiguous slice and the consumer never reassembles.  Because the
waste makes the head advance underivable from the payload length, the
descriptor carries the explicit post-allocation ``release`` cursor the
consumer must store into ``tail`` once it has decoded the bytes.

``generation`` tags the ring with the worker generation that owns it.
Every respawn gets a **fresh** ring (the old segment is unlinked), so a
replacement worker can never read a stale cursor or half-written
payload from its predecessor's life; :meth:`attach` refuses a
generation mismatch outright.
"""

from __future__ import annotations

import struct
from typing import Optional

__all__ = ["ShmRing", "RingUnavailable", "HEADER_SIZE", "DEFAULT_RING_CAPACITY"]

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory
    from multiprocessing import util as _mp_util
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    shared_memory = None  # type: ignore[assignment]
    _mp_util = None  # type: ignore[assignment]

#: Header bytes before the data region (cursor cache-line, padded).
HEADER_SIZE = 64

#: Default per-worker ring size: 1 MiB holds hundreds of typical host
#: flushes; ``scrubd --ring-kib`` and ``ShardPool(ring_capacity=...)``
#: override it.
DEFAULT_RING_CAPACITY = 1 << 20

_U64 = struct.Struct("<Q")

_OFF_HEAD = 0
_OFF_TAIL = 8
_OFF_GENERATION = 16
_OFF_CAPACITY = 24


class RingUnavailable(RuntimeError):
    """Shared-memory rings cannot be used here (platform or attach failure)."""


def shm_available() -> bool:
    """Whether :mod:`multiprocessing.shared_memory` imported at all."""
    return shared_memory is not None


class ShmRing:
    """One SPSC byte ring over a named ``SharedMemory`` segment.

    The producer side (parent) calls :meth:`try_reserve`, copies payload
    slices into :attr:`data`, and sends the returned ``(offset,
    release)`` pair in a descriptor.  The consumer side (worker) calls
    :meth:`payload` to view the bytes and :meth:`release` once it is
    done with them.  Neither side ever blocks on the other: a reserve
    that does not fit returns ``None`` and the caller spills to the
    pipe-bytes path.
    """

    __slots__ = (
        "shm", "capacity", "generation", "data", "high_water", "_head",
        "_owner", "__weakref__",  # register_after_fork holds a weakref
    )

    def __init__(self, shm, capacity: int, generation: int, owner: bool) -> None:
        self.shm = shm
        self.capacity = capacity
        self.generation = generation
        self._owner = owner
        #: Writable view of the data region; slice assignments into it are
        #: the single copy on the shm path.
        self.data = memoryview(shm.buf)[HEADER_SIZE : HEADER_SIZE + capacity]
        #: Producer-local high-water mark of occupied bytes.
        self.high_water = 0
        self._head = _U64.unpack_from(shm.buf, _OFF_HEAD)[0]
        if _mp_util is not None:
            # A forked worker inherits every ring the parent holds (its
            # own and its siblings') as copy-on-write objects it must
            # never touch; unmap them in the child right after the fork,
            # or their exported `data` views make the interpreter-exit
            # finalizer raise BufferError.  The child's own transport
            # ring is a separate attach(), unaffected by this close.
            _mp_util.register_after_fork(self, ShmRing.close)

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def create(cls, capacity: int, generation: int) -> "ShmRing":
        """Producer side: allocate a fresh zeroed ring."""
        if shared_memory is None:
            raise RingUnavailable("multiprocessing.shared_memory is unavailable")
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        try:
            shm = shared_memory.SharedMemory(create=True, size=HEADER_SIZE + capacity)
        except Exception as exc:  # noqa: BLE001 - e.g. /dev/shm missing or full
            raise RingUnavailable(f"{type(exc).__name__}: {exc}") from exc
        shm.buf[:HEADER_SIZE] = b"\0" * HEADER_SIZE
        _U64.pack_into(shm.buf, _OFF_GENERATION, generation)
        _U64.pack_into(shm.buf, _OFF_CAPACITY, capacity)
        return cls(shm, capacity, generation, owner=True)

    @classmethod
    def attach(cls, name: str, generation: int) -> "ShmRing":
        """Consumer side: map an existing ring by name.

        The worker processes share the parent's :mod:`resource_tracker`
        (its fd is inherited under both fork and spawn), so the attach's
        register of an already-registered name is a no-op and the
        parent's ``unlink()`` stays the single deregistration — the
        consumer must never unregister or unlink itself.
        """
        if shared_memory is None:
            raise RingUnavailable("multiprocessing.shared_memory is unavailable")
        try:
            shm = shared_memory.SharedMemory(name=name)
        except Exception as exc:  # noqa: BLE001
            raise RingUnavailable(f"{type(exc).__name__}: {exc}") from exc
        capacity = _U64.unpack_from(shm.buf, _OFF_CAPACITY)[0]
        ring_generation = _U64.unpack_from(shm.buf, _OFF_GENERATION)[0]
        if ring_generation != generation:
            shm.close()
            raise RingUnavailable(
                f"ring generation mismatch: segment has {ring_generation}, "
                f"worker expected {generation}"
            )
        return cls(shm, capacity, generation, owner=False)

    @property
    def name(self) -> str:
        return self.shm.name

    def close(self) -> None:
        """Unmap this side's view (consumer exit path)."""
        try:
            self.data.release()
        except BufferError:  # pragma: no cover - exported slice still alive
            pass
        try:
            self.shm.close()
        except (BufferError, OSError):  # pragma: no cover - defensive
            pass

    def destroy(self) -> None:
        """Unmap and, on the owning side, unlink the segment.

        The producer calls this only after the consumer process has been
        joined (or killed): the join is the drain — every descriptor the
        worker acked is accounted and no process still maps the segment,
        so the unlink reclaims it without leaking or racing a reader.
        """
        self.close()
        if self._owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            except OSError:  # pragma: no cover - defensive
                pass

    # -- producer side ---------------------------------------------------------

    def try_reserve(self, length: int) -> Optional[tuple[int, int]]:
        """Reserve ``length`` contiguous bytes; ``None`` means spill.

        Returns ``(offset, release)``: copy the payload to
        ``data[offset:offset+length]`` and put ``release`` in the
        descriptor — it is the head cursor after this allocation,
        including any wrap waste, and is what the consumer stores into
        ``tail`` when done.
        """
        if length <= 0 or length > self.capacity:
            return None
        head = self._head
        pos = head % self.capacity
        if pos + length > self.capacity:
            # Straddles the physical end: waste the tail, write at 0.
            allocation = (self.capacity - pos) + length
            offset = 0
        else:
            allocation = length
            offset = pos
        tail = _U64.unpack_from(self.shm.buf, _OFF_TAIL)[0]
        if (head - tail) + allocation > self.capacity:
            return None
        new_head = head + allocation
        self._head = new_head
        _U64.pack_into(self.shm.buf, _OFF_HEAD, new_head)
        depth = new_head - tail
        if depth > self.high_water:
            self.high_water = depth
        return offset, new_head

    def depth(self) -> int:
        """Producer view: bytes reserved but not yet released."""
        tail = _U64.unpack_from(self.shm.buf, _OFF_TAIL)[0]
        return self._head - tail

    def stats(self) -> dict[str, int]:
        return {
            "capacity": self.capacity,
            "depth": self.depth(),
            "high_water": self.high_water,
        }

    # -- consumer side ---------------------------------------------------------

    def payload(self, offset: int, length: int) -> memoryview:
        """View ``length`` bytes at ``offset`` — decode *before* releasing."""
        return self.data[offset : offset + length]

    def release(self, upto: int) -> None:
        """Return every byte up to the ``release`` cursor to the producer.

        Must be called for **every** descriptor, even ones whose query
        failed or vanished — skipping one would strand its bytes and jam
        the ring into permanent spill.
        """
        _U64.pack_into(self.shm.buf, _OFF_TAIL, upto)
