"""Tumbling-window bookkeeping for ScrubCentral.

Scrub supports tumbling windows (paper Section 3.2; sliding windows are
noted as an easy extension and are provided by ``SlidingWindowAssigner``
below).  Window assignment is by event timestamp; windows close when the
engine's watermark — driven by the caller's periodic ``advance(now)`` —
passes the window end plus a grace period that absorbs host flush
delays.  Events arriving after close are counted as late and dropped:
bounding central memory is part of keeping ScrubCentral cheap enough to
run as a small dedicated cluster (Section 8.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["WindowAssigner", "TumblingWindowAssigner", "SlidingWindowAssigner", "WindowTracker"]


@dataclass(frozen=True)
class WindowAssigner:
    """Maps an event timestamp to the window indices it belongs to."""

    length: float

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"window length must be positive, got {self.length}")

    def assign(self, timestamp: float) -> Iterable[int]:
        raise NotImplementedError

    def start_of(self, index: int) -> float:
        raise NotImplementedError

    def end_of(self, index: int) -> float:
        raise NotImplementedError


class TumblingWindowAssigner(WindowAssigner):
    """Non-overlapping fixed-length windows: index = floor(ts / length)."""

    def assign(self, timestamp: float) -> Iterable[int]:
        return (int(timestamp // self.length),)

    def start_of(self, index: int) -> float:
        return index * self.length

    def end_of(self, index: int) -> float:
        return (index + 1) * self.length


@dataclass(frozen=True)
class SlidingWindowAssigner(WindowAssigner):
    """Overlapping windows of ``length`` sliding by ``slide``.

    An event belongs to every window whose span covers its timestamp;
    window *i* covers [i·slide, i·slide + length).  The paper's "easy
    extension" — the rest of the pipeline is window-index agnostic.
    """

    slide: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.slide <= 0:
            raise ValueError(f"slide must be positive, got {self.slide}")
        if self.slide > self.length:
            raise ValueError("slide must not exceed the window length")

    def assign(self, timestamp: float) -> Iterable[int]:
        last = int(timestamp // self.slide)
        first = int((timestamp - self.length) // self.slide) + 1
        return range(max(first, 0) if timestamp >= 0 else first, last + 1)

    def start_of(self, index: int) -> float:
        return index * self.slide

    def end_of(self, index: int) -> float:
        return index * self.slide + self.length


class WindowTracker:
    """Tracks which window indices are open, closed, or not yet seen."""

    def __init__(self, assigner: WindowAssigner, grace_seconds: float = 0.0) -> None:
        if grace_seconds < 0:
            raise ValueError("grace must be non-negative")
        self.assigner = assigner
        self.grace = grace_seconds
        self._open: set[int] = set()
        self._closed_upto: int | None = None  # all indices <= this are closed
        self.late_events = 0

    @property
    def open_windows(self) -> tuple[int, ...]:
        return tuple(sorted(self._open))

    def observe(self, timestamp: float) -> tuple[int, ...]:
        """Register an event timestamp; returns the window indices it
        falls into, or an empty tuple (and a late count) if all its
        windows already closed."""
        indices = tuple(self.assigner.assign(timestamp))
        live = tuple(i for i in indices if not self._is_closed(i))
        if not live:
            self.late_events += 1
            return ()
        for index in live:
            self._open.add(index)
        return live

    def _is_closed(self, index: int) -> bool:
        return self._closed_upto is not None and index <= self._closed_upto

    def closable(self, now: float) -> tuple[int, ...]:
        """Open windows whose end + grace has passed, in order."""
        return tuple(
            sorted(i for i in self._open if self.assigner.end_of(i) + self.grace <= now)
        )

    def close(self, index: int) -> None:
        """Mark *index* closed.  Indices must be closed in ascending order
        relative to the high-water mark; skipped (never-seen) indices
        below it are closed implicitly."""
        self._open.discard(index)
        if self._closed_upto is None or index > self._closed_upto:
            self._closed_upto = index

    def close_all(self) -> tuple[int, ...]:
        """Close every open window (query span ended); returns them in order."""
        indices = tuple(sorted(self._open))
        for index in indices:
            self.close(index)
        return indices

    def merge(self, other: "WindowTracker") -> None:
        """Fold another tracker for the same query into this one: union of
        open windows, the further of the two high-water marks, summed late
        counts.  The shard-merge contract (docs/SCALING.md): merging then
        closing is equivalent to one tracker having observed both streams."""
        self._open |= other._open
        if other._closed_upto is not None and (
            self._closed_upto is None or other._closed_upto > self._closed_upto
        ):
            self._closed_upto = other._closed_upto
        self._open = {i for i in self._open if not self._is_closed(i)}
        self.late_events += other.late_events
