"""Scrub event model: typed schemas, events, registry, declarative API."""

from .decorators import schema_of, scrub_field, scrub_type
from .event import Event
from .fields import FieldDef, FieldType, coerce_value
from .registry import EventRegistry, UnknownEventTypeError
from .schema import HOST, REQUEST_ID, SYSTEM_FIELDS, TIMESTAMP, EventSchema

__all__ = [
    "Event",
    "EventRegistry",
    "EventSchema",
    "FieldDef",
    "FieldType",
    "HOST",
    "REQUEST_ID",
    "SYSTEM_FIELDS",
    "TIMESTAMP",
    "UnknownEventTypeError",
    "coerce_value",
    "schema_of",
    "scrub_field",
    "scrub_type",
]
