"""Event schemas (event type definitions).

The definition of an event takes two arguments (paper Section 3.1): the
event type — a string label — and a list of fields with their data
types.  In addition to the user-defined fields Scrub annotates every
event with two *system fields*: a unique request identifier and a
timestamp.  The metadata is bounded and is kept to the minimum necessary
to support equi-joins (on the request id) and windowing (on the
timestamp).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from .fields import FieldDef, FieldType

__all__ = ["EventSchema", "SYSTEM_FIELDS", "REQUEST_ID", "TIMESTAMP", "HOST"]

#: Name of the system field holding the unique request identifier.
REQUEST_ID = "request_id"
#: Name of the system field holding the event timestamp (seconds).
TIMESTAMP = "timestamp"
#: Name of the system field holding the emitting host (filled by the agent;
#: exposed so central results can attribute rows, but queries should prefer
#: the @[...] target construct for host restriction — see paper Section 3.2).
HOST = "host"

SYSTEM_FIELDS: dict[str, FieldType] = {
    REQUEST_ID: FieldType.LONG,
    TIMESTAMP: FieldType.DOUBLE,
    HOST: FieldType.STRING,
}


class EventSchema:
    """An event type: a label plus an ordered list of typed fields.

    Field specs may be given as :class:`FieldDef` objects, ``(name, type)``
    pairs, or a mapping ``{name: type}`` where ``type`` is a
    :class:`FieldType` or a type-name string (``"long"``, ``"list<string>"``,
    ...).
    """

    __slots__ = ("name", "fields", "_order", "doc")

    def __init__(
        self,
        name: str,
        fields: Iterable[FieldDef | tuple[str, Any]] | Mapping[str, Any],
        doc: str = "",
    ) -> None:
        if not name or not all(c.isalnum() or c == "_" for c in name):
            raise ValueError(f"invalid event type name: {name!r}")
        self.name = name
        self.doc = doc
        defs: list[FieldDef] = []
        if isinstance(fields, Mapping):
            items: Iterable[Any] = fields.items()
        else:
            items = fields
        for item in items:
            if isinstance(item, FieldDef):
                fdef = item
            else:
                fname, ftype = item
                if isinstance(ftype, str):
                    ftype = FieldType.from_string(ftype)
                fdef = FieldDef(fname, ftype)
            defs.append(fdef)
        names = [f.name for f in defs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate field(s) in event {name!r}: {dupes}")
        clashes = sorted(set(names) & set(SYSTEM_FIELDS))
        if clashes:
            raise ValueError(
                f"event {name!r} redefines system field(s): {clashes}"
            )
        self.fields: dict[str, FieldDef] = {f.name: f for f in defs}
        self._order: tuple[str, ...] = tuple(names)

    # -- introspection ----------------------------------------------------

    @property
    def field_names(self) -> tuple[str, ...]:
        """User-defined field names in declaration order."""
        return self._order

    @property
    def all_field_names(self) -> tuple[str, ...]:
        """User fields plus system fields."""
        return self._order + tuple(SYSTEM_FIELDS)

    def has_field(self, name: str) -> bool:
        """True for user fields, system fields, and dotted object paths."""
        if name in self.fields or name in SYSTEM_FIELDS:
            return True
        if "." in name:
            root = name.split(".", 1)[0]
            fdef = self.fields.get(root)
            return fdef is not None and fdef.ftype in (
                FieldType.OBJECT,
                FieldType.LIST_OBJECT,
            )
        return False

    def field_type(self, name: str) -> FieldType:
        if name in SYSTEM_FIELDS:
            return SYSTEM_FIELDS[name]
        if "." in name:
            root = name.split(".", 1)[0]
            fdef = self.fields.get(root)
            if fdef is not None and fdef.ftype is FieldType.OBJECT:
                # Nested object members are dynamically typed.
                return FieldType.OBJECT
        try:
            return self.fields[name].ftype
        except KeyError:
            raise KeyError(f"event {self.name!r} has no field {name!r}") from None

    def __iter__(self) -> Iterator[FieldDef]:
        return iter(self.fields.values())

    def __len__(self) -> int:
        return len(self.fields)

    def __repr__(self) -> str:
        fieldspec = ", ".join(f"{f.name}:{f.ftype.value}" for f in self)
        return f"EventSchema({self.name!r}, [{fieldspec}])"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventSchema):
            return NotImplemented
        return self.name == other.name and [
            (f.name, f.ftype) for f in self
        ] == [(f.name, f.ftype) for f in other]

    def __hash__(self) -> int:
        return hash((self.name, tuple((f.name, f.ftype) for f in self)))

    # -- validation --------------------------------------------------------

    def coerce_payload(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Validate and normalise a payload dict against this schema.

        Unknown keys raise; missing fields are left absent (treated as
        NULL by the query layer).
        """
        out: dict[str, Any] = {}
        for key, value in payload.items():
            fdef = self.fields.get(key)
            if fdef is None:
                raise KeyError(f"event {self.name!r} has no field {key!r}")
            out[key] = fdef.coerce(value)
        return out
