"""Declarative event definition, mirroring the paper's annotation API.

Paper Figure 1 declares event types with Java annotations::

    @ScrubType("bid")
    public class ScrubBid {
        @ScrubField("exchange_id") private final long exchange_id;
        ...
    }

The Python equivalent uses a class decorator plus typed field
descriptors::

    @scrub_type("bid", registry)
    class ScrubBid:
        exchange_id = scrub_field("long")
        city = scrub_field("string")
        country = scrub_field("string")
        bid_price = scrub_field("double")
        campaign_id = scrub_field("long")

Instances of the decorated class behave as plain value objects; the
agent's ``log()`` accepts either such instances or raw dicts.
"""

from __future__ import annotations

from typing import Any

from .fields import FieldDef, FieldType
from .registry import EventRegistry
from .schema import EventSchema

__all__ = ["scrub_type", "scrub_field", "schema_of"]

_SCHEMA_ATTR = "__scrub_schema__"


class scrub_field:
    """Field descriptor used inside a ``@scrub_type`` class body.

    ``name`` defaults to the attribute name; pass it explicitly to mirror
    the paper's ``@ScrubField("exchange_id")`` form when the wire name
    differs from the attribute name.
    """

    _counter = 0

    def __init__(self, ftype: FieldType | str, name: str | None = None, doc: str = "") -> None:
        if isinstance(ftype, str):
            ftype = FieldType.from_string(ftype)
        self.ftype = ftype
        self.name = name
        self.doc = doc
        # Preserve declaration order even on Pythons where class dicts
        # are reordered by tooling.
        scrub_field._counter += 1
        self._order = scrub_field._counter
        self._attr: str | None = None

    def __set_name__(self, owner: type, attr: str) -> None:
        self._attr = attr
        if self.name is None:
            self.name = attr

    def __get__(self, obj: Any, objtype: type | None = None) -> Any:
        if obj is None:
            return self
        return obj.__dict__.get(self.name)

    def __set__(self, obj: Any, value: Any) -> None:
        fdef = FieldDef(self.name or "", self.ftype, self.doc)
        obj.__dict__[self.name] = fdef.coerce(value)


def scrub_type(name: str, registry: EventRegistry | None = None):
    """Class decorator declaring a Scrub event type (paper Fig. 1).

    Builds an :class:`EventSchema` from the class's :class:`scrub_field`
    descriptors, optionally registers it, and injects an ``__init__``
    accepting the fields as keyword arguments plus a ``payload()`` method
    producing the dict the agent ships.
    """

    def decorate(cls: type) -> type:
        descriptors = sorted(
            (
                d
                for d in vars(cls).values()
                if isinstance(d, scrub_field)
            ),
            key=lambda d: d._order,
        )
        if not descriptors:
            raise ValueError(f"@scrub_type class {cls.__name__} declares no scrub_field")
        schema = EventSchema(
            name,
            [FieldDef(d.name or "", d.ftype, d.doc) for d in descriptors],
            doc=(cls.__doc__ or "").strip(),
        )
        if registry is not None:
            registry.register(schema)
        setattr(cls, _SCHEMA_ATTR, schema)

        field_names = schema.field_names

        def __init__(self: Any, **kwargs: Any) -> None:
            unknown = set(kwargs) - set(field_names)
            if unknown:
                raise TypeError(
                    f"{cls.__name__} got unexpected field(s): {sorted(unknown)}"
                )
            for fname in field_names:
                if fname in kwargs:
                    setattr(self, fname, kwargs[fname])

        def payload(self: Any) -> dict[str, Any]:
            return {
                fname: self.__dict__[fname]
                for fname in field_names
                if fname in self.__dict__
            }

        def __repr__(self: Any) -> str:
            body = ", ".join(f"{k}={v!r}" for k, v in payload(self).items())
            return f"{cls.__name__}({body})"

        if "__init__" not in vars(cls):
            cls.__init__ = __init__  # type: ignore[method-assign]
        cls.payload = payload  # type: ignore[attr-defined]
        if "__repr__" not in vars(cls):
            cls.__repr__ = __repr__  # type: ignore[method-assign]
        return cls

    return decorate


def schema_of(obj_or_cls: Any) -> EventSchema:
    """Return the :class:`EventSchema` attached by ``@scrub_type``."""
    schema = getattr(obj_or_cls, _SCHEMA_ATTR, None)
    if schema is None:
        raise TypeError(f"{obj_or_cls!r} is not a @scrub_type class/instance")
    return schema
