"""Event type registry.

The query server validates every query against the set of event types
the application declared (paper Section 4: "the server parses and
validates the query").  The registry is that set.  Applications register
schemas at startup — statically, mirroring the paper's decision to avoid
dynamic instrumentation (Section 5/6): the set of instrumentable points
is fixed when the application is built.
"""

from __future__ import annotations

from typing import Iterator

from .schema import EventSchema

__all__ = ["EventRegistry", "UnknownEventTypeError"]


class UnknownEventTypeError(KeyError):
    """Raised when a query references an event type never declared."""

    def __init__(self, name: str, known: tuple[str, ...]) -> None:
        super().__init__(name)
        self.name = name
        self.known = known

    def __str__(self) -> str:
        return f"unknown event type {self.name!r}; declared types: {list(self.known)}"


class EventRegistry:
    """Name -> :class:`EventSchema` mapping with conflict detection."""

    def __init__(self) -> None:
        self._schemas: dict[str, EventSchema] = {}

    def register(self, schema: EventSchema) -> EventSchema:
        """Register a schema.

        Re-registering an identical schema is a no-op (idempotent, so
        modules can be imported repeatedly); registering a *different*
        schema under an existing name raises ``ValueError``.
        """
        existing = self._schemas.get(schema.name)
        if existing is not None:
            if existing == schema:
                return existing
            raise ValueError(
                f"event type {schema.name!r} already registered with a different shape"
            )
        self._schemas[schema.name] = schema
        return schema

    def define(self, name: str, fields, doc: str = "") -> EventSchema:
        """Convenience: build an :class:`EventSchema` and register it."""
        return self.register(EventSchema(name, fields, doc=doc))

    def get(self, name: str) -> EventSchema:
        try:
            return self._schemas[name]
        except KeyError:
            raise UnknownEventTypeError(name, tuple(self._schemas)) from None

    def __contains__(self, name: str) -> bool:
        return name in self._schemas

    def __iter__(self) -> Iterator[EventSchema]:
        return iter(self._schemas.values())

    def __len__(self) -> int:
        return len(self._schemas)

    def names(self) -> tuple[str, ...]:
        return tuple(self._schemas)

    def copy(self) -> "EventRegistry":
        clone = EventRegistry()
        clone._schemas = dict(self._schemas)
        return clone
