"""Wire encodings for events.

Two encodings are provided:

* **JSON-lines** — human-inspectable; used by the logging baseline so its
  storage accounting reflects what a production log file would hold.
* **Compact binary** — a length-prefixed struct encoding used by the
  Scrub host→central transport; about 2–4x denser than JSON for typical
  payloads, matching the paper's concern with the bytes hosts must ship.

Both encodings round-trip :class:`~repro.core.events.event.Event`
losslessly for all supported field types.
"""

from __future__ import annotations

import json
import struct
from typing import Any

from .event import Event

__all__ = [
    "encode_json",
    "decode_json",
    "encode_binary",
    "encode_binary_into",
    "decode_binary",
    "encode_batch",
    "encode_batch_into",
    "decode_batch",
    "decode_event_frames",
    "scan_batch",
    "scan_batch_shards",
    "encode_value",
    "decode_value",
    "encoded_size_value",
    "encoded_size_event",
    "encoded_size_batch",
]

# -- JSON lines ---------------------------------------------------------------


def encode_json(event: Event) -> bytes:
    """Encode one event as a single JSON line (newline-terminated)."""
    record = {
        "type": event.event_type,
        "rid": event.request_id,
        "ts": event.timestamp,
        "host": event.host,
        "data": event.payload,
    }
    return (json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n").encode()


def decode_json(line: bytes | str) -> Event:
    record = json.loads(line)
    return Event(
        record["type"],
        record["data"],
        record["rid"],
        record["ts"],
        record.get("host", ""),
    )


# -- compact binary -----------------------------------------------------------
#
# value encoding: 1 tag byte + body
#   N: null        B: bool (1 byte)     I: int64      D: float64
#   S: str (u32 len + utf8)             L: list (u32 count + values)
#   M: map  (u32 count + (str, value) pairs)

_TAG_NULL = b"N"
_TAG_BOOL = b"B"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_LIST = b"L"
_TAG_MAP = b"M"

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_HEADER = struct.Struct("<qdI")  # request_id, timestamp, payload field count


def _truncated(offset: int, need: int, have: int) -> ValueError:
    """The structured decode error for a torn buffer.

    Raised identically by the decoders and the frame scanner — the two
    walk the same byte layout with the same bounds checks, so a torn or
    corrupted tail fails at the same offset with the same message from
    either path (``tests/core/test_encoding.py`` pins this).
    """
    return ValueError(
        f"truncated event encoding at offset {offset}: "
        f"need {need} byte(s), have {have}"
    )


def _write_value(out: bytearray, value: Any) -> None:
    if value is None:
        out += _TAG_NULL
    elif isinstance(value, bool):
        out += _TAG_BOOL
        out.append(1 if value else 0)
    elif isinstance(value, int):
        out += _TAG_INT
        out += _I64.pack(value)
    elif isinstance(value, float):
        out += _TAG_FLOAT
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode()
        out += _TAG_STR
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, (list, tuple)):
        out += _TAG_LIST
        out += _U32.pack(len(value))
        for item in value:
            _write_value(out, item)
    elif isinstance(value, dict):
        out += _TAG_MAP
        out += _U32.pack(len(value))
        for key, item in value.items():
            _write_str(out, str(key))
            _write_value(out, item)
    else:
        raise TypeError(f"unencodable value of type {type(value).__name__}: {value!r}")


def _write_str(out: bytearray, text: str) -> None:
    raw = text.encode()
    out += _U32.pack(len(raw))
    out += raw


def _read_str(buf: memoryview, pos: int) -> tuple[str, int]:
    if pos + 4 > len(buf):
        raise _truncated(pos, 4, len(buf) - pos)
    (length,) = _U32.unpack_from(buf, pos)
    pos += 4
    if pos + length > len(buf):
        raise _truncated(pos, length, len(buf) - pos)
    return bytes(buf[pos : pos + length]).decode(), pos + length


def _skip_str(buf: memoryview, pos: int) -> int:
    """Advance past one encoded string without decoding it.

    Bounds checks (and their error messages) mirror :func:`_read_str`
    exactly, so the scanner and the decoder reject a torn buffer with
    the same structured error.
    """
    if pos + 4 > len(buf):
        raise _truncated(pos, 4, len(buf) - pos)
    (length,) = _U32.unpack_from(buf, pos)
    pos += 4
    if pos + length > len(buf):
        raise _truncated(pos, length, len(buf) - pos)
    return pos + length


def _read_value(buf: memoryview, pos: int) -> tuple[Any, int]:
    if pos >= len(buf):
        raise _truncated(pos, 1, 0)
    tag = bytes(buf[pos : pos + 1])
    pos += 1
    if tag == _TAG_NULL:
        return None, pos
    if tag == _TAG_BOOL:
        if pos >= len(buf):
            raise _truncated(pos, 1, 0)
        return buf[pos] != 0, pos + 1
    if tag == _TAG_INT:
        if pos + 8 > len(buf):
            raise _truncated(pos, 8, len(buf) - pos)
        (v,) = _I64.unpack_from(buf, pos)
        return v, pos + 8
    if tag == _TAG_FLOAT:
        if pos + 8 > len(buf):
            raise _truncated(pos, 8, len(buf) - pos)
        (v,) = _F64.unpack_from(buf, pos)
        return v, pos + 8
    if tag == _TAG_STR:
        return _read_str(buf, pos)
    if tag == _TAG_LIST:
        if pos + 4 > len(buf):
            raise _truncated(pos, 4, len(buf) - pos)
        (count,) = _U32.unpack_from(buf, pos)
        pos += 4
        items = []
        for _ in range(count):
            item, pos = _read_value(buf, pos)
            items.append(item)
        return items, pos
    if tag == _TAG_MAP:
        if pos + 4 > len(buf):
            raise _truncated(pos, 4, len(buf) - pos)
        (count,) = _U32.unpack_from(buf, pos)
        pos += 4
        mapping: dict[str, Any] = {}
        for _ in range(count):
            key, pos = _read_str(buf, pos)
            mapping[key], pos = _read_value(buf, pos)
        return mapping, pos
    raise ValueError(f"corrupt event encoding: unknown tag {tag!r} at offset {pos - 1}")


def _skip_value(buf: memoryview, pos: int) -> int:
    """Advance past one tagged value without materializing it.

    The frame scanner's building block: the structure (and every bounds
    check and error message) mirrors :func:`_read_value`, minus the
    allocations — no ints, floats, strings, lists or dicts are built.
    """
    if pos >= len(buf):
        raise _truncated(pos, 1, 0)
    tag = bytes(buf[pos : pos + 1])
    pos += 1
    if tag == _TAG_NULL:
        return pos
    if tag == _TAG_BOOL:
        if pos >= len(buf):
            raise _truncated(pos, 1, 0)
        return pos + 1
    if tag == _TAG_INT or tag == _TAG_FLOAT:
        if pos + 8 > len(buf):
            raise _truncated(pos, 8, len(buf) - pos)
        return pos + 8
    if tag == _TAG_STR:
        return _skip_str(buf, pos)
    if tag == _TAG_LIST:
        if pos + 4 > len(buf):
            raise _truncated(pos, 4, len(buf) - pos)
        (count,) = _U32.unpack_from(buf, pos)
        pos += 4
        for _ in range(count):
            pos = _skip_value(buf, pos)
        return pos
    if tag == _TAG_MAP:
        if pos + 4 > len(buf):
            raise _truncated(pos, 4, len(buf) - pos)
        (count,) = _U32.unpack_from(buf, pos)
        pos += 4
        for _ in range(count):
            pos = _skip_str(buf, pos)
            pos = _skip_value(buf, pos)
        return pos
    raise ValueError(f"corrupt event encoding: unknown tag {tag!r} at offset {pos - 1}")


def encode_value(value: Any) -> bytes:
    """Encode one plain value (None/bool/int/float/str/list/dict) standalone.

    The building block the live wire protocol uses for control-message
    payloads; shares the tagged encoding of event payload fields.
    """
    out = bytearray()
    _write_value(out, value)
    return bytes(out)


def decode_value(data: bytes | memoryview) -> Any:
    value, pos = _read_value(memoryview(data), 0)
    if pos != len(data):
        raise ValueError(f"trailing garbage after value at offset {pos}")
    return value


def encode_binary_into(out: bytearray, event: Event) -> None:
    """Append one event's compact binary framing to *out*.

    The zero-alloc building block of the flush path: a whole batch is
    written into one reusable buffer, with no per-event ``bytes``.
    """
    _write_str(out, event.event_type)
    _write_str(out, event.host)
    out += _HEADER.pack(event.request_id, event.timestamp, len(event.payload))
    for key, value in event.payload.items():
        _write_str(out, key)
        _write_value(out, value)


def encode_binary(event: Event) -> bytes:
    """Encode one event in the compact binary framing."""
    out = bytearray()
    encode_binary_into(out, event)
    return bytes(out)


def decode_binary(data: bytes | memoryview) -> Event:
    event, pos = _decode_binary_at(memoryview(data), 0)
    if pos != len(data):
        raise ValueError(f"trailing garbage after event at offset {pos}")
    return event


def _decode_binary_at(buf: memoryview, pos: int) -> tuple[Event, int]:
    event_type, pos = _read_str(buf, pos)
    host, pos = _read_str(buf, pos)
    if pos + _HEADER.size > len(buf):
        raise _truncated(pos, _HEADER.size, len(buf) - pos)
    request_id, timestamp, nfields = _HEADER.unpack_from(buf, pos)
    pos += _HEADER.size
    payload: dict[str, Any] = {}
    for _ in range(nfields):
        key, pos = _read_str(buf, pos)
        payload[key], pos = _read_value(buf, pos)
    return Event(event_type, payload, request_id, timestamp, host), pos


# -- arithmetic sizes ---------------------------------------------------------
#
# Exact mirrors of the writers above: ``encoded_size_x(v)`` equals
# ``len(encode_x(v))`` for every encodable value, without materializing
# bytes.  The ingest hot path charges wire bytes per batch; doing a full
# encode just to measure it dominated the per-batch overhead.


def encoded_size_value(value: Any) -> int:
    """Exactly ``len(encode_value(value))``, computed arithmetically."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 2
    if isinstance(value, (int, float)):
        return 9
    if isinstance(value, str):
        return 5 + _utf8_len(value)
    if isinstance(value, (list, tuple)):
        return 5 + sum(encoded_size_value(item) for item in value)
    if isinstance(value, dict):
        return 5 + sum(
            4 + _utf8_len(str(key)) + encoded_size_value(item)
            for key, item in value.items()
        )
    raise TypeError(f"unencodable value of type {type(value).__name__}: {value!r}")


def _utf8_len(text: str) -> int:
    return len(text) if text.isascii() else len(text.encode())


def _str_size(text: str) -> int:
    return 4 + _utf8_len(text)


def encoded_size_event(event: Event) -> int:
    """Exactly ``len(encode_binary(event))``, computed arithmetically."""
    size = _str_size(event.event_type) + _str_size(event.host) + _HEADER.size
    for key, value in event.payload.items():
        size += _str_size(key) + encoded_size_value(value)
    return size


def encoded_size_batch(events: list[Event]) -> int:
    """Exactly ``len(encode_batch(events))``, computed arithmetically."""
    return 4 + sum(encoded_size_event(event) for event in events)


def encode_batch_into(out: bytearray, events: list[Event]) -> None:
    """Append a batch (u32 count prefix + concatenated events) to *out*."""
    out += _U32.pack(len(events))
    for event in events:
        encode_binary_into(out, event)


def encode_batch(events: list[Event]) -> bytes:
    """Encode a batch of events (u32 count prefix + concatenated events)."""
    out = bytearray()
    encode_batch_into(out, events)
    return bytes(out)


def decode_batch(data: bytes | memoryview) -> list[Event]:
    buf = memoryview(data)
    if len(buf) < 4:
        raise _truncated(0, 4, len(buf))
    (count,) = _U32.unpack_from(buf, 0)
    pos = 4
    events: list[Event] = []
    for _ in range(count):
        event, pos = _decode_binary_at(buf, pos)
        events.append(event)
    if pos != len(data):
        raise ValueError(f"trailing garbage after batch at offset {pos}")
    return events


def decode_event_frames(data: bytes | memoryview, count: int) -> list[Event]:
    """Decode exactly *count* concatenated event frames (no count prefix).

    The shard-worker half of the zero-copy ingest path: the parent
    splices per-shard event frames out of a batch buffer with
    :func:`scan_batch_shards` and ships the raw bytes; the worker turns
    them back into :class:`Event` objects here.  Rejects leftover bytes
    — a mis-sliced shard must fail loudly, never drop events.
    """
    buf = memoryview(data)
    pos = 0
    events: list[Event] = []
    for _ in range(count):
        event, pos = _decode_binary_at(buf, pos)
        events.append(event)
    if pos != len(buf):
        raise ValueError(f"trailing garbage after batch at offset {pos}")
    return events


# -- frame scanning ------------------------------------------------------------
#
# The zero-copy shard-ingest entry points (docs/SCALING.md §"Zero-copy
# shard ingest").  A scan walks a length-prefixed batch reading only each
# event's two leading strings (type skipped, host interned) and the fixed
# ``<qdI`` header — request id for sharding, timestamp for window
# segmentation — and records byte extents instead of building events.
# Per-shard ingest then ships slices of the original buffer; only the
# worker that owns a shard ever decodes its payloads.


def scan_batch(
    buf: bytes | memoryview, pos: int = 0
) -> tuple[list[tuple[int, float, str, int, int]], int]:
    """Index a length-prefixed batch without decoding its events.

    Returns ``(frames, end)`` where each frame is
    ``(request_id, timestamp, host, start, stop)`` — the header fields
    the central needs for sharding/windowing/coverage plus the event's
    byte extent ``buf[start:stop]`` — and *end* is the offset just past
    the batch (callers embedding a batch mid-buffer continue from it).

    Walks every byte the decoder would: a torn or corrupted buffer
    raises the same structured error at the same offset as
    :func:`decode_batch`; nothing is ever silently dropped or mis-sliced.
    """
    mv = buf if isinstance(buf, memoryview) else memoryview(buf)
    size = len(mv)
    if pos + 4 > size:
        raise _truncated(pos, 4, size - pos)
    (count,) = _U32.unpack_from(mv, pos)
    pos += 4
    frames: list[tuple[int, float, str, int, int]] = []
    # One host string decode per distinct byte pattern: a flush carries
    # one host's events, so this is almost always a single decode.
    hosts: dict[bytes, str] = {}
    header_size = _HEADER.size
    for _ in range(count):
        start = pos
        pos = _skip_str(mv, pos)  # event_type: never materialized here
        if pos + 4 > size:
            raise _truncated(pos, 4, size - pos)
        (hlen,) = _U32.unpack_from(mv, pos)
        pos += 4
        if pos + hlen > size:
            raise _truncated(pos, hlen, size - pos)
        hkey = bytes(mv[pos : pos + hlen])
        host = hosts.get(hkey)
        if host is None:
            host = hosts[hkey] = hkey.decode()
        pos += hlen
        if pos + header_size > size:
            raise _truncated(pos, header_size, size - pos)
        request_id, timestamp, nfields = _HEADER.unpack_from(mv, pos)
        pos += header_size
        for _ in range(nfields):
            pos = _skip_str(mv, pos)
            pos = _skip_value(mv, pos)
        frames.append((request_id, timestamp, host, start, pos))
    return frames, pos


def scan_batch_shards(buf: bytes | memoryview, n: int) -> list[list[memoryview]]:
    """Partition an encoded batch into per-shard event byte slices.

    Shard assignment is ``request_id % n`` — exactly the ShardPool's
    object-path partitioning — and each shard's slices keep the batch's
    arrival order, so decoding shard *i*'s slices yields precisely the
    events ``decode_batch`` would have routed there, in the same order
    (the partition-equivalence property tests pin this).  The slices are
    memoryviews over *buf*: nothing is copied until a shard's slices are
    joined for the worker pipe.
    """
    if n < 1:
        raise ValueError(f"need at least one shard, got {n}")
    mv = buf if isinstance(buf, memoryview) else memoryview(buf)
    frames, end = scan_batch(mv)
    if end != len(mv):
        raise ValueError(f"trailing garbage after batch at offset {end}")
    shards: list[list[memoryview]] = [[] for _ in range(n)]
    for request_id, _timestamp, _host, start, stop in frames:
        shards[request_id % n].append(mv[start:stop])
    return shards
