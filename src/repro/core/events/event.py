"""Event instances.

An event is an n-tuple of user-defined fields plus the two system
fields Scrub annotates automatically: a unique request identifier and a
timestamp (paper Section 3.1).  We additionally stamp the emitting host
name, which ScrubCentral uses to attribute rows and the host-sampling
estimator uses to group readings by machine.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from .schema import HOST, REQUEST_ID, SYSTEM_FIELDS, TIMESTAMP, EventSchema

__all__ = ["Event"]


class Event:
    """A single emitted event.

    ``payload`` holds the user-defined fields; the system fields live in
    dedicated slots so the hot path never pays for dict lookups on them.
    Field access (:meth:`get`) resolves user fields, system fields, and
    dotted paths into nested object fields, returning ``None`` for absent
    values (SQL NULL semantics).
    """

    __slots__ = ("event_type", "payload", "request_id", "timestamp", "host")

    def __init__(
        self,
        event_type: str,
        payload: Mapping[str, Any],
        request_id: int,
        timestamp: float,
        host: str = "",
    ) -> None:
        self.event_type = event_type
        self.payload = dict(payload)
        self.request_id = request_id
        self.timestamp = timestamp
        self.host = host

    @classmethod
    def checked(
        cls,
        schema: EventSchema,
        payload: Mapping[str, Any],
        request_id: int,
        timestamp: float,
        host: str = "",
    ) -> "Event":
        """Build an event, validating the payload against *schema*."""
        return cls(schema.name, schema.coerce_payload(payload), request_id, timestamp, host)

    # -- field access -------------------------------------------------------

    def get(self, name: str) -> Any:
        """Resolve a field reference; returns None when absent (NULL)."""
        if name == REQUEST_ID:
            return self.request_id
        if name == TIMESTAMP:
            return self.timestamp
        if name == HOST:
            return self.host
        value = self.payload.get(name)
        if value is None and "." in name and name not in self.payload:
            value = self._get_path(name)
        return value

    def _get_path(self, dotted: str) -> Any:
        node: Any = self.payload
        for part in dotted.split("."):
            if not isinstance(node, Mapping):
                return None
            node = node.get(part)
            if node is None:
                return None
        return node

    def fields(self) -> Iterator[str]:
        """All present field names, system fields included."""
        yield from self.payload
        yield from SYSTEM_FIELDS

    # -- conversions ----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Flatten to a plain dict (system fields included)."""
        out = dict(self.payload)
        out[REQUEST_ID] = self.request_id
        out[TIMESTAMP] = self.timestamp
        out[HOST] = self.host
        return out

    def project(self, keep: tuple[str, ...]) -> "Event":
        """Return a copy containing only the user fields in *keep*.

        System fields are always retained; they are the bounded metadata
        needed for equi-joins and windowing downstream.
        """
        payload = {k: self.payload[k] for k in keep if k in self.payload}
        return Event(self.event_type, payload, self.request_id, self.timestamp, self.host)

    def approx_size(self) -> int:
        """Approximate wire size in bytes (used for transport accounting)."""
        size = 24  # system fields: request id + timestamp + overhead
        size += len(self.host)
        size += len(self.event_type)
        for key, value in self.payload.items():
            size += len(key) + _value_size(value)
        return size

    def __repr__(self) -> str:
        return (
            f"Event({self.event_type!r}, req={self.request_id}, "
            f"t={self.timestamp:.3f}, {self.payload!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.event_type == other.event_type
            and self.request_id == other.request_id
            and self.timestamp == other.timestamp
            and self.host == other.host
            and self.payload == other.payload
        )

    def __hash__(self) -> int:  # pragma: no cover - events are not dict keys
        return hash((self.event_type, self.request_id, self.timestamp, self.host))

    def __reduce__(self):
        # Slotted classes with no __dict__ need explicit pickle support;
        # rebuilding via _rebuild_event skips __init__'s defensive payload
        # copy — the shard-pool boundary pickles every routed event.
        return (
            _rebuild_event,
            (self.event_type, self.payload, self.request_id, self.timestamp, self.host),
        )


def _rebuild_event(
    event_type: str,
    payload: dict[str, Any],
    request_id: int,
    timestamp: float,
    host: str,
) -> Event:
    event = Event.__new__(Event)
    event.event_type = event_type
    event.payload = payload
    event.request_id = request_id
    event.timestamp = timestamp
    event.host = host
    return event


def _value_size(value: Any) -> int:
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (list, tuple)):
        return 4 + sum(_value_size(v) for v in value)
    if isinstance(value, Mapping):
        return 4 + sum(len(str(k)) + _value_size(v) for k, v in value.items())
    return 8
