"""Field types for Scrub events.

The paper (Section 3.1) specifies that Scrub supports fields of types
boolean, int, long, float, double, date/time, string, homogeneous lists
of those primitive types, and nested objects.  Python collapses some of
those distinctions (``int`` covers int/long, ``float`` covers
float/double) but we keep the paper's type vocabulary so schemas written
against the paper's examples parse unchanged.
"""

from __future__ import annotations

import datetime as _dt
import enum
from dataclasses import dataclass
from typing import Any

__all__ = ["FieldType", "FieldDef", "coerce_value", "default_for"]


class FieldType(enum.Enum):
    """The primitive field types supported by Scrub event schemas."""

    BOOLEAN = "boolean"
    INT = "int"
    LONG = "long"
    FLOAT = "float"
    DOUBLE = "double"
    DATETIME = "datetime"
    STRING = "string"
    # Homogeneous lists of primitives.
    LIST_BOOLEAN = "list<boolean>"
    LIST_INT = "list<int>"
    LIST_LONG = "list<long>"
    LIST_FLOAT = "list<float>"
    LIST_DOUBLE = "list<double>"
    LIST_DATETIME = "list<datetime>"
    LIST_STRING = "list<string>"
    # Nested object (dict with string keys); the paper mentions XML-encoded
    # objects — we use plain dicts addressed with dotted field paths.
    OBJECT = "object"
    LIST_OBJECT = "list<object>"

    @property
    def is_list(self) -> bool:
        return self.value.startswith("list<")

    @property
    def element_type(self) -> "FieldType":
        """For a list type, the type of its elements; identity otherwise."""
        if not self.is_list:
            return self
        return FieldType(self.value[5:-1])

    @property
    def is_numeric(self) -> bool:
        return self in _NUMERIC

    @classmethod
    def from_string(cls, name: str) -> "FieldType":
        """Parse a type name, accepting the paper's aliases.

        ``bool`` is accepted for ``boolean``, ``str``/``text`` for
        ``string``, ``date``/``time``/``timestamp`` for ``datetime`` and
        ``list<...>``/``[...]`` list syntax.
        """
        key = name.strip().lower()
        if key.startswith("[") and key.endswith("]"):
            key = f"list<{key[1:-1].strip()}>"
        if key.startswith("list<") and key.endswith(">"):
            inner = cls.from_string(key[5:-1])
            return cls(f"list<{inner.value}>")
        alias = _ALIASES.get(key, key)
        try:
            return cls(alias)
        except ValueError:
            raise ValueError(f"unknown Scrub field type: {name!r}") from None


_ALIASES = {
    "bool": "boolean",
    "integer": "int",
    "str": "string",
    "text": "string",
    "date": "datetime",
    "time": "datetime",
    "timestamp": "datetime",
    "date/time": "datetime",
    "dict": "object",
    "map": "object",
}

_NUMERIC = {
    FieldType.INT,
    FieldType.LONG,
    FieldType.FLOAT,
    FieldType.DOUBLE,
}

# Python runtime types acceptable for each primitive Scrub type.  bool is a
# subclass of int in Python, so integer checks must explicitly reject bool.
_SCALAR_CHECKS = {
    FieldType.BOOLEAN: lambda v: isinstance(v, bool),
    FieldType.INT: lambda v: isinstance(v, int) and not isinstance(v, bool),
    FieldType.LONG: lambda v: isinstance(v, int) and not isinstance(v, bool),
    FieldType.FLOAT: lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    FieldType.DOUBLE: lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    FieldType.DATETIME: lambda v: isinstance(v, (_dt.datetime, int, float))
    and not isinstance(v, bool),
    FieldType.STRING: lambda v: isinstance(v, str),
    FieldType.OBJECT: lambda v: isinstance(v, dict),
}


def coerce_value(ftype: FieldType, value: Any) -> Any:
    """Validate *value* against *ftype* and normalise it.

    Numeric float/double values are normalised to ``float``; datetimes may
    be given as ``datetime`` objects or as POSIX seconds and are normalised
    to ``float`` seconds.  Raises :class:`TypeError` on mismatch.  ``None``
    is allowed for every type (a field may be absent).
    """
    if value is None:
        return None
    if ftype.is_list:
        if not isinstance(value, (list, tuple)):
            raise TypeError(f"expected list for {ftype.value}, got {type(value).__name__}")
        elem = ftype.element_type
        return [coerce_value(elem, v) for v in value]
    check = _SCALAR_CHECKS[ftype]
    if not check(value):
        raise TypeError(
            f"expected {ftype.value} value, got {type(value).__name__} ({value!r})"
        )
    if ftype in (FieldType.FLOAT, FieldType.DOUBLE):
        return float(value)
    if ftype is FieldType.DATETIME:
        if isinstance(value, _dt.datetime):
            return value.timestamp()
        return float(value)
    return value


def default_for(ftype: FieldType) -> Any:
    """A zero value of the given type, used by the logging baseline."""
    if ftype.is_list:
        return []
    return {
        FieldType.BOOLEAN: False,
        FieldType.INT: 0,
        FieldType.LONG: 0,
        FieldType.FLOAT: 0.0,
        FieldType.DOUBLE: 0.0,
        FieldType.DATETIME: 0.0,
        FieldType.STRING: "",
        FieldType.OBJECT: {},
    }[ftype]


@dataclass(frozen=True)
class FieldDef:
    """A single named, typed field of an event schema."""

    name: str
    ftype: FieldType
    doc: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise ValueError(f"invalid field name: {self.name!r}")
        if self.name[0].isdigit():
            raise ValueError(f"field name may not start with a digit: {self.name!r}")

    def coerce(self, value: Any) -> Any:
        try:
            return coerce_value(self.ftype, value)
        except TypeError as exc:
            raise TypeError(f"field {self.name!r}: {exc}") from None
