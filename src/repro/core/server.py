"""The Scrub query server.

Execution of a query (paper Section 4, Fig. 3):

1. the user submits query text;
2. the server parses and validates it, generates a unique query id, and
   creates the query objects;
3. the host query object (selection + projection + sampling) is
   installed on the hosts the target expression resolves to — and only
   those hosts;
4. the central query object (join, group-by, aggregation) is registered
   at ScrubCentral;
5. events flow host → central while the query span lasts;
6. at span end the query is uninstalled everywhere and the result set
   is returned.

The server talks to hosts through a :class:`HostDirectory`; the
in-process :class:`StaticDirectory` suffices for a single process, and
``repro.cluster`` provides a simulated-cluster implementation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Protocol

from .agent.agent import ScrubAgent
from .central.engine import CentralEngine
from .central.results import ResultSet
from .control import SamplingController
from .events import EventRegistry
from .query.ast import TargetNode
from .query.errors import QueryNotFoundError, ScrubValidationError
from .query.parser import parse_query
from .query.planner import QueryPlan, plan_query
from .query.targets import HostDescription, sample_hosts, target_matches
from .query.validator import validate_query

__all__ = ["ScrubQueryServer", "HostDirectory", "StaticDirectory", "QueryHandle"]


class HostDirectory(Protocol):
    """Resolution from a target expression to concrete host agents."""

    def resolve(self, target: TargetNode) -> list[tuple[str, ScrubAgent]]:
        """All (host name, agent) pairs matching the target."""
        ...  # pragma: no cover - protocol


class StaticDirectory:
    """A directory over in-process agents, for tests and single-host use."""

    def __init__(self) -> None:
        self._hosts: dict[str, tuple[HostDescription, ScrubAgent]] = {}

    def add_host(
        self,
        name: str,
        agent: ScrubAgent,
        services: Iterable[str] = (),
        datacenter: str = "dc1",
    ) -> None:
        if name in self._hosts:
            raise ValueError(f"host {name!r} already in directory")
        self._hosts[name] = (HostDescription(name, services, datacenter), agent)

    def resolve(self, target: TargetNode) -> list[tuple[str, ScrubAgent]]:
        return [
            (name, agent)
            for name, (description, agent) in self._hosts.items()
            if target_matches(target, description)
        ]

    @property
    def host_names(self) -> tuple[str, ...]:
        return tuple(self._hosts)

    def agent(self, name: str) -> ScrubAgent:
        return self._hosts[name][1]

    def all_agents(self) -> list[ScrubAgent]:
        return [agent for _description, agent in self._hosts.values()]


@dataclass
class QueryHandle:
    """What ``submit`` returns: identity, plan, and host placement."""

    query_id: str
    plan: QueryPlan
    planned_hosts: tuple[str, ...]   # matched the target (N)
    targeted_hosts: tuple[str, ...]  # chosen after host sampling (n)
    activates_at: float
    expires_at: float
    finished: bool = field(default=False)

    @property
    def columns(self) -> tuple[str, ...]:
        return self.plan.central_object.column_names


class ScrubQueryServer:
    """Front-end: parse, validate, plan, dispatch, collect."""

    def __init__(
        self,
        registry: EventRegistry,
        directory: HostDirectory,
        central: CentralEngine,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.registry = registry
        self.directory = directory
        self.central = central
        self.clock = clock
        #: How long past a query's span end the periodic tick waits before
        #: reaping it — lets in-flight host flushes land at ScrubCentral.
        #: Agents stop matching at the span end regardless.
        self.drain_margin = 0.0
        self._sequence = 0
        self._running: dict[str, tuple[QueryHandle, list[ScrubAgent]]] = {}
        # Results survive query completion so callers can collect after the
        # periodic tick reaped an expired span.
        self._finished: dict[str, ResultSet] = {}
        #: Closed-loop rate controllers for running TARGET CI queries.
        self._controllers: dict[str, SamplingController] = {}

    # -- submission -------------------------------------------------------------

    def submit(self, query_text: str) -> QueryHandle:
        """Parse, validate, plan and dispatch a query; returns its handle."""
        query = parse_query(query_text)
        validated = validate_query(query, self.registry)
        query_id = self._next_query_id()
        plan = plan_query(validated, query_id)

        resolved = self.directory.resolve(plan.target)
        if not resolved:
            raise ScrubValidationError(
                "query target matches no host; check the @[...] expression"
            )
        chosen = sample_hosts(
            resolved, plan.host_sampling_rate, seed=_seed_from(query_id)
        )

        now = self.clock()
        activates_at = plan.start if plan.start is not None else now
        expires_at = activates_at + plan.duration

        agents: list[ScrubAgent] = []
        installed: list[ScrubAgent] = []
        try:
            for _host, agent in chosen:
                for host_object in plan.host_objects:
                    agent.install(host_object, activates_at, expires_at)
                installed.append(agent)
                agents.append(agent)
        except Exception:
            for agent in installed:
                agent.uninstall(query_id)
            raise

        self.central.register(
            plan.central_object,
            planned_hosts=len(resolved),
            targeted_hosts=len(chosen),
            targeted_names=tuple(host for host, _agent in chosen),
        )

        handle = QueryHandle(
            query_id=query_id,
            plan=plan,
            planned_hosts=tuple(host for host, _agent in resolved),
            targeted_hosts=tuple(host for host, _agent in chosen),
            activates_at=activates_at,
            expires_at=expires_at,
        )
        self._running[query_id] = (handle, agents)
        target_ci = plan.central_object.target_ci
        if target_ci is not None:
            # The controller's clamp respects whatever governor budget
            # the chosen agents run under (they share one in practice).
            budget = next(
                (a.impact_budget for a in agents if a.impact_budget is not None),
                None,
            )
            self._controllers[query_id] = SamplingController(
                query_id,
                target_ci,
                total_hosts=len(resolved),
                targeted_hosts=len(chosen),
                window_seconds=plan.central_object.window_seconds,
                event_rate=plan.query.sampling.event_rate,
                budget=budget,
                # In-process agents can be widened directly; the solver
                # may recommend more hosts to shrink the machine term.
                can_widen=True,
            )
        return handle

    def controller(self, query_id: str) -> Optional[SamplingController]:
        """The closed-loop rate controller for a running TARGET CI query
        (None for open-loop queries)."""
        return self._controllers.get(query_id)

    def _next_query_id(self) -> str:
        self._sequence += 1
        return f"q{self._sequence:05d}"

    # -- collection ------------------------------------------------------------

    def poll(self, query_id: str) -> ResultSet:
        """Results emitted so far (windows already closed); for a query
        whose span already ended, the complete result set."""
        done = self._finished.get(query_id)
        if done is not None:
            return done
        self._handle(query_id)
        results = self.central.results_so_far(query_id)
        controller = self._controllers.get(query_id)
        if controller is not None:
            results.sampling = controller.status()
        return results

    def tick(self, now: Optional[float] = None) -> None:
        """Periodic maintenance: flush agents of running queries and close
        due windows.  Drive this from your scheduler or event loop."""
        if now is None:
            now = self.clock()
        for handle, agents in list(self._running.values()):
            if handle.finished:
                continue
            for agent in agents:
                agent.flush(now)
        emitted = self.central.advance(now)
        self._control_tick(emitted, now)
        # Reap queries whose span has fully elapsed (plus drain margin).
        for query_id, (handle, _agents) in list(self._running.items()):
            if not handle.finished and now >= handle.expires_at + self.drain_margin:
                self.finish(query_id)

    def _control_tick(self, emitted: list, now: float) -> None:
        """Run each TARGET CI query's controller over the windows the
        engine just closed and the agents' live cost counters, and apply
        any retune it issues — event rates straight into the in-process
        samplers, host widenings through the engine's target extension."""
        if not self._controllers:
            return
        for window in emitted:
            controller = self._controllers.get(window.query_id)
            if controller is not None:
                controller.observe_window(window, now)
        for query_id, controller in list(self._controllers.items()):
            entry = self._running.get(query_id)
            if entry is None or entry[0].finished:
                continue
            handle, agents = entry
            costs: dict[str, dict] = {}
            for host, agent in zip(handle.targeted_hosts, agents):
                per_query = agent.query_costs().get(query_id)
                if per_query is not None:
                    costs[host] = per_query
            controller.observe_costs(costs, now)
            update = controller.tick(now)
            if update is not None:
                self._apply_rates(handle, agents, update)

    def _apply_rates(self, handle: QueryHandle, agents: list[ScrubAgent], update) -> None:
        """Fan one versioned rate update out to the query's agents."""
        query_id = handle.query_id
        if update.host_count > len(handle.targeted_hosts):
            current = set(handle.targeted_hosts)
            extra = [
                (host, agent)
                for host, agent in self.directory.resolve(handle.plan.target)
                if host not in current
            ]
            need = update.host_count - len(handle.targeted_hosts)
            added: list[str] = []
            for host, agent in extra[:need]:
                try:
                    for host_object in handle.plan.host_objects:
                        agent.install(
                            host_object, handle.activates_at, handle.expires_at
                        )
                except Exception:
                    agent.uninstall(query_id)
                    continue
                agents.append(agent)
                added.append(host)
            if added:
                handle.targeted_hosts = handle.targeted_hosts + tuple(added)
                # The hosts were in the original resolve, so the planned
                # population N is unchanged — only n grows.
                self.central.extend_targets(query_id, tuple(added), planned_delta=0)
        for agent in agents:
            agent.retune(query_id, update.event_rate, update.version)

    def finish(self, query_id: str) -> ResultSet:
        """End a query now: uninstall from hosts (flushing), close all of
        its windows, and return the full result set.  Idempotent: calling
        again after completion returns the stored results."""
        done = self._finished.get(query_id)
        if done is not None:
            return done
        handle, agents = self._running_entry(query_id)
        for agent in agents:
            agent.uninstall(query_id)
        handle.finished = True
        results = self.central.finish(query_id)
        controller = self._controllers.pop(query_id, None)
        if controller is not None:
            results.sampling = controller.status()
        del self._running[query_id]
        self._finished[query_id] = results
        return results

    def cancel(self, query_id: str) -> None:
        """Abort a query, discarding any un-emitted windows."""
        handle, agents = self._running_entry(query_id)
        for agent in agents:
            agent.uninstall(query_id)
        handle.finished = True
        results = self.central.finish(query_id, drain=False)
        controller = self._controllers.pop(query_id, None)
        if controller is not None:
            results.sampling = controller.status()
        self._finished[query_id] = results
        del self._running[query_id]

    @property
    def running_query_ids(self) -> tuple[str, ...]:
        return tuple(
            query_id
            for query_id, (handle, _agents) in self._running.items()
            if not handle.finished
        )

    def _handle(self, query_id: str) -> QueryHandle:
        return self._running_entry(query_id)[0]

    def _running_entry(self, query_id: str) -> tuple[QueryHandle, list[ScrubAgent]]:
        entry = self._running.get(query_id)
        if entry is None:
            raise QueryNotFoundError(query_id)
        return entry


def _seed_from(query_id: str) -> int:
    seed = 0
    for ch in query_id:
        seed = seed * 131 + ord(ch)
    return seed & 0xFFFFFFFF
