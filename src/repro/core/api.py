"""Convenience façade: a complete in-process Scrub deployment.

:class:`Scrub` wires together an event registry, host agents, the
central engine and the query server so library users (and the examples)
can run real queries in a few lines::

    scrub = Scrub()
    scrub.define_event("bid", [("user_id", "long"), ("bid_price", "double")])
    host = scrub.add_host("host1", services=["BidServers"])

    handle = scrub.submit(
        "Select bid.user_id, COUNT(*) from bid "
        "@[Service in BidServers] window 10s group by bid.user_id;"
    )
    host.log("bid", user_id=7, bid_price=1.25, request_id=42)
    results = scrub.finish(handle.query_id)

Production deployments replace the pieces individually (a simulated
cluster does so in ``repro.cluster``); this façade is the smallest
faithful assembly of the architecture in paper Fig. 3.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Optional

from .agent.agent import ScrubAgent
from .agent.governor import ImpactBudget
from .agent.transport import DirectTransport
from .central.engine import CentralEngine
from .central.pool import ShardPool
from .central.results import ResultSet
from .events import EventRegistry, EventSchema
from .server import QueryHandle, ScrubQueryServer, StaticDirectory

__all__ = ["Scrub", "ManualClock"]


class ManualClock:
    """An explicitly-advanced clock for deterministic runs and tests."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    def __call__(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("cannot move the clock backwards")
        self._now += seconds
        return self._now

    def set(self, now: float) -> None:
        if now < self._now:
            raise ValueError("cannot move the clock backwards")
        self._now = now


class Scrub:
    """An in-process Scrub: registry + agents + ScrubCentral + server."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        grace_seconds: float = 2.0,
        buffer_capacity: int = 10_000,
        flush_batch_size: int = 500,
        workers: int = 0,
        impact_budget: Optional[ImpactBudget] = None,
    ) -> None:
        self.clock: Callable[[], float] = clock if clock is not None else time.time
        self.registry = EventRegistry()
        # workers > 0 swaps in the process-parallel ShardPool (same
        # results, multi-core ingest — docs/SCALING.md); call close()
        # (or use the instance as a context manager) to reap workers.
        self.central: CentralEngine
        if workers > 0:
            self.central = ShardPool(workers=workers, grace_seconds=grace_seconds)
        else:
            self.central = CentralEngine(grace_seconds=grace_seconds)
        self.directory = StaticDirectory()
        self.server = ScrubQueryServer(
            self.registry, self.directory, self.central, clock=self.clock
        )
        self._buffer_capacity = buffer_capacity
        self._flush_batch_size = flush_batch_size
        # Per-query host impact budget handed to every agent this facade
        # creates; None disables the governor (docs/LIVE_MODE.md).
        self._impact_budget = impact_budget

    # -- setup -------------------------------------------------------------------

    def define_event(self, name: str, fields: Any, doc: str = "") -> EventSchema:
        """Declare an event type (paper Section 3.1)."""
        return self.registry.define(name, fields, doc=doc)

    def register_schema(self, schema: EventSchema) -> EventSchema:
        return self.registry.register(schema)

    def add_host(
        self,
        name: str,
        services: Iterable[str] = (),
        datacenter: str = "dc1",
    ) -> ScrubAgent:
        """Create a host agent wired directly into ScrubCentral."""
        agent = ScrubAgent(
            host=name,
            registry=self.registry,
            transport=DirectTransport(self.central.ingest),
            clock=self.clock,
            buffer_capacity=self._buffer_capacity,
            flush_batch_size=self._flush_batch_size,
            impact_budget=self._impact_budget,
        )
        self.directory.add_host(name, agent, services=services, datacenter=datacenter)
        return agent

    # -- query lifecycle -----------------------------------------------------------

    def submit(self, query_text: str) -> QueryHandle:
        return self.server.submit(query_text)

    def poll(self, query_id: str) -> ResultSet:
        return self.server.poll(query_id)

    def tick(self, now: Optional[float] = None) -> None:
        self.server.tick(now)

    def finish(self, query_id: str) -> ResultSet:
        return self.server.finish(query_id)

    def cancel(self, query_id: str) -> None:
        self.server.cancel(query_id)

    def close(self) -> None:
        """Release engine resources (shard worker processes, if any)."""
        close = getattr(self.central, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "Scrub":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def run_closed_world(self, query_text: str, drive: Callable[["Scrub"], None]) -> ResultSet:
        """Submit a query, run *drive* to generate traffic, then finish.

        A convenience for examples and tests where all traffic is
        produced by a callable rather than a live system.
        """
        handle = self.submit(query_text)
        drive(self)
        return self.finish(handle.query_id)
