"""The log-everything baseline: collector and accounting.

The paper's main argument against logging (Sections 1, 8.1): queries
are not known a priori, so *all* data must be logged, shipped over
cross-continental links to a central location, and retained — and the
analysis then runs as an offline batch job while the problem keeps
costing money.

:class:`LoggingBaseline` reproduces that regime on the simulated
cluster *using Scrub's own machinery as the shipper*: a catch-all host
query object (no selection, full projection, no sampling) is installed
on every agent for every event type, and its batches are diverted to a
:class:`LogStore` instead of the central engine.  Bytes shipped per
link then come from the same accounting as the Scrub runs, making the
comparison apples-to-apples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cluster.runtime import SimCluster
from ..core.agent.transport import EventBatch
from ..core.events import Event
from ..core.events.encoding import encode_json
from ..core.query.planner import HostQueryObject

__all__ = ["LogStore", "LoggingBaseline", "LOG_ALL_QUERY_ID"]

LOG_ALL_QUERY_ID = "__log_all__"


@dataclass
class LogStoreStats:
    events: int = 0
    json_bytes: int = 0  # what a production log file would hold
    batches: int = 0


class LogStore:
    """Central log sink: retains events (optionally) and counts bytes."""

    def __init__(self, retain_events: bool = True) -> None:
        self.retain_events = retain_events
        self.stats = LogStoreStats()
        self._events: list[Event] = []

    def ingest(self, batch: EventBatch) -> None:
        self.stats.batches += 1
        for event in batch.events:
            self.stats.events += 1
            self.stats.json_bytes += len(encode_json(event))
            if self.retain_events:
                self._events.append(event)

    @property
    def events(self) -> list[Event]:
        if not self.retain_events:
            raise RuntimeError("LogStore was created with retain_events=False")
        return self._events

    def events_of_type(self, event_type: str) -> list[Event]:
        return [e for e in self.events if e.event_type == event_type]


class LoggingBaseline:
    """Installs the log-everything regime on a simulated cluster."""

    def __init__(
        self,
        cluster: SimCluster,
        store: LogStore | None = None,
        flush_interval: float = 1.0,
    ) -> None:
        self.cluster = cluster
        self.store = store if store is not None else LogStore()
        self._installed = False
        self._flush_interval = flush_interval
        # Divert LOG_ALL batches before they reach the query engine.
        self._orig_ingest = cluster.central.ingest
        cluster.central.ingest = self._dispatch  # type: ignore[method-assign]

    def _dispatch(self, batch: EventBatch) -> None:
        if batch.query_id == LOG_ALL_QUERY_ID:
            self.store.ingest(batch)
        else:
            self._orig_ingest(batch)

    def install(self) -> None:
        """Arm the catch-all collection on every host, every event type."""
        if self._installed:
            raise RuntimeError("logging baseline already installed")
        self._installed = True
        registry = self.cluster.registry
        for host in self.cluster.hosts():
            agent = host.agent
            if agent is None:
                continue
            for schema in registry:
                agent.install(
                    HostQueryObject(
                        query_id=LOG_ALL_QUERY_ID,
                        event_type=schema.name,
                        predicate=None,
                        projection=schema.field_names,  # everything
                        event_sampling_rate=1.0,
                        # Coarse bins: the tap needs no per-window estimator
                        # metadata, just not an unbounded counter dict.
                        window_seconds=3600.0,
                    ),
                    activates_at=-math.inf,
                    expires_at=math.inf,
                )
        # The query server only flushes agents with *queries* running;
        # the tap needs its own flush cadence.
        self.cluster.loop.call_every(self._flush_interval, self._flush_all)

    def _flush_all(self) -> None:
        now = self.cluster.loop.now
        for host in self.cluster.hosts():
            if host.agent is not None:
                host.agent.flush(now)

    def uninstall(self) -> None:
        for host in self.cluster.hosts():
            if host.agent is not None:
                host.agent.uninstall(LOG_ALL_QUERY_ID)
        self._installed = False
