"""Baselines: log-everything collection + offline batch analysis."""

from .batch import BatchCostModel, BatchJobReport, BatchQueryEngine
from .logstore import LOG_ALL_QUERY_ID, LoggingBaseline, LogStore

__all__ = [
    "BatchCostModel",
    "BatchJobReport",
    "BatchQueryEngine",
    "LOG_ALL_QUERY_ID",
    "LogStore",
    "LoggingBaseline",
]
