"""Offline batch analysis over logs — the "Hadoop" stand-in.

Given a Scrub query and a :class:`LogStore` full of raw events, the
batch engine computes the same answer the online pipeline would have —
by scanning every retained record, applying the selection during the
scan (the map phase), and running the usual window/join/group machinery
over the survivors.

The *cost model* is the point of the baseline (paper Section 8.1): a
batch job pays cluster startup plus a full scan of everything that was
logged, so its time-to-first-answer is minutes while Scrub's is one
window length.  ``estimate_runtime`` prices a job the way the paper
argues — and the measured comparison benchmark reports both the modelled
batch latency and Scrub's actual first-window latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.central.engine import CentralEngine
from ..core.agent.transport import EventBatch
from ..core.events import EventRegistry
from ..core.query.compile import compile_predicate
from ..core.query.parser import parse_query
from ..core.query.planner import plan_query
from ..core.query.validator import validate_query
from ..core.central.results import ResultSet
from .logstore import LogStore

__all__ = ["BatchCostModel", "BatchJobReport", "BatchQueryEngine"]


@dataclass(frozen=True)
class BatchCostModel:
    """How long a batch job over the logs would take.

    Defaults approximate a modest Hadoop deployment: half-a-minute
    of job startup/scheduling, and a per-node scan rate dominated by
    decompression + deserialization of wide log records.
    """

    job_startup_seconds: float = 30.0
    nodes: int = 20
    records_per_node_per_second: float = 50_000.0
    shuffle_seconds_per_gb: float = 8.0

    def estimate_runtime(self, records_scanned: int, shuffle_bytes: int) -> float:
        scan = records_scanned / (self.nodes * self.records_per_node_per_second)
        shuffle = (shuffle_bytes / 1e9) * self.shuffle_seconds_per_gb
        return self.job_startup_seconds + scan + shuffle


@dataclass
class BatchJobReport:
    """The outcome of one batch analysis."""

    results: ResultSet
    records_scanned: int
    records_matched: int
    log_bytes_scanned: int
    estimated_runtime_seconds: float


class BatchQueryEngine:
    """Runs Scrub queries offline over a :class:`LogStore`."""

    def __init__(
        self,
        registry: EventRegistry,
        cost_model: BatchCostModel | None = None,
    ) -> None:
        self.registry = registry
        self.cost_model = cost_model if cost_model is not None else BatchCostModel()

    def run(self, query_text: str, store: LogStore) -> BatchJobReport:
        """Scan the whole store and answer *query_text*.

        Target expressions and sampling clauses are ignored: the logs
        were written without knowledge of future queries, so the scan
        covers everything — which is precisely the baseline's cost
        structure.
        """
        query = parse_query(query_text)
        validated = validate_query(query, self.registry)
        plan = plan_query(validated, "batch")

        predicates = {
            obj.event_type: compile_predicate(
                obj.predicate, lambda _t, f: (lambda ev, _f=f: ev.get(_f))
            )
            for obj in plan.host_objects
        }

        engine = CentralEngine(grace_seconds=0.0)
        engine.register(plan.central_object, planned_hosts=1, targeted_hosts=1)

        scanned = 0
        matched = 0
        max_ts = 0.0
        matching = []
        for event in store.events:
            scanned += 1
            predicate = predicates.get(event.event_type)
            if predicate is None:
                continue  # the scan still paid for the record
            if not predicate(event):
                continue
            matched += 1
            max_ts = max(max_ts, event.timestamp)
            matching.append(event)
        engine.ingest(
            EventBatch(host="batch", query_id="batch", events=matching)
        )
        results = engine.finish("batch")

        runtime = self.cost_model.estimate_runtime(
            records_scanned=scanned,
            shuffle_bytes=sum(e.approx_size() for e in matching),
        )
        return BatchJobReport(
            results=results,
            records_scanned=scanned,
            records_matched=matched,
            log_bytes_scanned=store.stats.json_bytes,
            estimated_runtime_seconds=runtime,
        )
