"""Experiment reporting: fixed-width tables persisted as text artifacts.

Every benchmark regenerates one of the paper's tables or figures; this
helper renders the rows/series in a uniform format, prints them, and
writes them under ``benchmarks/results/`` so `pytest benchmarks/` leaves
inspectable artifacts regardless of output capturing.
"""

from __future__ import annotations

import os
from typing import Any, Sequence

__all__ = ["ExperimentReport", "default_results_dir"]


def default_results_dir() -> str:
    """`benchmarks/results` relative to the repository root (the cwd
    pytest runs from); falls back to the current directory."""
    for candidate in ("benchmarks", "."):
        if os.path.isdir(candidate):
            path = os.path.join(candidate, "results")
            os.makedirs(path, exist_ok=True)
            return path
    return "."


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.4g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


class ExperimentReport:
    """Accumulates titled tables and notes for one experiment."""

    def __init__(self, experiment_id: str, title: str) -> None:
        self.experiment_id = experiment_id
        self.title = title
        self._blocks: list[str] = []

    def note(self, text: str) -> None:
        self._blocks.append(text)

    def table(
        self,
        title: str,
        headers: Sequence[str],
        rows: Sequence[Sequence[Any]],
    ) -> None:
        cells = [[_fmt(v) for v in row] for row in rows]
        widths = [
            max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
            for i, h in enumerate(headers)
        ]
        lines = [title]
        lines.append("  " + "  ".join(h.rjust(w) for h, w in zip(headers, widths)))
        lines.append("  " + "  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  " + "  ".join(c.rjust(w) for c, w in zip(row, widths)))
        self._blocks.append("\n".join(lines))

    def text(self) -> str:
        header = f"== {self.experiment_id}: {self.title} =="
        return "\n\n".join([header, *self._blocks]) + "\n"

    def emit(self, directory: str | None = None) -> str:
        """Print the report and write it to ``<dir>/<experiment_id>.txt``;
        returns the file path."""
        body = self.text()
        print("\n" + body)
        directory = directory if directory is not None else default_results_dir()
        path = os.path.join(directory, f"{self.experiment_id}.txt")
        with open(path, "w") as fh:
            fh.write(body)
        return path
