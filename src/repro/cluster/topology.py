"""Cluster topology: data centers, services, host inventory.

A topology is the static shape of the deployment — which hosts exist,
where they live, and which services they run.  The directory built from
it resolves Scrub ``@[...]`` target expressions (paper Section 3.2) to
concrete host sets.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..core.agent.agent import ScrubAgent
from ..core.query.ast import TargetNode
from ..core.query.targets import target_matches
from .host import DEFAULT_COST_MODEL, CostModel, SimHost

__all__ = ["Topology", "ClusterDirectory"]


class Topology:
    """Mutable host inventory with service/datacenter indexing."""

    def __init__(self, cost_model: CostModel = DEFAULT_COST_MODEL) -> None:
        self._hosts: dict[str, SimHost] = {}
        self._cost_model = cost_model

    def add_host(
        self, name: str, datacenter: str, services: Iterable[str] = ()
    ) -> SimHost:
        if name in self._hosts:
            raise ValueError(f"host {name!r} already exists")
        host = SimHost(name, datacenter, services, self._cost_model)
        self._hosts[name] = host
        return host

    def add_service(
        self, service: str, datacenter: str, count: int, name_prefix: str | None = None
    ) -> list[SimHost]:
        """Add *count* hosts running *service* in *datacenter*.

        Host names are ``<prefix><dc>-<index>``; the prefix defaults to
        a lowercased service name.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        prefix = name_prefix if name_prefix is not None else service.lower()
        created = []
        start = sum(
            1
            for host in self._hosts.values()
            if service in host.services and host.datacenter == datacenter
        )
        for i in range(start, start + count):
            created.append(
                self.add_host(f"{prefix}-{datacenter}-{i}", datacenter, [service])
            )
        return created

    def host(self, name: str) -> SimHost:
        try:
            return self._hosts[name]
        except KeyError:
            raise KeyError(
                f"no host {name!r}; known: {sorted(self._hosts)[:10]}..."
            ) from None

    def hosts(self) -> list[SimHost]:
        return list(self._hosts.values())

    def hosts_in_service(self, service: str) -> list[SimHost]:
        wanted = service.lower()
        return [
            host
            for host in self._hosts.values()
            if any(s.lower() == wanted for s in host.services)
        ]

    def hosts_in_datacenter(self, datacenter: str) -> list[SimHost]:
        return [h for h in self._hosts.values() if h.datacenter == datacenter]

    def datacenters(self) -> tuple[str, ...]:
        return tuple(sorted({h.datacenter for h in self._hosts.values()}))

    def services(self) -> tuple[str, ...]:
        out: set[str] = set()
        for host in self._hosts.values():
            out.update(host.services)
        return tuple(sorted(out))

    def __len__(self) -> int:
        return len(self._hosts)

    def __iter__(self) -> Iterator[SimHost]:
        return iter(self._hosts.values())

    def __contains__(self, name: str) -> bool:
        return name in self._hosts


class ClusterDirectory:
    """The simulated cluster's implementation of
    :class:`repro.core.server.HostDirectory`: resolves targets against
    the topology and returns the hosts' live agents."""

    def __init__(self, topology: Topology) -> None:
        self._topology = topology

    def resolve(self, target: TargetNode) -> list[tuple[str, ScrubAgent]]:
        out: list[tuple[str, ScrubAgent]] = []
        for host in self._topology:
            if host.agent is None:
                continue
            if target_matches(target, host.description):
                out.append((host.name, host.agent))
        return out
