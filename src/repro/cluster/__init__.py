"""Simulated cluster substrate: event loop, network, hosts, topology."""

from .host import DEFAULT_COST_MODEL, CostModel, RequestMeasure, SimHost
from .metrics import (
    LatencySummary,
    OverheadSampler,
    OverheadSummary,
    percentile,
    summarize_latencies,
    summarize_overhead,
)
from .runtime import CENTRAL_DATACENTER, SimCluster, SimTransport, run_to_completion
from .simclock import EventLoop, ScheduledCall
from .simnet import LinkSpec, LinkStats, SimNetwork
from .topology import ClusterDirectory, Topology

__all__ = [
    "CENTRAL_DATACENTER",
    "ClusterDirectory",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "EventLoop",
    "LatencySummary",
    "LinkSpec",
    "LinkStats",
    "OverheadSampler",
    "OverheadSummary",
    "RequestMeasure",
    "ScheduledCall",
    "SimCluster",
    "SimHost",
    "SimNetwork",
    "SimTransport",
    "Topology",
    "percentile",
    "run_to_completion",
    "summarize_latencies",
    "summarize_overhead",
]
