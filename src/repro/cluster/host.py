"""Simulated hosts with CPU cost accounting.

A Python prototype cannot credibly measure "2.5% CPU overhead" on a
production bidding server (reproduction band note), so the overhead
experiments are built on explicit accounting instead: every simulated
host charges *application* CPU for the work the platform does and
*Scrub* CPU for the work the embedded agent does.  Scrub work is
derived from the real agent's operation counters through a
:class:`CostModel` whose per-operation constants are calibrated by the
``test_perf_fastpath`` microbenchmarks — so the simulated 2.5% claim is
anchored to measured per-operation costs, not invented numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional

from ..core.agent.agent import AgentStats, ScrubAgent
from ..core.query.targets import HostDescription

__all__ = ["CostModel", "SimHost", "RequestMeasure", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Seconds charged per agent operation.

    Defaults approximate a tuned native implementation (the paper's
    agent is embedded in a Java server); the microbenchmarks report the
    Python prototype's actual constants, which are larger by a constant
    factor — the *ratios* are what the overhead experiment shape relies
    on.
    """

    log_call: float = 30e-9            # fast path: lookup + counter
    per_query_check: float = 60e-9     # span check + predicate eval
    per_event_matched: float = 40e-9   # window counter + sampling draw
    per_event_shipped: float = 250e-9  # projection + buffer append
    per_preagg_update: float = 150e-9  # group-key hash + state update
    per_byte_shipped: float = 0.3e-9   # serialization + syscall share
    per_flush: float = 10e-6           # batch assembly + send

    def agent_cost(self, stats: AgentStats, active_queries: int = 0) -> float:
        """Total Scrub CPU seconds implied by an agent's counters.

        ``events_checked`` counts the actual (query, event) evaluations
        the agent performed, so the per-query cost is exact rather than
        an over-approximation by the agent-wide active query count.
        """
        del active_queries  # retained for call-site compatibility
        return (
            stats.events_logged * self.log_call
            + stats.events_checked * self.per_query_check
            + stats.events_matched * self.per_event_matched
            + stats.events_shipped * self.per_event_shipped
            + stats.events_preaggregated * self.per_preagg_update
            + stats.bytes_shipped * self.per_byte_shipped
            + stats.batches_flushed * self.per_flush
        )


DEFAULT_COST_MODEL = CostModel()


def _snapshot(stats: AgentStats) -> AgentStats:
    return replace(stats)


class SimHost:
    """One simulated machine: identity, services, CPU ledgers, agent."""

    def __init__(
        self,
        name: str,
        datacenter: str,
        services: Iterable[str] = (),
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        self.description = HostDescription(name, services, datacenter)
        self.cost_model = cost_model
        self.agent: Optional[ScrubAgent] = None
        self.app_cpu_seconds = 0.0
        self.requests_served = 0
        self.latencies: list[float] = []

    @property
    def name(self) -> str:
        return self.description.name

    @property
    def datacenter(self) -> str:
        return self.description.datacenter

    @property
    def services(self) -> frozenset[str]:
        return self.description.services

    def attach_agent(self, agent: ScrubAgent) -> None:
        if self.agent is not None:
            raise RuntimeError(f"host {self.name} already has an agent")
        self.agent = agent

    # -- CPU accounting -------------------------------------------------------------

    def charge_app(self, seconds: float) -> None:
        """Charge application CPU (platform request processing)."""
        if seconds < 0:
            raise ValueError("cannot charge negative CPU")
        self.app_cpu_seconds += seconds

    @property
    def scrub_cpu_seconds(self) -> float:
        """Scrub CPU implied by the agent's lifetime counters."""
        if self.agent is None:
            return 0.0
        return self.cost_model.agent_cost(
            self.agent.stats, len(self.agent.active_query_ids)
        )

    def cpu_overhead(self) -> float:
        """Scrub CPU as a fraction of application CPU (the paper's 2.5%
        metric).  Zero when the host did no app work."""
        if self.app_cpu_seconds <= 0:
            return 0.0
        return self.scrub_cpu_seconds / self.app_cpu_seconds

    # -- per-request measurement -------------------------------------------------------

    def measure_request(self) -> "RequestMeasure":
        """Context manager measuring one request's app + Scrub cost.

        The platform charges app CPU inside the block; the Scrub cost is
        the agent-counter delta across the block converted through the
        cost model.  The resulting latency feeds the +1%-latency
        experiment.
        """
        return RequestMeasure(self)

    def record_latency(self, seconds: float) -> None:
        self.latencies.append(seconds)
        self.requests_served += 1


class RequestMeasure:
    """Measures the app and Scrub CPU charged during one request."""

    __slots__ = ("_host", "_app_before", "_stats_before", "app_cost", "scrub_cost")

    def __init__(self, host: SimHost) -> None:
        self._host = host
        self._app_before = 0.0
        self._stats_before: Optional[AgentStats] = None
        self.app_cost = 0.0
        self.scrub_cost = 0.0

    def __enter__(self) -> "RequestMeasure":
        self._app_before = self._host.app_cpu_seconds
        agent = self._host.agent
        self._stats_before = _snapshot(agent.stats) if agent is not None else None
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        host = self._host
        self.app_cost = host.app_cpu_seconds - self._app_before
        agent = host.agent
        if agent is not None and self._stats_before is not None:
            before = self._stats_before
            after = agent.stats
            delta = AgentStats(
                events_logged=after.events_logged - before.events_logged,
                events_examined=after.events_examined - before.events_examined,
                events_checked=after.events_checked - before.events_checked,
                events_matched=after.events_matched - before.events_matched,
                events_shipped=after.events_shipped - before.events_shipped,
                events_dropped=after.events_dropped - before.events_dropped,
                events_preaggregated=(
                    after.events_preaggregated - before.events_preaggregated
                ),
                batches_flushed=after.batches_flushed - before.batches_flushed,
                bytes_shipped=after.bytes_shipped - before.bytes_shipped,
            )
            self.scrub_cost = host.cost_model.agent_cost(
                delta, len(agent.active_query_ids)
            )
        if exc_type is None:
            host.record_latency(self.latency)

    @property
    def latency(self) -> float:
        return self.app_cost + self.scrub_cost
