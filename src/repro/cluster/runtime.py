"""SimCluster: the assembled simulated deployment.

One object owns the event loop, the network, the topology, ScrubCentral
(placed in its own small datacenter, mirroring the paper's "dedicated
centralized facility"), and the query server.  Applications — the ad
platform, tests, examples — add services, log events through the hosts'
agents, and drive virtual time.

Agent flushes and window closes are periodic loop tasks, so event flow
host → central pays simulated network latency like the real system.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.agent.agent import ScrubAgent
from ..core.agent.governor import ImpactBudget
from ..core.agent.transport import EventBatch
from ..core.central.engine import CentralEngine
from ..core.central.pool import ShardPool
from ..core.central.results import ResultSet, WindowResult
from ..core.events import EventRegistry
from ..core.server import QueryHandle, ScrubQueryServer
from .host import DEFAULT_COST_MODEL, CostModel, SimHost
from .metrics import OverheadSummary, summarize_overhead
from .simclock import EventLoop
from .simnet import LinkSpec, SimNetwork
from .topology import ClusterDirectory, Topology

__all__ = ["SimCluster", "SimTransport", "CENTRAL_DATACENTER", "run_to_completion"]

#: Name of the datacenter hosting the ScrubCentral facility.
CENTRAL_DATACENTER = "scrub-central"


class SimTransport:
    """Per-host transport: ships batches over the simulated network to
    ScrubCentral, which ingests them on delivery."""

    def __init__(
        self,
        network: SimNetwork,
        source_datacenter: str,
        central: CentralEngine,
        central_datacenter: str = CENTRAL_DATACENTER,
    ) -> None:
        self._network = network
        self._source_dc = source_datacenter
        self._central = central
        self._central_dc = central_datacenter
        self.batches_sent = 0
        self.bytes_sent = 0

    def send(self, batch: EventBatch) -> None:
        size = batch.wire_size()
        self.batches_sent += 1
        self.bytes_sent += size
        self._network.deliver(
            self._source_dc, self._central_dc, size, self._central.ingest, batch
        )


class SimCluster:
    """A complete simulated Scrub deployment."""

    def __init__(
        self,
        registry: EventRegistry,
        flush_interval: float = 1.0,
        grace_seconds: Optional[float] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        buffer_capacity: int = 10_000,
        flush_batch_size: int = 2_000,
        intra_dc: Optional[LinkSpec] = None,
        inter_dc: Optional[LinkSpec] = None,
        central_workers: int = 0,
        impact_budget: Optional[ImpactBudget] = None,
    ) -> None:
        self.registry = registry
        self.loop = EventLoop()
        net_kwargs = {}
        if intra_dc is not None:
            net_kwargs["intra_dc"] = intra_dc
        if inter_dc is not None:
            net_kwargs["inter_dc"] = inter_dc
        self.network = SimNetwork(self.loop, **net_kwargs)
        self.topology = Topology(cost_model)
        # Grace must cover flush interval + WAN latency, or windows close
        # before their last batches arrive.
        if grace_seconds is None:
            grace_seconds = 2.0 * flush_interval + 0.5
        # central_workers > 0 places the central facility on a process-
        # parallel ShardPool (docs/SCALING.md); call close() to reap it.
        self.central: CentralEngine
        if central_workers > 0:
            self.central = ShardPool(
                workers=central_workers, grace_seconds=grace_seconds
            )
        else:
            self.central = CentralEngine(grace_seconds=grace_seconds)
        self.directory = ClusterDirectory(self.topology)
        self.server = ScrubQueryServer(
            self.registry, self.directory, self.central, clock=self.loop.clock
        )
        # Expired queries are reaped only after in-flight flushes could land.
        self.server.drain_margin = 2.0 * flush_interval + 0.5
        self._flush_interval = flush_interval
        self._buffer_capacity = buffer_capacity
        self._flush_batch_size = flush_batch_size
        self._impact_budget = impact_budget
        self._ticking = False

    # -- topology -----------------------------------------------------------------

    def add_service(
        self, service: str, datacenter: str, count: int
    ) -> list[SimHost]:
        """Add *count* hosts for *service*, each with a live Scrub agent."""
        hosts = self.topology.add_service(service, datacenter, count)
        for host in hosts:
            self._attach_agent(host)
        return hosts

    def add_host(
        self, name: str, datacenter: str, services: Iterable[str] = ()
    ) -> SimHost:
        host = self.topology.add_host(name, datacenter, services)
        self._attach_agent(host)
        return host

    def _attach_agent(self, host: SimHost) -> None:
        transport = SimTransport(self.network, host.datacenter, self.central)
        agent = ScrubAgent(
            host=host.name,
            registry=self.registry,
            transport=transport,
            clock=self.loop.clock,
            buffer_capacity=self._buffer_capacity,
            flush_batch_size=self._flush_batch_size,
            impact_budget=self._impact_budget,
        )
        host.attach_agent(agent)

    def host(self, name: str) -> SimHost:
        return self.topology.host(name)

    def hosts(self) -> list[SimHost]:
        return self.topology.hosts()

    # -- queries --------------------------------------------------------------------

    def submit(self, query_text: str) -> QueryHandle:
        self._ensure_ticking()
        return self.server.submit(query_text)

    def poll(self, query_id: str) -> ResultSet:
        return self.server.poll(query_id)

    def finish(self, query_id: str) -> ResultSet:
        """Finish a query cleanly: let in-flight batches land first."""
        # One extra flush interval plus worst-case WAN transfer drains the pipe.
        self.loop.run_for(self._flush_interval + 0.5)
        return self.server.finish(query_id)

    def _ensure_ticking(self) -> None:
        if self._ticking:
            return
        self.loop.call_every(self._flush_interval, self.server.tick)
        self._ticking = True

    # -- time -----------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.loop.now

    def run_until(self, deadline: float) -> None:
        self.loop.run_until(deadline)

    def run_for(self, duration: float) -> None:
        self.loop.run_for(duration)

    # -- metrics -----------------------------------------------------------------------

    def overhead_summary(self, service: Optional[str] = None) -> OverheadSummary:
        hosts = (
            self.topology.hosts_in_service(service)
            if service is not None
            else self.topology.hosts()
        )
        return summarize_overhead(hosts)

    def scrub_bytes_shipped(self) -> int:
        """Total bytes host agents shipped toward ScrubCentral."""
        total = 0
        for host in self.topology:
            agent = host.agent
            if agent is not None:
                total += agent.stats.bytes_shipped
        return total

    def on_window(self, callback) -> None:
        """Install a window-result callback on the central engine."""
        self.central._on_window = callback  # noqa: SLF001 - deliberate wiring

    # -- teardown -----------------------------------------------------------------

    def close(self) -> None:
        """Release central engine resources (shard workers, if any)."""
        close = getattr(self.central, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "SimCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_to_completion(cluster: SimCluster, handle: QueryHandle) -> ResultSet:
    """Run the simulation until the query's span ends, then collect.

    Advances virtual time past the query deadline plus a drain margin
    (in-flight flushes and WAN deliveries), lets the periodic tick reap
    the query, and returns the stored result set.
    """
    margin = cluster.server.drain_margin + cluster._flush_interval + 0.5  # noqa: SLF001
    cluster.run_until(handle.expires_at + margin)
    return cluster.server.finish(handle.query_id)
