"""Metric collection and summarisation for the cluster experiments.

The overhead experiments (paper Section 9 / abstract: "a maximum CPU
overhead of up to 2.5% ... and a 1% increase in request latency") need
per-host CPU ratios and request-latency distributions; this module
provides the samplers and summary statistics the benchmarks print.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from .host import SimHost
from .simclock import EventLoop

__all__ = [
    "percentile",
    "LatencySummary",
    "OverheadSummary",
    "summarize_latencies",
    "summarize_overhead",
    "OverheadSampler",
]


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (q in [0, 100]) by linear interpolation."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


@dataclass(frozen=True)
class LatencySummary:
    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean * 1e3:.3f}ms p50={self.p50 * 1e3:.3f}ms "
            f"p95={self.p95 * 1e3:.3f}ms p99={self.p99 * 1e3:.3f}ms "
            f"max={self.max * 1e3:.3f}ms"
        )


def summarize_latencies(latencies: Sequence[float]) -> LatencySummary:
    if not latencies:
        raise ValueError("no latencies recorded")
    return LatencySummary(
        count=len(latencies),
        mean=sum(latencies) / len(latencies),
        p50=percentile(latencies, 50),
        p95=percentile(latencies, 95),
        p99=percentile(latencies, 99),
        max=max(latencies),
    )


@dataclass(frozen=True)
class OverheadSummary:
    """Scrub CPU as a fraction of app CPU, across a host population."""

    hosts: int
    mean_overhead: float
    max_overhead: float
    total_app_cpu: float
    total_scrub_cpu: float

    @property
    def aggregate_overhead(self) -> float:
        if self.total_app_cpu <= 0:
            return 0.0
        return self.total_scrub_cpu / self.total_app_cpu

    def __str__(self) -> str:
        return (
            f"hosts={self.hosts} mean={self.mean_overhead * 100:.3f}% "
            f"max={self.max_overhead * 100:.3f}% "
            f"aggregate={self.aggregate_overhead * 100:.3f}%"
        )


def summarize_overhead(hosts: Iterable[SimHost]) -> OverheadSummary:
    hosts = list(hosts)
    if not hosts:
        raise ValueError("no hosts to summarize")
    overheads = [h.cpu_overhead() for h in hosts]
    return OverheadSummary(
        hosts=len(hosts),
        mean_overhead=sum(overheads) / len(overheads),
        max_overhead=max(overheads),
        total_app_cpu=sum(h.app_cpu_seconds for h in hosts),
        total_scrub_cpu=sum(h.scrub_cpu_seconds for h in hosts),
    )


class OverheadSampler:
    """Samples per-host CPU ledgers periodically, producing a per-interval
    overhead time series (the shape a CPU-over-time figure plots)."""

    def __init__(self, loop: EventLoop, hosts: Sequence[SimHost], interval: float) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._hosts = list(hosts)
        self._last: dict[str, tuple[float, float]] = {
            h.name: (h.app_cpu_seconds, h.scrub_cpu_seconds) for h in self._hosts
        }
        #: (time, mean overhead over interval, max overhead over interval)
        self.series: list[tuple[float, float, float]] = []
        self._loop = loop
        self._handle = loop.call_every(interval, self._sample)

    def _sample(self) -> None:
        overheads = []
        for host in self._hosts:
            prev_app, prev_scrub = self._last[host.name]
            app = host.app_cpu_seconds
            scrub = host.scrub_cpu_seconds
            delta_app = app - prev_app
            delta_scrub = scrub - prev_scrub
            self._last[host.name] = (app, scrub)
            if delta_app > 0:
                overheads.append(delta_scrub / delta_app)
        if overheads:
            self.series.append(
                (self._loop.now, sum(overheads) / len(overheads), max(overheads))
            )

    def stop(self) -> None:
        self._handle.cancel()
