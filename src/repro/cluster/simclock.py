"""Discrete-event simulation loop and virtual clock.

The cluster simulation is deterministic: all activity — application
traffic, agent flushes, network deliveries, window closes — is driven
by callbacks scheduled on one :class:`EventLoop`.  Determinism is what
lets the experiments make exact assertions about who did what work
where, which physical testbeds cannot.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Optional

__all__ = ["EventLoop", "ScheduledCall"]


class ScheduledCall:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("when", "fn", "args", "cancelled", "seq")

    def __init__(self, when: float, seq: int, fn: Callable[..., Any], args: tuple) -> None:
        self.when = when
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "ScheduledCall") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class EventLoop:
    """A time-ordered callback queue with a virtual clock.

    Callbacks scheduled for the same instant run in scheduling order
    (FIFO), so runs are reproducible.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._queue: list[ScheduledCall] = []
        self._seq = itertools.count()
        self.processed = 0

    @property
    def now(self) -> float:
        return self._now

    def clock(self) -> float:
        """The clock callable to hand to agents/servers."""
        return self._now

    # -- scheduling ------------------------------------------------------------

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        if when < self._now:
            raise ValueError(
                f"cannot schedule in the past: {when} < now {self._now}"
            )
        call = ScheduledCall(when, next(self._seq), fn, args)
        heapq.heappush(self._queue, call)
        return call

    def call_later(self, delay: float, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, fn, *args)

    def call_every(
        self,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        start_after: Optional[float] = None,
        until: float = math.inf,
    ) -> ScheduledCall:
        """Run *fn* periodically; returns the handle of the *next* call
        (cancelling it stops the series)."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")

        state: dict[str, ScheduledCall] = {}
        first = self._now + (start_after if start_after is not None else interval)
        # Fire times are computed as first + k*interval (not by repeatedly
        # adding the interval) so long series do not accumulate float drift —
        # tick 100 of a 0.1 s series lands exactly on first + 10.0.
        tick_index = [0]

        def tick() -> None:
            fn(*args)
            tick_index[0] += 1
            nxt = first + tick_index[0] * interval
            if nxt <= until:
                state["handle"] = self.call_at(nxt, tick)

        handle = self.call_at(first, tick)
        state["handle"] = handle

        class _Series(ScheduledCall):
            __slots__ = ()

            def cancel(inner_self) -> None:  # noqa: N805
                state["handle"].cancel()

        series = _Series(first, -1, tick, ())
        return series

    # -- running --------------------------------------------------------------------

    def run_until(self, deadline: float) -> int:
        """Process every callback due at or before *deadline*; afterwards
        ``now == deadline``.  Returns the number of callbacks run."""
        if deadline < self._now:
            raise ValueError(f"deadline {deadline} is in the past (now {self._now})")
        ran = 0
        while self._queue and self._queue[0].when <= deadline:
            call = heapq.heappop(self._queue)
            if call.cancelled:
                continue
            self._now = call.when
            call.fn(*call.args)
            ran += 1
            self.processed += 1
        self._now = deadline
        return ran

    def run_for(self, duration: float) -> int:
        return self.run_until(self._now + duration)

    def drain(self, max_time: float = math.inf) -> int:
        """Run until the queue is empty (or *max_time*)."""
        ran = 0
        while self._queue:
            head = self._queue[0]
            if head.when > max_time:
                break
            ran += self.run_until(head.when)
        return ran

    @property
    def pending(self) -> int:
        return sum(1 for call in self._queue if not call.cancelled)
