"""Simulated network: data centers, links, message delivery.

Scrub spans "thousands of machines in many data centers across the
globe" (paper Section 4); what matters for the reproduction is that
host→central traffic pays realistic latency and that the bytes shipped
are accounted per link — the logging-baseline comparison (paper
Section 8.1) is largely an argument about cross-continental bytes.

Links are modelled as latency + bandwidth pairs per datacenter pair;
delivery time is ``latency + size/bandwidth``.  Messages between hosts
in the same datacenter use the intra-DC link spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .simclock import EventLoop

__all__ = ["LinkSpec", "LinkStats", "SimNetwork"]


@dataclass(frozen=True)
class LinkSpec:
    """One-way link characteristics."""

    latency_seconds: float
    bandwidth_bytes_per_second: float

    def __post_init__(self) -> None:
        if self.latency_seconds < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth_bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")

    def transfer_time(self, nbytes: int) -> float:
        return self.latency_seconds + nbytes / self.bandwidth_bytes_per_second


#: 10 GbE within a datacenter, sub-millisecond latency.
DEFAULT_INTRA_DC = LinkSpec(latency_seconds=0.0005, bandwidth_bytes_per_second=1.25e9)
#: Cross-continental WAN link: 80 ms, ~1 Gb/s effective.
DEFAULT_INTER_DC = LinkSpec(latency_seconds=0.080, bandwidth_bytes_per_second=1.25e8)


@dataclass
class LinkStats:
    messages: int = 0
    bytes: int = 0
    dropped_messages: int = 0
    dropped_bytes: int = 0


class SimNetwork:
    """Delivers messages between datacenters on the event loop."""

    def __init__(
        self,
        loop: EventLoop,
        intra_dc: LinkSpec = DEFAULT_INTRA_DC,
        inter_dc: LinkSpec = DEFAULT_INTER_DC,
    ) -> None:
        self._loop = loop
        self._intra = intra_dc
        self._inter = inter_dc
        self._links: dict[tuple[str, str], LinkSpec] = {}
        self.stats: dict[tuple[str, str], LinkStats] = {}
        self._partitioned: set[tuple[str, str]] = set()

    def set_link(self, src_dc: str, dst_dc: str, spec: LinkSpec, symmetric: bool = True) -> None:
        self._links[(src_dc, dst_dc)] = spec
        if symmetric:
            self._links[(dst_dc, src_dc)] = spec

    def link(self, src_dc: str, dst_dc: str) -> LinkSpec:
        spec = self._links.get((src_dc, dst_dc))
        if spec is not None:
            return spec
        return self._intra if src_dc == dst_dc else self._inter

    def transfer_time(self, src_dc: str, dst_dc: str, nbytes: int) -> float:
        return self.link(src_dc, dst_dc).transfer_time(nbytes)

    def deliver(
        self,
        src_dc: str,
        dst_dc: str,
        nbytes: int,
        fn: Callable[..., Any],
        *args: Any,
    ) -> float:
        """Schedule *fn* after the link delay; returns the delivery time.

        On a partitioned link the message is silently lost (counted in
        the link stats) — the failure mode host agents must tolerate by
        design: they never block on delivery.
        """
        stats = self.stats.setdefault((src_dc, dst_dc), LinkStats())
        if (src_dc, dst_dc) in self._partitioned:
            stats.dropped_messages += 1
            stats.dropped_bytes += nbytes
            return self._loop.now
        stats.messages += 1
        stats.bytes += nbytes
        delay = self.transfer_time(src_dc, dst_dc, nbytes)
        self._loop.call_later(delay, fn, *args)
        return self._loop.now + delay

    # -- failure injection --------------------------------------------------------

    def partition(self, src_dc: str, dst_dc: str, symmetric: bool = True) -> None:
        """Drop all traffic on this link until :meth:`heal`."""
        self._partitioned.add((src_dc, dst_dc))
        if symmetric:
            self._partitioned.add((dst_dc, src_dc))

    def heal(self, src_dc: str, dst_dc: str, symmetric: bool = True) -> None:
        self._partitioned.discard((src_dc, dst_dc))
        if symmetric:
            self._partitioned.discard((dst_dc, src_dc))

    def is_partitioned(self, src_dc: str, dst_dc: str) -> bool:
        return (src_dc, dst_dc) in self._partitioned

    # -- accounting -----------------------------------------------------------------

    def total_bytes(self, cross_dc_only: bool = False) -> int:
        return sum(
            stats.bytes
            for (src, dst), stats in self.stats.items()
            if not cross_dc_only or src != dst
        )

    def total_messages(self, cross_dc_only: bool = False) -> int:
        return sum(
            stats.messages
            for (src, dst), stats in self.stats.items()
            if not cross_dc_only or src != dst
        )
