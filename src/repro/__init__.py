"""repro — a reproduction of *Scrub: Online TroubleShooting for Large
Mission-Critical Applications* (Satish et al., EuroSys 2018).

Package layout:

* :mod:`repro.core`       — Scrub itself (events, query language, host
  agents, ScrubCentral, probabilistic machinery)
* :mod:`repro.cluster`    — deterministic simulated cluster substrate
* :mod:`repro.adplatform` — a Turn-like ad bidding platform that generates
  the paper's event workloads
* :mod:`repro.baselines`  — the log-everything + batch-analysis baseline

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from .core import ManualClock, Scrub, ScrubQueryServer

__version__ = "1.0.0"

__all__ = ["ManualClock", "Scrub", "ScrubQueryServer", "__version__"]
