"""Scrub event type definitions for the ad platform.

"Tens of Scrub event types are defined" at Turn (paper Section 7); the
case studies use ``bid`` (Fig. 1, generated at the BidServers),
``auction`` and ``exclusion`` (AdServers), ``impression`` and ``click``
(PresentationServers), and — for the incorrectly-set-field case study
(Section 8.6) — profile updates at the ProfileStore.

The ``bid`` schema extends paper Fig. 1's five fields with ``user_id``
and ``line_item_id``: the spam case study groups bids by user id and
the cannibalization study selects by line item, so those fields must be
on the event (the paper's Fig. 9/19 queries reference them).
"""

from __future__ import annotations

from ..core.events import EventRegistry, EventSchema

__all__ = [
    "BID",
    "AUCTION",
    "EXCLUSION",
    "IMPRESSION",
    "CLICK",
    "PROFILE_UPDATE",
    "ALL_SCHEMAS",
    "make_platform_registry",
]

#: Bid response sent back to an exchange (BidServers; paper Fig. 1).
BID = EventSchema(
    "bid",
    [
        ("exchange_id", "long"),
        ("city", "string"),
        ("country", "string"),
        ("bid_price", "double"),
        ("campaign_id", "long"),
        ("user_id", "long"),
        ("line_item_id", "long"),
        ("publisher_id", "long"),
        # Exchange-link round-trip attributed to this request; NULL on
        # bids logged by call sites that predate latency tracking.
        ("latency_ms", "double"),
    ],
    doc="A bid response returned to an ad exchange.",
)

#: One internal auction: participants with their bid prices (AdServers).
AUCTION = EventSchema(
    "auction",
    [
        ("user_id", "long"),
        ("exchange_id", "long"),
        ("line_item_ids", "list<long>"),
        ("bid_prices", "list<double>"),
        ("winner_line_item_id", "long"),
        ("winner_price", "double"),
    ],
    doc="An internal auction among line items that passed filtering.",
)

#: One line item excluded during the filtering phase (AdServers).
EXCLUSION = EventSchema(
    "exclusion",
    [
        ("line_item_id", "long"),
        ("campaign_id", "long"),
        ("reason", "string"),
        ("exchange_id", "long"),
        ("publisher_id", "long"),
        ("user_id", "long"),
    ],
    doc="A line item filtered out of a bid request, with the reason.",
)

#: An ad actually shown to the user (PresentationServers).
IMPRESSION = EventSchema(
    "impression",
    [
        ("line_item_id", "long"),
        ("campaign_id", "long"),
        ("exchange_id", "long"),
        ("publisher_id", "long"),
        ("user_id", "long"),
        ("cost", "double"),
    ],
    doc="A served ad impression with its clearing cost.",
)

#: A user click on a served ad (PresentationServers).
CLICK = EventSchema(
    "click",
    [
        ("line_item_id", "long"),
        ("campaign_id", "long"),
        ("exchange_id", "long"),
        ("user_id", "long"),
    ],
    doc="A click on a served ad.",
)

#: A frequency-counter update in the user's profile (ProfileStore).
PROFILE_UPDATE = EventSchema(
    "profile_update",
    [
        ("user_id", "long"),
        ("line_item_id", "long"),
        ("frequency_count", "long"),
        ("day", "long"),
        ("source", "string"),
    ],
    doc="A write of the ads-served-per-day counter in a user profile.",
)

ALL_SCHEMAS: tuple[EventSchema, ...] = (
    BID,
    AUCTION,
    EXCLUSION,
    IMPRESSION,
    CLICK,
    PROFILE_UPDATE,
)


def make_platform_registry() -> EventRegistry:
    """A fresh event registry with every platform event type declared."""
    registry = EventRegistry()
    for schema in ALL_SCHEMAS:
        registry.register(schema)
    return registry
