"""Workload scenarios: one builder per case study / experiment.

Each builder assembles an :class:`AdPlatform` on a fresh simulated
cluster, provisions the entities the case study needs, wires the
exchange traffic, and returns a :class:`Scenario` whose ``extras``
carry the handles the experiment asserts on (the bots, the focal line
items, the new exchange, ...).  The benchmarks and examples all build
on these, so the workload parameters live in exactly one place.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from .entities import Campaign, Exchange, LineItem, Targeting, User
from .exchangesim import (
    BotSpec,
    ExchangeTraffic,
    make_exchanges,
    make_publishers,
    make_users,
)
from .ids import IdSpace
from .models import BaselineModel, HotItemModel, ImprovedModel, TargetingModel
from .platform import AdPlatform, PodSpec

__all__ = [
    "Scenario",
    "make_line_items",
    "spam_scenario",
    "new_exchange_scenario",
    "ab_test_scenario",
    "exclusion_scenario",
    "cannibalization_scenario",
    "frequency_cap_scenario",
    "perf_scenario",
    "rca_misconfigured_campaign_scenario",
    "rca_bot_surge_scenario",
    "rca_bad_exchange_scenario",
    "RCA_SCENARIOS",
]


@dataclass
class Scenario:
    """A ready-to-run workload."""

    platform: AdPlatform
    traffic: ExchangeTraffic
    description: str
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def cluster(self):
        return self.platform.cluster

    def start(self, until: float) -> None:
        self.traffic.start(until)


def make_line_items(
    ids: IdSpace,
    count: int,
    seed: int = 31,
    campaign_count: int = 8,
    advisory_range: tuple[float, float] = (0.5, 5.0),
    exchanges: list[Exchange] | None = None,
) -> tuple[list[LineItem], list[Campaign]]:
    """A varied line-item population.

    Roughly a third of line items are country-restricted, a third
    segment-restricted and a fifth exchange-restricted (overlapping),
    so the filtering phase produces a rich exclusion-reason mix.
    """
    rng = random.Random(seed)
    campaigns = [
        Campaign(ids.next("campaign"), advertiser=f"adv{i}")
        for i in range(campaign_count)
    ]
    line_items: list[LineItem] = []
    countries_pool = ["US", "GB", "DE", "FR", "JP", "BR"]
    for _ in range(count):
        campaign = rng.choice(campaigns)
        countries = (
            frozenset(rng.sample(countries_pool, rng.randint(1, 2)))
            if rng.random() < 0.35
            else None
        )
        segments = (
            frozenset(rng.sample(range(1, 41), rng.randint(2, 6)))
            if rng.random() < 0.35
            else None
        )
        exchange_ids = None
        if exchanges and rng.random() < 0.20:
            exchange_ids = frozenset(
                e.exchange_id for e in rng.sample(exchanges, rng.randint(1, 2))
            )
        line_item = LineItem(
            line_item_id=ids.next("line_item"),
            campaign_id=campaign.campaign_id,
            advisory_price=rng.uniform(*advisory_range),
            targeting=Targeting(
                countries=countries, segments=segments, exchanges=exchange_ids
            ),
        )
        campaign.add(line_item)
        line_items.append(line_item)
    return line_items, campaigns


def _base_platform(
    pods: list[PodSpec],
    line_items: list[LineItem],
    campaigns: list[Campaign],
    users: list[User],
    exchanges: list[Exchange],
    pageview_rate: float,
    ids: IdSpace,
    seconds_per_day: float = 86_400.0,
    bots: tuple[BotSpec, ...] = (),
    seed: int = 23,
) -> tuple[AdPlatform, ExchangeTraffic]:
    platform = AdPlatform(
        pods=pods,
        line_items=line_items,
        campaigns=campaigns,
        seconds_per_day=seconds_per_day,
    )
    publishers = make_publishers(ids)
    traffic = ExchangeTraffic(
        loop=platform.cluster.loop,
        users=users,
        exchanges=exchanges,
        publishers=publishers,
        sink=platform.handle_bid_request,
        pageviews_per_second=pageview_rate,
        request_ids=platform.request_ids,
        seed=seed,
        bots=bots,
    )
    return platform, traffic


# -- 8.1: spam detection --------------------------------------------------------------


def spam_scenario(
    users: int = 400,
    pageview_rate: float = 12.0,
    line_items: int = 40,
    bot_count: int = 2,
    bot_batch: int = 60,
    bot_period: float = 2.0,
    seed: int = 101,
) -> Scenario:
    """Human page-view traffic plus *bot_count* bots issuing large
    high-frequency request batches (paper Section 8.1 / Fig. 10)."""
    ids = IdSpace()
    population = make_users(users, ids, seed=seed)
    exchanges = make_exchanges(ids)
    items, campaigns = make_line_items(ids, line_items, seed=seed, exchanges=exchanges)

    bot_users = []
    bots = []
    rng = random.Random(seed + 1)
    for i in range(bot_count):
        bot = User(
            user_id=ids.next("user"),
            city="Unknown",
            country="US",
            segments=frozenset(rng.sample(range(1, 41), 3)),
            is_bot=True,
        )
        bot_users.append(bot)
        bots.append(
            BotSpec(user=bot, batch_size=bot_batch, period=bot_period * (1 + 0.5 * i))
        )

    pods = [PodSpec("main", TargetingModel("prod"), bidservers=2, adservers=2)]
    platform, traffic = _base_platform(
        pods, items, campaigns, population, exchanges, pageview_rate, ids,
        bots=tuple(bots), seed=seed,
    )
    return Scenario(
        platform,
        traffic,
        "spam bots hidden in human bid-request traffic (paper 8.1)",
        extras={"bots": bot_users, "humans": population},
    )


# -- 8.2: validating a new ad exchange ---------------------------------------------------


def new_exchange_scenario(
    users: int = 400,
    pageview_rate: float = 15.0,
    line_items: int = 40,
    activation_time: float = 550.0,
    presentationservers: int = 10,
    seed: int = 202,
) -> Scenario:
    """Exchanges A, B, C live from t=0; exchange D activates at
    *activation_time* (paper Section 8.2 / Fig. 12)."""
    ids = IdSpace()
    population = make_users(users, ids, seed=seed)
    exchanges = make_exchanges(ids, names=("A", "B", "C", "D"), shares=(1.0, 0.8, 0.6, 1.2))
    new_exchange = exchanges[-1]
    new_exchange.active_from = activation_time
    items, campaigns = make_line_items(ids, line_items, seed=seed)

    pods = [
        PodSpec(
            "main",
            TargetingModel("prod"),
            bidservers=2,
            adservers=2,
            presentationservers=presentationservers,
        )
    ]
    platform, traffic = _base_platform(
        pods, items, campaigns, population, exchanges, pageview_rate, ids, seed=seed
    )
    return Scenario(
        platform,
        traffic,
        "a new ad exchange comes online mid-trace (paper 8.2)",
        extras={"new_exchange": new_exchange, "exchanges": exchanges},
    )


# -- 8.3: A/B testing of ad targeting models ----------------------------------------------


def ab_test_scenario(
    users: int = 600,
    pageview_rate: float = 20.0,
    line_items: int = 30,
    seed: int = 303,
) -> Scenario:
    """Two pods: model A (baseline) and model B (improved) — plus one
    broadly-targeted focal line item whose CPM/CTR the A/B queries
    compare (paper Section 8.3 / Figs. 13-15)."""
    ids = IdSpace()
    population = make_users(users, ids, seed=seed)
    exchanges = make_exchanges(ids)
    # Price geometry tuned so the focal item wins auctions only when its
    # model scores the user highly: background tops out well below the
    # focal/rival bands, and the rival's band overlaps the focal's, so a
    # model that tracks true affinity (B) funnels the focal item's
    # impressions to genuinely clickier users.
    items, campaigns = make_line_items(
        ids, line_items, seed=seed, advisory_range=(0.5, 2.5)
    )

    focal = LineItem(
        line_item_id=ids.next("line_item"),
        campaign_id=campaigns[0].campaign_id,
        advisory_price=2.8,
        targeting=Targeting(),  # broad: competes in every auction
    )
    campaigns[0].add(focal)
    rival = LineItem(
        line_item_id=ids.next("line_item"),
        campaign_id=campaigns[1].campaign_id,
        advisory_price=2.9,
        targeting=Targeting(),
    )
    campaigns[1].add(rival)
    items = items + [focal, rival]

    model_a = BaselineModel("model-A")
    model_b = ImprovedModel("model-B")
    pods = [
        PodSpec("pod-A", model_a, bidservers=2, adservers=2, presentationservers=3),
        PodSpec("pod-B", model_b, bidservers=2, adservers=2, presentationservers=3),
    ]
    platform, traffic = _base_platform(
        pods, items, campaigns, population, exchanges, pageview_rate, ids, seed=seed
    )
    return Scenario(
        platform,
        traffic,
        "A/B test: targeting model A vs B on disjoint server sets (paper 8.3)",
        extras={
            "focal_line_item": focal,
            "model_a_hosts": platform.pods[0].host_names(),
            "model_b_hosts": platform.pods[1].host_names(),
        },
    )


# -- 8.4: line item exclusions -----------------------------------------------------------


def exclusion_scenario(
    users: int = 300,
    pageview_rate: float = 10.0,
    line_items: int = 120,
    seed: int = 404,
) -> Scenario:
    """A large line-item population so every bid request produces many
    exclusion events (paper Section 8.4 / Fig. 16)."""
    ids = IdSpace()
    population = make_users(users, ids, seed=seed)
    exchanges = make_exchanges(ids)
    items, campaigns = make_line_items(ids, line_items, seed=seed, exchanges=exchanges)

    pods = [PodSpec("main", TargetingModel("prod"), bidservers=2, adservers=3)]
    platform, traffic = _base_platform(
        pods, items, campaigns, population, exchanges, pageview_rate, ids, seed=seed
    )
    return Scenario(
        platform,
        traffic,
        "exclusion-reason distribution via bid ⋈ exclusion (paper 8.4)",
        extras={"exchanges": exchanges, "line_items": items},
    )


# -- 8.5: line item cannibalization ---------------------------------------------------------


def cannibalization_scenario(
    users: int = 300,
    pageview_rate: float = 12.0,
    background_line_items: int = 20,
    lam_advisory: float = 1.0,
    rival_advisory: float = 4.0,
    seed: int = 505,
) -> Scenario:
    """Line item λ has relaxed targeting and budget but a low advisory
    price; rival line items with near-identical targeting price far
    above it, so λ's whole band loses every auction (paper 8.5)."""
    ids = IdSpace()
    population = make_users(users, ids, seed=seed)
    exchanges = make_exchanges(ids)
    items, campaigns = make_line_items(
        ids, background_line_items, seed=seed,
        advisory_range=(1.5, 3.0),
    )

    shared_targeting = Targeting()  # both pass filtering everywhere
    lam = LineItem(
        line_item_id=ids.next("line_item"),
        campaign_id=campaigns[0].campaign_id,
        advisory_price=lam_advisory,
        targeting=shared_targeting,
    )
    campaigns[0].add(lam)
    rivals = []
    for i in range(3):
        rival = LineItem(
            line_item_id=ids.next("line_item"),
            campaign_id=campaigns[1].campaign_id,
            advisory_price=rival_advisory + 0.3 * i,
            targeting=shared_targeting,
        )
        campaigns[1].add(rival)
        rivals.append(rival)

    items = items + [lam] + rivals
    pods = [PodSpec("main", TargetingModel("prod"), bidservers=2, adservers=2)]
    platform, traffic = _base_platform(
        pods, items, campaigns, population, exchanges, pageview_rate, ids, seed=seed
    )
    return Scenario(
        platform,
        traffic,
        "line item λ cannibalized by higher-advisory rivals (paper 8.5)",
        extras={"lam": lam, "rivals": rivals},
    )


# -- 8.6: incorrectly set frequency-cap field ---------------------------------------------------


def frequency_cap_scenario(
    users: int = 150,
    pageview_rate: float = 15.0,
    cap: int = 1,
    corruption_rate: float = 0.5,
    seconds_per_day: float = 300.0,
    feed_period: float = 20.0,
    seed: int = 606,
) -> Scenario:
    """A frequency-capped line item plus a corrupt external profile feed
    that resets served counters, letting ads exceed the cap (paper 8.6).

    Days are accelerated (*seconds_per_day*) so multi-day behaviour fits
    a short trace.  The feed periodically re-syncs profile counters; a
    fraction of those writes are corrupt (store zero).
    """
    ids = IdSpace()
    population = make_users(users, ids, seed=seed)
    exchanges = make_exchanges(ids)
    items, campaigns = make_line_items(ids, 15, seed=seed, advisory_range=(0.5, 1.5))

    capped = LineItem(
        line_item_id=ids.next("line_item"),
        campaign_id=campaigns[0].campaign_id,
        advisory_price=6.0,  # wins auctions it enters, making cap violations visible
        targeting=Targeting(),
        frequency_cap=cap,
    )
    campaigns[0].add(capped)
    items = items + [capped]

    pods = [PodSpec("main", TargetingModel("prod"), bidservers=2, adservers=2)]
    platform, traffic = _base_platform(
        pods, items, campaigns, population, exchanges, pageview_rate, ids,
        seconds_per_day=seconds_per_day, seed=seed,
    )
    platform.profiles.install_corruption(corruption_rate, seed=seed)

    # The external feed: re-writes each recently-served counter with its
    # current value (a no-op when healthy; corruption makes some writes 0).
    def feed_sync() -> None:
        now = platform.cluster.loop.now
        day = int(now // seconds_per_day)
        for user_id, prof in list(platform.profiles._profiles.items()):  # noqa: SLF001
            count = prof.served.get((capped.line_item_id, day))
            if count:
                platform.profiles.apply_feed_write(
                    user_id, capped.line_item_id, count, day, now
                )

    platform.cluster.loop.call_every(feed_period, feed_sync)
    return Scenario(
        platform,
        traffic,
        "corrupt profile feed breaks a frequency cap (paper 8.6)",
        extras={"capped_line_item": capped, "cap": cap},
    )


# -- Section 9: performance ------------------------------------------------------------------


def perf_scenario(
    users: int = 300,
    pageview_rate: float = 20.0,
    line_items: int = 40,
    bidservers: int = 4,
    adservers: int = 4,
    seed: int = 707,
) -> Scenario:
    """A plain single-pod deployment for the overhead/latency sweeps."""
    ids = IdSpace()
    population = make_users(users, ids, seed=seed)
    exchanges = make_exchanges(ids)
    items, campaigns = make_line_items(ids, line_items, seed=seed, exchanges=exchanges)
    pods = [
        PodSpec(
            "main",
            TargetingModel("prod"),
            bidservers=bidservers,
            adservers=adservers,
        )
    ]
    platform, traffic = _base_platform(
        pods, items, campaigns, population, exchanges, pageview_rate, ids, seed=seed
    )
    platform.record_outcomes = True
    return Scenario(
        platform,
        traffic,
        "plain deployment for CPU-overhead and latency measurements (paper §9)",
        extras={},
    )


# -- RCA fault library ------------------------------------------------------------------
#
# Three seeded, mid-trace faults for the automated root-cause driver
# (repro.rca).  Each scenario's ``extras`` carry the contract the driver
# and its tests rely on:
#
# * ``fault_time``   — virtual-time instant the fault switches on;
# * ``truth``        — acceptable root-cause answers, as a list of
#                      (dimension, value) pairs: a report naming ANY of
#                      them has found the cause;
# * ``symptom``      — a plain-data hint for building the SymptomSpec:
#                      (event_type, metric, direction).
#
# Everything is keyed off the scenario seed and virtual time — no wall
# clock, no global RNG — so every run reproduces bit-identically.


def rca_misconfigured_campaign_scenario(
    users: int = 300,
    pageview_rate: float = 10.0,
    line_items: int = 30,
    fault_time: float = 120.0,
    seed: int = 808,
) -> Scenario:
    """A high-CTR focal campaign's targeting is edited to a nonexistent
    country mid-trace; its line items stop passing filtering, and the
    platform's click rate collapses.  Truth: the focal campaign."""
    ids = IdSpace()
    population = make_users(users, ids, seed=seed)
    exchanges = make_exchanges(ids)
    items, campaigns = make_line_items(
        ids, line_items, seed=seed, advisory_range=(0.5, 2.5)
    )

    focal_campaign = Campaign(ids.next("campaign"), advertiser="focal")
    focal_items = []
    for advisory in (5.5, 5.8):
        item = LineItem(
            line_item_id=ids.next("line_item"),
            campaign_id=focal_campaign.campaign_id,
            advisory_price=advisory,  # outbids the background band
            targeting=Targeting(),    # broad: competes in every auction
        )
        focal_campaign.add(item)
        focal_items.append(item)
    campaigns = campaigns + [focal_campaign]
    items = items + focal_items

    model = HotItemModel(
        "prod",
        hot_line_item_ids=frozenset(i.line_item_id for i in focal_items),
    )
    pods = [PodSpec("main", model, bidservers=2, adservers=2, presentationservers=3)]
    platform, traffic = _base_platform(
        pods, items, campaigns, population, exchanges, pageview_rate, ids, seed=seed
    )

    def misconfigure() -> None:
        # The operator "fat-fingers" the country list: no user matches.
        for item in focal_items:
            item.targeting = Targeting(countries=frozenset({"ZZ"}))

    platform.cluster.loop.call_at(fault_time, misconfigure)
    return Scenario(
        platform,
        traffic,
        "a campaign's targeting is misconfigured mid-trace; clicks collapse",
        extras={
            "fault_time": fault_time,
            "truth": [("campaign_id", focal_campaign.campaign_id)]
            + [("line_item_id", i.line_item_id) for i in focal_items],
            "symptom": ("click", "count", "down"),
            "focal_campaign": focal_campaign,
            "focal_items": focal_items,
        },
    )


def rca_bot_surge_scenario(
    users: int = 400,
    pageview_rate: float = 10.0,
    line_items: int = 30,
    fault_time: float = 120.0,
    bot_count: int = 3,
    bot_batch: int = 40,
    bot_period: float = 2.0,
    seed: int = 909,
) -> Scenario:
    """Bots from one user segment (city "Unknown") start bursting bid
    requests at *fault_time*; bid volume surges.  Truth: the bot city
    (or any individual bot user id)."""
    ids = IdSpace()
    population = make_users(users, ids, seed=seed)
    exchanges = make_exchanges(ids)
    items, campaigns = make_line_items(ids, line_items, seed=seed, exchanges=exchanges)

    rng = random.Random(seed + 1)
    bot_users = []
    bots = []
    for i in range(bot_count):
        bot = User(
            user_id=ids.next("user"),
            city="Unknown",
            country="US",
            segments=frozenset(rng.sample(range(1, 41), 3)),
            is_bot=True,
        )
        bot_users.append(bot)
        bots.append(
            BotSpec(
                user=bot,
                batch_size=bot_batch,
                period=bot_period * (1 + 0.25 * i),
                active_from=fault_time,
            )
        )

    pods = [PodSpec("main", TargetingModel("prod"), bidservers=2, adservers=2)]
    platform, traffic = _base_platform(
        pods, items, campaigns, population, exchanges, pageview_rate, ids,
        bots=tuple(bots), seed=seed,
    )
    return Scenario(
        platform,
        traffic,
        "a bot surge from one user segment begins mid-trace; bid volume spikes",
        extras={
            "fault_time": fault_time,
            "truth": [("city", "Unknown")]
            + [("user_id", b.user_id) for b in bot_users],
            "symptom": ("bid", "count", "up"),
            "bots": bot_users,
        },
    )


def rca_bad_exchange_scenario(
    users: int = 300,
    pageview_rate: float = 10.0,
    line_items: int = 30,
    fault_time: float = 120.0,
    degraded_factor: float = 6.0,
    seed: int = 1010,
) -> Scenario:
    """One exchange's link degrades at *fault_time*: its per-request
    latency multiplies by *degraded_factor*, dragging the platform-wide
    bid latency tail up.  Truth: the degraded exchange."""
    ids = IdSpace()
    population = make_users(users, ids, seed=seed)
    exchanges = make_exchanges(ids)
    bad = exchanges[2]
    bad.degraded_from = fault_time
    bad.degraded_factor = degraded_factor
    items, campaigns = make_line_items(ids, line_items, seed=seed)

    pods = [PodSpec("main", TargetingModel("prod"), bidservers=2, adservers=2)]
    platform, traffic = _base_platform(
        pods, items, campaigns, population, exchanges, pageview_rate, ids, seed=seed
    )
    return Scenario(
        platform,
        traffic,
        "one exchange link degrades mid-trace; bid latency p95 climbs",
        extras={
            "fault_time": fault_time,
            "truth": [("exchange_id", bad.exchange_id)],
            "symptom": ("bid", ("quantile", "latency_ms", 0.95), "up"),
            "bad_exchange": bad,
            "exchanges": exchanges,
        },
    )


#: Name -> builder, for the example script and the CI smoke step.
RCA_SCENARIOS = {
    "misconfigured_campaign": rca_misconfigured_campaign_scenario,
    "bot_surge": rca_bot_surge_scenario,
    "bad_exchange": rca_bad_exchange_scenario,
}
