"""AdServer: filtering (exclusions) and the internal auction.

On each bid request the AdServer evaluates every active line item;
failures emit ``exclusion`` events, survivors compete in the internal
auction, which emits one ``auction`` event (paper Sections 7, 8.4,
8.5).  All events are logged through the host's Scrub agent with the
*request's* id, so bid/exclusion/auction events equi-join at
ScrubCentral even though they are generated on different machines.
"""

from __future__ import annotations

from typing import Optional

from ..cluster.host import SimHost
from .auction import AuctionResult, InternalAuction
from .entities import BidRequest, LineItem
from .models import TargetingModel
from .targeting import TargetingFilter

__all__ = ["AdServer"]

#: App CPU charged per line item evaluated in the filtering phase.
FILTER_COST_PER_ITEM = 2.0e-6
#: App CPU charged per auction participant (scoring + pricing).
AUCTION_COST_PER_ITEM = 4.0e-6
#: Fixed app CPU per request (parsing, profile fetch, response).
BASE_REQUEST_COST = 300.0e-6


class AdServer:
    """One AdServer instance bound to a simulated host."""

    def __init__(
        self,
        host: SimHost,
        line_items: list[LineItem],
        targeting_filter: TargetingFilter,
        model: TargetingModel,
    ) -> None:
        if host.agent is None:
            raise ValueError(f"host {host.name} has no Scrub agent attached")
        self.host = host
        self.line_items = line_items
        self.filter = targeting_filter
        self.auction = InternalAuction(model)
        self.requests_processed = 0

    @property
    def model(self) -> TargetingModel:
        return self.auction.model

    def process(self, request: BidRequest) -> Optional[AuctionResult]:
        """Filter + auction for one bid request; returns the auction
        result, or None when no line item survived filtering."""
        host = self.host
        agent = host.agent
        assert agent is not None
        self.requests_processed += 1

        host.charge_app(
            BASE_REQUEST_COST + FILTER_COST_PER_ITEM * len(self.line_items)
        )
        passing, excluded = self.filter.split(self.line_items, request)

        for line_item, reason in excluded:
            agent.log(
                "exclusion",
                request_id=request.request_id,
                timestamp=request.timestamp,
                line_item_id=line_item.line_item_id,
                campaign_id=line_item.campaign_id,
                reason=reason.value,
                exchange_id=request.exchange.exchange_id,
                publisher_id=request.publisher.publisher_id,
                user_id=request.user.user_id,
            )

        if not passing:
            return None
        host.charge_app(AUCTION_COST_PER_ITEM * len(passing))
        result = self.auction.run(request.user, passing)
        assert result is not None
        agent.log(
            "auction",
            request_id=request.request_id,
            timestamp=request.timestamp,
            user_id=request.user.user_id,
            exchange_id=request.exchange.exchange_id,
            line_item_ids=result.line_item_ids,
            bid_prices=result.bid_prices,
            winner_line_item_id=result.winner.line_item.line_item_id,
            winner_price=result.winner.bid_price,
        )
        return result
