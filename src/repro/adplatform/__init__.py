"""Turn-like ad bidding platform: the application Scrub troubleshoots."""

from .adserver import AdServer
from .auction import AuctionEntry, AuctionResult, InternalAuction
from .bidserver import BidOutcome, BidServer
from .entities import BidRequest, Campaign, Exchange, LineItem, Publisher, Targeting, User
from .exchangesim import (
    BotSpec,
    ExchangeTraffic,
    make_exchanges,
    make_publishers,
    make_users,
)
from .ids import IdSpace, RequestIdGenerator
from .models import BaselineModel, ImprovedModel, TargetingModel
from .platform import AdPlatform, Pod, PodSpec
from .presentation import PresentationServer
from .profilestore import ProfileStore, UserProfile
from .scrub_events import ALL_SCHEMAS, make_platform_registry
from .targeting import ExclusionReason, TargetingFilter
from .workload import (
    Scenario,
    ab_test_scenario,
    cannibalization_scenario,
    exclusion_scenario,
    frequency_cap_scenario,
    make_line_items,
    new_exchange_scenario,
    perf_scenario,
    spam_scenario,
)

__all__ = [
    "ALL_SCHEMAS",
    "AdPlatform",
    "AdServer",
    "AuctionEntry",
    "AuctionResult",
    "BaselineModel",
    "BidOutcome",
    "BidRequest",
    "BidServer",
    "BotSpec",
    "Campaign",
    "Exchange",
    "ExchangeTraffic",
    "ExclusionReason",
    "IdSpace",
    "ImprovedModel",
    "InternalAuction",
    "LineItem",
    "Pod",
    "PodSpec",
    "PresentationServer",
    "ProfileStore",
    "Publisher",
    "RequestIdGenerator",
    "Scenario",
    "TargetingFilter",
    "TargetingModel",
    "Targeting",
    "User",
    "UserProfile",
    "ab_test_scenario",
    "cannibalization_scenario",
    "exclusion_scenario",
    "frequency_cap_scenario",
    "make_exchanges",
    "make_line_items",
    "make_platform_registry",
    "make_publishers",
    "make_users",
    "new_exchange_scenario",
    "perf_scenario",
    "spam_scenario",
]
