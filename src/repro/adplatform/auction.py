"""The internal auction (paper Section 8.5).

Line items that pass filtering compete in an internal auction: each is
scored by the targeting model, and its bid price is the preconfigured
advisory price adjusted by the score — "in practice, the bid prices for
a line item winning an internal auction move in a narrow band around
the preconfigured advisory price".  The highest bid wins and is sent in
the bid response.

The narrow band is what makes cannibalization possible: if line item
A's advisory price is well above λ's, A's entire band sits above λ's
band and λ never wins — the situation the Fig. 18/19 query diagnoses.
"""

from __future__ import annotations

from dataclasses import dataclass

from .entities import LineItem, User
from .models import TargetingModel

__all__ = ["AuctionEntry", "AuctionResult", "InternalAuction", "PRICE_BAND"]

#: Bid prices move within ±this fraction of the advisory price.
PRICE_BAND = 0.15


@dataclass(frozen=True)
class AuctionEntry:
    line_item: LineItem
    score: float
    bid_price: float


@dataclass(frozen=True)
class AuctionResult:
    entries: tuple[AuctionEntry, ...]
    winner: AuctionEntry

    @property
    def line_item_ids(self) -> list[int]:
        return [e.line_item.line_item_id for e in self.entries]

    @property
    def bid_prices(self) -> list[float]:
        return [e.bid_price for e in self.entries]


class InternalAuction:
    """Scores participants and picks the winner."""

    def __init__(self, model: TargetingModel) -> None:
        self.model = model

    def price_of(self, line_item: LineItem, score: float) -> float:
        """Advisory price adjusted by score, inside the narrow band:
        score 0 -> advisory·(1-band), score 1 -> advisory·(1+band)."""
        return line_item.advisory_price * (1.0 + PRICE_BAND * (2.0 * score - 1.0))

    def run(self, user: User, participants: list[LineItem]) -> AuctionResult | None:
        """Run one auction; None when there are no participants."""
        if not participants:
            return None
        entries = []
        for line_item in participants:
            score = self.model.score(user, line_item)
            entries.append(
                AuctionEntry(line_item, score, self.price_of(line_item, score))
            )
        winner = max(
            entries, key=lambda e: (e.bid_price, -e.line_item.line_item_id)
        )
        return AuctionResult(tuple(entries), winner)
