"""Domain entities of the ad bidding platform (paper Section 7).

A *campaign* groups *line items*; each line item has targeting
criteria, an advisory bid price, a daily frequency cap and a budget.
*Exchanges* send bid requests on behalf of *users* viewing pages on
*publishers*; the platform answers with a bid for one line item's ad.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "BidRequest",
    "Campaign",
    "Exchange",
    "LineItem",
    "Publisher",
    "Targeting",
    "User",
]


@dataclass
class User:
    """An end user (browser/device) as seen by the platform."""

    user_id: int
    city: str
    country: str
    segments: frozenset[int] = frozenset()
    is_bot: bool = False


@dataclass
class Exchange:
    """An ad exchange sending bid requests.

    ``active_from`` supports the new-exchange-integration case study
    (paper Section 8.2): before that instant the exchange sends nothing.

    ``base_latency_ms`` is the exchange connection's typical round-trip
    contribution to bid handling; ``degraded_factor`` multiplies it from
    ``degraded_from`` onward, modelling one exchange link going bad (the
    RCA bad-exchange fault).
    """

    exchange_id: int
    name: str
    traffic_share: float = 1.0
    active_from: float = 0.0
    base_latency_ms: float = 8.0
    degraded_factor: float = 1.0
    degraded_from: Optional[float] = None

    def is_active(self, now: float) -> bool:
        return now >= self.active_from

    def latency_scale(self, now: float) -> float:
        """Multiplier on ``base_latency_ms`` in effect at time *now*."""
        if self.degraded_from is not None and now >= self.degraded_from:
            return self.degraded_factor
        return 1.0


@dataclass
class Publisher:
    publisher_id: int
    name: str


@dataclass
class Targeting:
    """Line-item targeting criteria evaluated in the filtering phase."""

    countries: Optional[frozenset[str]] = None   # None = any
    segments: Optional[frozenset[int]] = None    # user must have one of these
    exchanges: Optional[frozenset[int]] = None   # None = any exchange

    def describe(self) -> str:
        parts = []
        if self.countries is not None:
            parts.append(f"countries={sorted(self.countries)}")
        if self.segments is not None:
            parts.append(f"segments={sorted(self.segments)}")
        if self.exchanges is not None:
            parts.append(f"exchanges={sorted(self.exchanges)}")
        return ", ".join(parts) or "any"


@dataclass
class LineItem:
    """A bid-able advertising line item.

    ``advisory_price`` is the preconfigured price around which auction
    bids move in a narrow band (paper Section 8.5); ``frequency_cap``
    is ads per user per day (Section 8.6); ``daily_budget`` bounds
    spend.
    """

    line_item_id: int
    campaign_id: int
    advisory_price: float
    targeting: Targeting = field(default_factory=Targeting)
    frequency_cap: Optional[int] = None
    daily_budget: Optional[float] = None
    spent_today: float = 0.0
    active: bool = True

    def budget_remaining(self) -> Optional[float]:
        if self.daily_budget is None:
            return None
        return self.daily_budget - self.spent_today

    def has_budget(self, price: float) -> bool:
        remaining = self.budget_remaining()
        return remaining is None or remaining >= price

    def record_spend(self, amount: float) -> None:
        self.spent_today += amount


@dataclass
class Campaign:
    campaign_id: int
    advertiser: str
    line_items: list[LineItem] = field(default_factory=list)

    def add(self, line_item: LineItem) -> LineItem:
        if line_item.campaign_id != self.campaign_id:
            raise ValueError(
                f"line item {line_item.line_item_id} belongs to campaign "
                f"{line_item.campaign_id}, not {self.campaign_id}"
            )
        self.line_items.append(line_item)
        return line_item


@dataclass(frozen=True)
class BidRequest:
    """One request for a bid on one ad slot, as sent by an exchange.

    ``exchange_latency_ms`` is the exchange-link round-trip time the
    traffic generator attributed to this request; BidServers report it
    on the ``bid`` event so latency regressions are queryable per
    dimension.
    """

    request_id: int
    user: User
    exchange: Exchange
    publisher: Publisher
    timestamp: float
    exchange_latency_ms: float = 0.0
