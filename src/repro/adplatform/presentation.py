"""PresentationServer: impressions, clicks, and profile updates.

"When an ad is shown or a user interacts with it, an event is sent to
Turn's PresentationServers, which record it in the user's profile in
the ProfileStore" (paper Section 7).  The simulation models the
post-bid path: winning a bid response leads (with the exchange's
win probability) to an *impression* after a short delay; the user then
clicks with the targeting model's click probability, producing a
*click* event a little later.  Both events reuse the originating bid
request's id — the equi-join key.
"""

from __future__ import annotations

from ..cluster.host import SimHost
from ..cluster.simclock import EventLoop
from ..core.agent.sampling import uniform_from_hash
from .auction import AuctionEntry
from .entities import BidRequest
from .models import TargetingModel
from .profilestore import ProfileStore

__all__ = ["PresentationServer", "EXTERNAL_WIN_PROBABILITY"]

#: Probability that our bid wins the exchange's external auction.
EXTERNAL_WIN_PROBABILITY = 0.55
#: App CPU per impression/click handled.
IMPRESSION_COST = 150.0e-6
CLICK_COST = 120.0e-6
#: Delays from bid response to impression, and impression to click.
IMPRESSION_DELAY = 0.25
CLICK_DELAY = 2.0

_WIN_SEED = 9001


class PresentationServer:
    """One PresentationServer bound to a simulated host."""

    def __init__(
        self,
        host: SimHost,
        loop: EventLoop,
        profiles: ProfileStore,
        model: TargetingModel,
        seconds_per_day: float = 86_400.0,
    ) -> None:
        if host.agent is None:
            raise ValueError(f"host {host.name} has no Scrub agent attached")
        self.host = host
        self.loop = loop
        self.profiles = profiles
        self.model = model
        self._seconds_per_day = seconds_per_day
        self.impressions = 0
        self.clicks = 0
        # Low-discrepancy click generation: accumulate click probability
        # per impression and emit a click when the debt crosses 1.  The
        # realized click count then tracks the model's expected CTR with
        # O(1) error instead of binomial noise — at simulated traffic
        # volumes (10^3 impressions, not the production 10^8) Bernoulli
        # draws would need far longer traces for A/B gaps to separate
        # from noise.  Deterministic, so runs reproduce exactly.
        self._click_debt = 0.0

    def schedule_outcome(self, request: BidRequest, winner: AuctionEntry) -> bool:
        """Called right after a bid response: decide the external auction
        and schedule the impression.  Returns True when we won."""
        won = (
            uniform_from_hash(_WIN_SEED, request.request_id)
            < EXTERNAL_WIN_PROBABILITY
        )
        if won:
            self.loop.call_later(
                IMPRESSION_DELAY, self._serve_impression, request, winner
            )
        return won

    def _serve_impression(self, request: BidRequest, winner: AuctionEntry) -> None:
        host = self.host
        agent = host.agent
        assert agent is not None
        now = self.loop.now
        line_item = winner.line_item
        # Authoritative frequency-cap check at serve time: the bid-time
        # check races with in-flight impressions (several ad slots of one
        # page view clear filtering before any of them is recorded).  Note
        # this re-check reads the same ProfileStore counters, so corrupt
        # feed writes (paper 8.6) defeat it exactly as they defeat the
        # filtering-phase check.
        if line_item.frequency_cap is not None:
            day_now = int(now // self._seconds_per_day)
            served = self.profiles.frequency(
                request.user.user_id, line_item.line_item_id, day_now
            )
            if served >= line_item.frequency_cap:
                return
        cost = winner.bid_price  # first-price clearing
        self.impressions += 1

        with host.measure_request():
            host.charge_app(IMPRESSION_COST)
            agent.log(
                "impression",
                request_id=request.request_id,
                timestamp=now,
                line_item_id=line_item.line_item_id,
                campaign_id=line_item.campaign_id,
                exchange_id=request.exchange.exchange_id,
                publisher_id=request.publisher.publisher_id,
                user_id=request.user.user_id,
                cost=cost,
            )
        line_item.record_spend(cost)
        day = int(now // self._seconds_per_day)
        self.profiles.record_impression(
            request.user.user_id, line_item.line_item_id, day, now
        )

        click_p = self.model.click_probability(request.user, line_item)
        self._click_debt += click_p
        if self._click_debt >= 1.0:
            self._click_debt -= 1.0
            self.loop.call_later(CLICK_DELAY, self._record_click, request, winner)

    def _record_click(self, request: BidRequest, winner: AuctionEntry) -> None:
        host = self.host
        agent = host.agent
        assert agent is not None
        self.clicks += 1
        with host.measure_request():
            host.charge_app(CLICK_COST)
            agent.log(
                "click",
                request_id=request.request_id,
                timestamp=self.loop.now,
                line_item_id=winner.line_item.line_item_id,
                campaign_id=winner.line_item.campaign_id,
                exchange_id=request.exchange.exchange_id,
                user_id=request.user.user_id,
            )
