"""The ProfileStore: per-user state, including frequency-cap counters.

The platform "records in the user's profile ... the number of times an
ad has been served to this user"; that count drives frequency-cap
filtering on subsequent bid requests (paper Section 8.6).  Profile
writes can also arrive from *external input feeds* — and the
incorrectly-set-field case study is exactly a corrupt feed overwriting
counters with wrong values, which the troubleshooter finds by querying
``profile_update`` events.

Fault injection: :meth:`ProfileStore.install_corruption` makes a
configurable fraction of feed writes store a wrong (reset-to-zero)
counter, reproducing the bug of Section 8.6.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["UserProfile", "ProfileStore"]


@dataclass
class UserProfile:
    user_id: int
    #: (line_item_id, day) -> ads served that day.
    served: dict[tuple[int, int], int] = field(default_factory=dict)
    last_updated: float = 0.0


class ProfileStore:
    """In-memory user-profile store with frequency counters."""

    def __init__(self) -> None:
        self._profiles: dict[int, UserProfile] = {}
        self._corruption_rate = 0.0
        self._corruption_rng: Optional[random.Random] = None
        self._on_update: Optional[Callable[[int, int, int, int, str], None]] = None
        self.writes = 0
        self.corrupted_writes = 0

    def on_update(self, callback: Callable[[int, int, int, int, str], None]) -> None:
        """Hook invoked after every counter write:
        ``callback(user_id, line_item_id, count, day, source)``.  The
        platform uses it to emit ``profile_update`` Scrub events."""
        self._on_update = callback

    def profile(self, user_id: int) -> UserProfile:
        prof = self._profiles.get(user_id)
        if prof is None:
            prof = UserProfile(user_id)
            self._profiles[user_id] = prof
        return prof

    def frequency(self, user_id: int, line_item_id: int, day: int) -> int:
        prof = self._profiles.get(user_id)
        if prof is None:
            return 0
        return prof.served.get((line_item_id, day), 0)

    # -- writes -------------------------------------------------------------------

    def record_impression(
        self, user_id: int, line_item_id: int, day: int, now: float
    ) -> int:
        """Increment the served counter after an impression; returns the
        new count.  This is the platform's own (correct) write path."""
        prof = self.profile(user_id)
        key = (line_item_id, day)
        count = prof.served.get(key, 0) + 1
        prof.served[key] = count
        prof.last_updated = now
        self.writes += 1
        if self._on_update is not None:
            self._on_update(user_id, line_item_id, count, day, "impression")
        return count

    def apply_feed_write(
        self, user_id: int, line_item_id: int, count: int, day: int, now: float
    ) -> int:
        """Apply an external feed's counter write (profile sync/import).

        When corruption is installed, a fraction of these writes store 0
        instead of *count* — the erroneous input data of Section 8.6,
        which silently un-caps frequency-capped line items.
        """
        stored = count
        if self._corruption_rng is not None and (
            self._corruption_rng.random() < self._corruption_rate
        ):
            stored = 0
            self.corrupted_writes += 1
        prof = self.profile(user_id)
        prof.served[(line_item_id, day)] = stored
        prof.last_updated = now
        self.writes += 1
        if self._on_update is not None:
            self._on_update(user_id, line_item_id, stored, day, "feed")
        return stored

    # -- fault injection ------------------------------------------------------------

    def install_corruption(self, rate: float, seed: int = 0) -> None:
        """Make *rate* of feed writes corrupt (store 0)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"corruption rate must be in [0, 1], got {rate}")
        self._corruption_rate = rate
        self._corruption_rng = random.Random(seed) if rate > 0 else None

    def clear_corruption(self) -> None:
        self._corruption_rate = 0.0
        self._corruption_rng = None

    @property
    def user_count(self) -> int:
        return len(self._profiles)
