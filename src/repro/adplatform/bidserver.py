"""BidServer: the entry point of the bidding pipeline.

A BidServer receives a bid request from an exchange, consults an
AdServer (filtering + internal auction), and — when the auction
produced a winner — sends the bid response back and emits the ``bid``
event of paper Fig. 1.  "The above transaction has to complete in under
20 milliseconds" (Section 7): the per-request latency the simulation
records for BidServers is the quantity the +1%-latency experiment
reports.
"""

from __future__ import annotations

from typing import Optional

from ..cluster.host import SimHost
from .adserver import AdServer
from .auction import AuctionResult
from .entities import BidRequest

__all__ = ["BidServer", "BidOutcome"]

#: Fixed app CPU per bid request on the BidServer (parse, route, respond).
BASE_REQUEST_COST = 700.0e-6


class BidOutcome:
    """What one bid request produced end to end."""

    __slots__ = ("request", "auction", "bid_price", "latency")

    def __init__(
        self,
        request: BidRequest,
        auction: Optional[AuctionResult],
        bid_price: Optional[float],
        latency: float,
    ) -> None:
        self.request = request
        self.auction = auction
        self.bid_price = bid_price
        self.latency = latency

    @property
    def did_bid(self) -> bool:
        return self.bid_price is not None


class BidServer:
    """One BidServer bound to a simulated host and a partner AdServer."""

    def __init__(self, host: SimHost, adserver: AdServer) -> None:
        if host.agent is None:
            raise ValueError(f"host {host.name} has no Scrub agent attached")
        self.host = host
        self.adserver = adserver
        self.requests_received = 0
        self.bids_sent = 0

    def handle(self, request: BidRequest) -> BidOutcome:
        """Process one bid request synchronously (the 20 ms transaction)."""
        self.requests_received += 1
        host = self.host
        agent = host.agent
        assert agent is not None

        with host.measure_request() as measure:
            host.charge_app(BASE_REQUEST_COST)
            # The AdServer call is part of the same transaction; its work is
            # charged to the AdServer host, but its Scrub+app time adds to
            # this request's end-to-end latency.
            with self.adserver.host.measure_request() as ad_measure:
                result = self.adserver.process(request)
            host.charge_app(0.0)  # response serialization is in the base cost

            bid_price: Optional[float] = None
            if result is not None:
                winner = result.winner
                bid_price = winner.bid_price
                self.bids_sent += 1
                agent.log(
                    "bid",
                    request_id=request.request_id,
                    timestamp=request.timestamp,
                    exchange_id=request.exchange.exchange_id,
                    city=request.user.city,
                    country=request.user.country,
                    bid_price=bid_price,
                    campaign_id=winner.line_item.campaign_id,
                    user_id=request.user.user_id,
                    line_item_id=winner.line_item.line_item_id,
                    publisher_id=request.publisher.publisher_id,
                    latency_ms=request.exchange_latency_ms,
                )
        latency = measure.latency + ad_measure.latency
        return BidOutcome(request, result, bid_price, latency)
