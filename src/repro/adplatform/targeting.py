"""The filtering phase: targeting evaluation and exclusion reasons.

For every bid request the AdServer evaluates every active line item
against the request; line items that fail produce *exclusion* events
(paper Section 8.4: "every bid request produces tens of thousands of
exclusions" at production line-item counts).  The reasons implemented
cover the failure modes the case studies troubleshoot: geography,
audience segments, exchange allowlists, daily frequency caps
(Section 8.6) and budget exhaustion.
"""

from __future__ import annotations

import enum
from typing import Optional

from .entities import BidRequest, LineItem
from .profilestore import ProfileStore

__all__ = ["ExclusionReason", "TargetingFilter"]


class ExclusionReason(enum.Enum):
    GEO_MISMATCH = "GEO_MISMATCH"
    SEGMENT_MISMATCH = "SEGMENT_MISMATCH"
    EXCHANGE_NOT_ALLOWED = "EXCHANGE_NOT_ALLOWED"
    FREQUENCY_CAP = "FREQUENCY_CAP"
    BUDGET_EXHAUSTED = "BUDGET_EXHAUSTED"
    INACTIVE = "INACTIVE"


class TargetingFilter:
    """Evaluates line items against bid requests.

    The evaluation order matches how cheap each check is in a real
    server (static criteria first, profile lookups last) — the order
    also determines *which* reason an exclusion event reports when
    several apply, which the exclusion-distribution case study
    (Section 8.4) depends on being deterministic.
    """

    def __init__(self, profiles: ProfileStore, seconds_per_day: float = 86_400.0) -> None:
        self._profiles = profiles
        self._seconds_per_day = seconds_per_day

    def day_of(self, timestamp: float) -> int:
        return int(timestamp // self._seconds_per_day)

    def exclusion_reason(
        self, line_item: LineItem, request: BidRequest
    ) -> Optional[ExclusionReason]:
        """The first reason *line_item* fails for *request*, or None if
        it passes filtering."""
        if not line_item.active:
            return ExclusionReason.INACTIVE
        targeting = line_item.targeting
        if (
            targeting.exchanges is not None
            and request.exchange.exchange_id not in targeting.exchanges
        ):
            return ExclusionReason.EXCHANGE_NOT_ALLOWED
        if (
            targeting.countries is not None
            and request.user.country not in targeting.countries
        ):
            return ExclusionReason.GEO_MISMATCH
        if targeting.segments is not None and not (
            targeting.segments & request.user.segments
        ):
            return ExclusionReason.SEGMENT_MISMATCH
        if not line_item.has_budget(line_item.advisory_price):
            return ExclusionReason.BUDGET_EXHAUSTED
        if line_item.frequency_cap is not None:
            served = self._profiles.frequency(
                request.user.user_id,
                line_item.line_item_id,
                self.day_of(request.timestamp),
            )
            if served >= line_item.frequency_cap:
                return ExclusionReason.FREQUENCY_CAP
        return None

    def split(
        self, line_items: list[LineItem], request: BidRequest
    ) -> tuple[list[LineItem], list[tuple[LineItem, ExclusionReason]]]:
        """Partition into (passing, [(excluded, reason), ...])."""
        passing: list[LineItem] = []
        excluded: list[tuple[LineItem, ExclusionReason]] = []
        for line_item in line_items:
            reason = self.exclusion_reason(line_item, request)
            if reason is None:
                passing.append(line_item)
            else:
                excluded.append((line_item, reason))
        return passing, excluded
