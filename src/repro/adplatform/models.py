"""Ad targeting models: scoring and click behaviour.

"Line items are assigned scores predicting how likely the user is to
interact with their ad" (paper Section 8.5); the A/B-testing case study
(Section 8.3) runs model A on a subset of machines against incumbent
model B and compares CTR at constant CPM.

A model here does two jobs:

* ``score(user, line_item)`` — the auction's predicted-interaction
  score in [0, 1], which modulates the bid price inside the narrow band
  around the advisory price;
* ``click_probability(user, line_item)`` — the *actual* probability the
  simulated user clicks the served ad.  A better model targets users
  whose true click propensity is higher, so its realized CTR is higher
  at the same cost — exactly the shape Fig. 15a/b shows.

All draws are deterministic hashes of (seed, user, line item), so runs
reproduce exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.agent.sampling import uniform_from_hash
from .entities import LineItem, User

__all__ = ["TargetingModel", "BaselineModel", "ImprovedModel", "HotItemModel"]


def _mix(seed: int, user_id: int, line_item_id: int) -> float:
    return uniform_from_hash(seed, user_id * 1_000_003 + line_item_id)


@dataclass(frozen=True)
class TargetingModel:
    """Base model: uniform scores, flat click propensity."""

    name: str
    seed: int = 7
    base_ctr: float = 0.05

    def score(self, user: User, line_item: LineItem) -> float:
        """Predicted interaction score in [0, 1]."""
        return _mix(self.seed, user.user_id, line_item.line_item_id)

    def click_probability(self, user: User, line_item: LineItem) -> float:
        """True click probability of this (user, line item) pairing when
        the ad is served after being targeted by this model."""
        return self.base_ctr

    def affinity(self, user: User, line_item: LineItem) -> float:
        """The user's latent affinity for the ad — a model-independent
        ground truth both models observe only through their scores."""
        return _mix(1234, user.user_id, line_item.line_item_id)


@dataclass(frozen=True)
class BaselineModel(TargetingModel):
    """Model A in Section 8.3: scores barely correlate with affinity, so
    its impressions land on average-affinity users."""

    correlation: float = 0.2

    def score(self, user: User, line_item: LineItem) -> float:
        noise = _mix(self.seed, user.user_id, line_item.line_item_id)
        return (
            self.correlation * self.affinity(user, line_item)
            + (1.0 - self.correlation) * noise
        )

    def click_probability(self, user: User, line_item: LineItem) -> float:
        # Click propensity rises superlinearly with true affinity, so
        # *which* users a model wins impressions for moves realized CTR a
        # lot — a weakly-targeted impression realises roughly base CTR.
        affinity = self.affinity(user, line_item)
        return min(self.base_ctr * (0.05 + 2.2 * affinity * affinity), 1.0)


@dataclass(frozen=True)
class HotItemModel(TargetingModel):
    """Flat click physics except for a designated "hot" set of line
    items with far higher true CTR.  The RCA misconfigured-campaign
    scenario uses it: when the hot campaign stops serving, the
    platform's realized click rate visibly collapses."""

    hot_line_item_ids: frozenset[int] = frozenset()
    hot_ctr: float = 0.35

    def click_probability(self, user: User, line_item: LineItem) -> float:
        if line_item.line_item_id in self.hot_line_item_ids:
            return self.hot_ctr
        return self.base_ctr


@dataclass(frozen=True)
class ImprovedModel(BaselineModel):
    """Model B: same click physics, but scores track affinity closely, so
    auctions it wins involve genuinely higher-propensity users — higher
    realized CTR at the same advisory prices (same CPM)."""

    correlation: float = 0.9
