"""Identifier spaces for the simulated ad platform.

Every entity kind draws ids from its own block so an id can never be
mistaken for another kind's (a line-item id of 12 and a campaign id of
12 would make troubleshooting the troubleshooter miserable).  Request
ids are globally unique and monotone — they are Scrub's join key.
"""

from __future__ import annotations

import itertools

__all__ = ["IdSpace", "RequestIdGenerator"]

_BLOCKS = {
    "user": 1_000_000,
    "campaign": 2_000_000,
    "line_item": 3_000_000,
    "exchange": 4_000_000,
    "creative": 5_000_000,
    "publisher": 6_000_000,
}


class IdSpace:
    """Allocates ids per entity kind from disjoint blocks."""

    def __init__(self) -> None:
        self._counters = {kind: itertools.count(base + 1) for kind, base in _BLOCKS.items()}

    def next(self, kind: str) -> int:
        try:
            return next(self._counters[kind])
        except KeyError:
            raise ValueError(
                f"unknown id kind {kind!r}; known: {sorted(_BLOCKS)}"
            ) from None

    @staticmethod
    def kind_of(entity_id: int) -> str:
        for kind, base in sorted(_BLOCKS.items(), key=lambda kv: -kv[1]):
            if entity_id > base:
                return kind
        raise ValueError(f"id {entity_id} belongs to no known block")


class RequestIdGenerator:
    """Monotone unique request ids — the equi-join key of the platform."""

    def __init__(self, start: int = 1) -> None:
        self._counter = itertools.count(start)

    def next(self) -> int:
        return next(self._counter)
