"""AdPlatform: the assembled bidding platform on a simulated cluster.

Topology follows paper Section 7: BidServers receive exchange traffic,
AdServers run filtering and the internal auction, PresentationServers
record impressions/clicks, and the ProfileStore keeps user state.
Scrub is integrated with all four (its agents ride on every host).

The platform is organised in *pods* — a slice of Bid/Ad/Presentation
servers sharing one targeting model, with requests routed to pods by
user hash.  A single pod is the normal deployment; the A/B-testing case
study (Section 8.3) uses two pods so "the servers running model A" is a
concrete host list a Scrub target expression can name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..cluster.runtime import SimCluster
from ..core.agent.sampling import uniform_from_hash
from .adserver import AdServer
from .bidserver import BidOutcome, BidServer
from .entities import BidRequest, Campaign, LineItem
from .ids import IdSpace, RequestIdGenerator
from .models import TargetingModel
from .presentation import PresentationServer
from .profilestore import ProfileStore
from .scrub_events import make_platform_registry
from .targeting import TargetingFilter

__all__ = ["PodSpec", "Pod", "AdPlatform"]

_POD_SEED = 5150


@dataclass(frozen=True)
class PodSpec:
    """Requested shape of one pod."""

    name: str
    model: TargetingModel
    bidservers: int = 2
    adservers: int = 2
    presentationservers: int = 2
    datacenter: str = "dc1"


@dataclass
class Pod:
    """One provisioned pod: live server objects on their hosts."""

    spec: PodSpec
    bidservers: list[BidServer] = field(default_factory=list)
    adservers: list[AdServer] = field(default_factory=list)
    presentationservers: list[PresentationServer] = field(default_factory=list)

    def host_names(self) -> list[str]:
        names = [b.host.name for b in self.bidservers]
        names += [a.host.name for a in self.adservers]
        names += [p.host.name for p in self.presentationservers]
        return names


class AdPlatform:
    """The whole platform: pods + profile store + request routing."""

    def __init__(
        self,
        cluster: Optional[SimCluster] = None,
        pods: Sequence[PodSpec] = (),
        line_items: Sequence[LineItem] = (),
        campaigns: Sequence[Campaign] = (),
        profile_hosts: int = 1,
        seconds_per_day: float = 86_400.0,
        flush_interval: float = 1.0,
    ) -> None:
        if cluster is None:
            cluster = SimCluster(make_platform_registry(), flush_interval=flush_interval)
        self.cluster = cluster
        self.ids = IdSpace()
        self.request_ids = RequestIdGenerator()
        self.line_items = list(line_items)
        self.campaigns = list(campaigns)
        self.seconds_per_day = seconds_per_day

        self.profiles = ProfileStore()
        self.targeting_filter = TargetingFilter(self.profiles, seconds_per_day)

        self._profile_hosts = []
        for i in range(profile_hosts):
            self._profile_hosts.append(
                cluster.add_host(f"profilestore-{i}", "dc1", ["ProfileStore"])
            )
        self.profiles.on_update(self._log_profile_update)

        self.pods: list[Pod] = []
        for spec in pods:
            self.add_pod(spec)

        self.outcomes: list[BidOutcome] = []
        self.record_outcomes = False

    # -- provisioning ---------------------------------------------------------------

    def add_pod(self, spec: PodSpec) -> Pod:
        cluster = self.cluster
        pod = Pod(spec)
        ad_hosts = cluster.add_service("AdServers", spec.datacenter, spec.adservers)
        for host in ad_hosts:
            pod.adservers.append(
                AdServer(host, self.line_items, self.targeting_filter, spec.model)
            )
        bid_hosts = cluster.add_service("BidServers", spec.datacenter, spec.bidservers)
        for i, host in enumerate(bid_hosts):
            partner = pod.adservers[i % len(pod.adservers)]
            pod.bidservers.append(BidServer(host, partner))
        pres_hosts = cluster.add_service(
            "PresentationServers", spec.datacenter, spec.presentationservers
        )
        for host in pres_hosts:
            pod.presentationservers.append(
                PresentationServer(
                    host,
                    cluster.loop,
                    self.profiles,
                    spec.model,
                    self.seconds_per_day,
                )
            )
        self.pods.append(pod)
        return pod

    def add_line_item(self, line_item: LineItem) -> LineItem:
        """Line items are shared by reference with every AdServer, so
        additions are visible platform-wide immediately."""
        self.line_items.append(line_item)
        return line_item

    # -- request routing ------------------------------------------------------------

    def pod_for(self, request: BidRequest) -> Pod:
        """Pods are sticky per user so a user's whole funnel (bid →
        impression → click) stays inside one model's servers."""
        if len(self.pods) == 1:
            return self.pods[0]
        index = int(
            uniform_from_hash(_POD_SEED, request.user.user_id) * len(self.pods)
        )
        return self.pods[min(index, len(self.pods) - 1)]

    def handle_bid_request(self, request: BidRequest) -> BidOutcome:
        """The platform's request sink: route, bid, schedule the outcome."""
        pod = self.pod_for(request)
        bidserver = pod.bidservers[request.request_id % len(pod.bidservers)]
        outcome = bidserver.handle(request)
        if outcome.did_bid and outcome.auction is not None:
            presentation = pod.presentationservers[
                request.user.user_id % len(pod.presentationservers)
            ]
            presentation.schedule_outcome(request, outcome.auction.winner)
        if self.record_outcomes:
            self.outcomes.append(outcome)
        return outcome

    def _log_profile_update(
        self, user_id: int, line_item_id: int, count: int, day: int, source: str
    ) -> None:
        host = self._profile_hosts[user_id % len(self._profile_hosts)]
        agent = host.agent
        assert agent is not None
        host.charge_app(20e-6)
        agent.log(
            "profile_update",
            request_id=user_id,  # profile writes join per user, not per request
            timestamp=self.cluster.loop.now,
            user_id=user_id,
            line_item_id=line_item_id,
            frequency_count=count,
            day=day,
            source=source,
        )

    # -- convenience -----------------------------------------------------------------

    @property
    def bidservers(self) -> list[BidServer]:
        return [b for pod in self.pods for b in pod.bidservers]

    @property
    def adservers(self) -> list[AdServer]:
        return [a for pod in self.pods for a in pod.adservers]

    @property
    def presentationservers(self) -> list[PresentationServer]:
        return [p for pod in self.pods for p in pod.presentationservers]

    def bid_latencies(self) -> list[float]:
        """End-to-end bid transaction latencies (BidServer + AdServer)."""
        return [o.latency for o in self.outcomes]

    def total_impressions(self) -> int:
        return sum(p.impressions for p in self.presentationservers)

    def total_clicks(self) -> int:
        return sum(p.clicks for p in self.presentationservers)
