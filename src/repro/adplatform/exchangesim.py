"""Exchange traffic simulation: users, page views, bid requests, bots.

Human behaviour follows the shape the spam case study (paper
Section 8.1, Fig. 10) relies on:

* a page view produces a small batch of bid requests ("many web pages
  show multiple ads"), so most users issue 1–3 requests in one window;
* per-user request counts per window decay roughly exponentially;
* most users produce a single page-view batch over a 20-minute trace,
  some two ("two page views, consistent with human user behavior").

Bots break the shape: they simulate page views at high frequency,
producing large batches of bid requests in every window — the red
triangles and black crosses of Fig. 10.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..cluster.simclock import EventLoop
from .entities import BidRequest, Exchange, Publisher, User
from .ids import IdSpace, RequestIdGenerator

__all__ = [
    "make_users",
    "make_exchanges",
    "make_publishers",
    "BotSpec",
    "ExchangeTraffic",
]

_COUNTRIES = [
    ("US", ["San Jose", "New York", "Chicago", "Austin"], 0.45),
    ("GB", ["London", "Manchester"], 0.15),
    ("DE", ["Berlin", "Munich"], 0.12),
    ("FR", ["Paris", "Lyon"], 0.10),
    ("JP", ["Tokyo", "Osaka"], 0.10),
    ("BR", ["Sao Paulo", "Rio"], 0.08),
]


def make_users(
    count: int, ids: IdSpace, seed: int = 11, segment_pool: int = 40
) -> list[User]:
    """A deterministic user population with geo and segment diversity."""
    rng = random.Random(seed)
    weights = [w for _c, _cities, w in _COUNTRIES]
    users = []
    for _ in range(count):
        country, cities, _w = rng.choices(_COUNTRIES, weights=weights)[0]
        city = rng.choice(cities)
        nsegments = rng.randint(1, 6)
        segments = frozenset(rng.sample(range(1, segment_pool + 1), nsegments))
        users.append(
            User(
                user_id=ids.next("user"),
                city=city,
                country=country,
                segments=segments,
            )
        )
    return users


def make_exchanges(
    ids: IdSpace, names: Sequence[str] = ("A", "B", "C", "D"), shares: Sequence[float] | None = None
) -> list[Exchange]:
    if shares is None:
        shares = [1.0] * len(names)
    if len(shares) != len(names):
        raise ValueError("one share per exchange name")
    return [
        Exchange(exchange_id=ids.next("exchange"), name=name, traffic_share=share)
        for name, share in zip(names, shares)
    ]


def make_publishers(ids: IdSpace, count: int = 5) -> list[Publisher]:
    return [
        Publisher(publisher_id=ids.next("publisher"), name=f"pub{i}")
        for i in range(count)
    ]


@dataclass(frozen=True)
class BotSpec:
    """A spam bot: *batch_size* bid requests every *period* seconds.

    ``active_from`` delays the bot's first burst, so a bot surge can
    start mid-trace (the RCA bot-surge fault keys its onset off this).
    """

    user: User
    batch_size: int
    period: float
    active_from: float = 0.0

    def __post_init__(self) -> None:
        if self.batch_size <= 0 or self.period <= 0:
            raise ValueError("bot batch_size and period must be positive")
        if self.active_from < 0:
            raise ValueError("bot active_from must be non-negative")


class ExchangeTraffic:
    """Drives bid-request traffic into a sink callback on the event loop.

    *sink* is called with each :class:`BidRequest` — the platform's
    request router.  Human traffic: Poisson page views at
    *pageviews_per_second* across the population; each page view sends
    1..*max_slots* bid requests through one (active) exchange.  Bots
    fire on their own fixed schedules.
    """

    def __init__(
        self,
        loop: EventLoop,
        users: Sequence[User],
        exchanges: Sequence[Exchange],
        publishers: Sequence[Publisher],
        sink: Callable[[BidRequest], None],
        pageviews_per_second: float,
        request_ids: RequestIdGenerator | None = None,
        seed: int = 23,
        tick_seconds: float = 0.5,
        max_slots: int = 3,
        bots: Sequence[BotSpec] = (),
    ) -> None:
        if pageviews_per_second < 0:
            raise ValueError("pageview rate must be non-negative")
        if not users and pageviews_per_second > 0:
            raise ValueError("cannot generate traffic without users")
        self.loop = loop
        self.users = list(users)
        self.exchanges = list(exchanges)
        self.publishers = list(publishers)
        self.sink = sink
        self.rate = pageviews_per_second
        self.request_ids = request_ids if request_ids is not None else RequestIdGenerator()
        self._rng = random.Random(seed)
        self._np_rng = np.random.default_rng(seed)
        # Latency draws come from their own stream: adding them to
        # self._rng would shift every downstream choice and silently
        # change the pinned experiment traces.
        self._latency_rng = random.Random((seed << 8) ^ 0x5CB)
        self._tick = tick_seconds
        self._max_slots = max_slots
        self.bots = list(bots)
        self.requests_sent = 0
        self.pageviews = 0
        self._started = False

    # -- lifecycle --------------------------------------------------------------

    def start(self, until: float) -> None:
        """Begin generating traffic, stopping at time *until*."""
        if self._started:
            raise RuntimeError("traffic already started")
        self._started = True
        if self.rate > 0:
            self.loop.call_every(
                self._tick, self._human_tick, start_after=self._tick, until=until
            )
        for bot in self.bots:
            self.loop.call_every(
                bot.period,
                self._bot_tick,
                bot,
                start_after=bot.active_from + bot.period,
                until=until,
            )

    # -- generation ---------------------------------------------------------------

    def _active_exchanges(self, now: float) -> tuple[list[Exchange], list[float]]:
        active = [e for e in self.exchanges if e.is_active(now)]
        return active, [e.traffic_share for e in active]

    def _human_tick(self) -> None:
        now = self.loop.now
        active, shares = self._active_exchanges(now)
        if not active:
            return
        n_pageviews = int(self._np_rng.poisson(self.rate * self._tick))
        for _ in range(n_pageviews):
            user = self._rng.choice(self.users)
            self._emit_pageview(user, active, shares, now)

    def _bot_tick(self, bot: BotSpec) -> None:
        """A bot burst: batch_size single-slot requests at once."""
        now = self.loop.now
        active, shares = self._active_exchanges(now)
        if not active:
            return
        exchange = self._rng.choices(active, weights=shares)[0]
        publisher = self._rng.choice(self.publishers)
        for _ in range(bot.batch_size):
            self._send(bot.user, exchange, publisher, now)

    def _emit_pageview(
        self,
        user: User,
        active: list[Exchange],
        shares: list[float],
        now: float,
    ) -> None:
        self.pageviews += 1
        exchange = self._rng.choices(active, weights=shares)[0]
        publisher = self._rng.choice(self.publishers)
        slots = self._rng.randint(1, self._max_slots)
        for _ in range(slots):
            self._send(user, exchange, publisher, now)

    def _send(
        self, user: User, exchange: Exchange, publisher: Publisher, now: float
    ) -> None:
        self.requests_sent += 1
        # Exchange-link latency: log-normal jitter (median 1x) around the
        # exchange's base latency, times any degradation in effect.
        latency_ms = (
            exchange.base_latency_ms
            * exchange.latency_scale(now)
            * self._latency_rng.lognormvariate(0.0, 0.35)
        )
        self.sink(
            BidRequest(
                request_id=self.request_ids.next(),
                user=user,
                exchange=exchange,
                publisher=publisher,
                timestamp=now,
                exchange_latency_ms=latency_ms,
            )
        )
