"""Unit tests for the RCA building blocks: specs, reports, and the
driver's pure logic (query construction, localization, scoring) driven
through hand-built result sets — no simulated cluster involved."""

from __future__ import annotations

import pytest

from repro.core.central.results import ResultRow, ResultSet, WindowResult
from repro.rca import (
    CountMetric,
    QuantileMetric,
    RootCauseDriver,
    SymptomSpec,
    symptom_from_extras,
)
from repro.rca.driver import _literal
from repro.rca.report import Candidate, RootCauseReport


# -- symptom specs -------------------------------------------------------------


def test_spec_defaults_and_validation():
    spec = SymptomSpec(name="s", event_type="bid")
    assert "exchange_id" in spec.dimensions
    with pytest.raises(ValueError, match="direction"):
        SymptomSpec(name="s", event_type="bid", direction="sideways")
    with pytest.raises(ValueError, match="slide"):
        SymptomSpec(name="s", event_type="bid", window_seconds=5, slide_seconds=10)
    with pytest.raises(ValueError, match="default dimensions"):
        SymptomSpec(name="s", event_type="mystery")
    with pytest.raises(ValueError, match="q must be"):
        QuantileMetric("latency_ms", 1.5)


def test_symptom_from_extras_round_trip():
    count_spec = symptom_from_extras({"symptom": ("click", "count", "down")})
    assert isinstance(count_spec.metric, CountMetric)
    assert count_spec.direction == "down"
    assert count_spec.event_type == "click"

    quantile_spec = symptom_from_extras(
        {"symptom": ("bid", ("quantile", "latency_ms", 0.95), "up")},
        dimensions=("exchange_id",),
    )
    assert quantile_spec.metric == QuantileMetric("latency_ms", 0.95)
    assert quantile_spec.dimensions == ("exchange_id",)
    assert "p95(latency_ms)" in quantile_spec.describe()

    with pytest.raises(ValueError, match="metric hint"):
        symptom_from_extras({"symptom": ("bid", ("histogram", "x", 1), "up")})


# -- query construction --------------------------------------------------------


def _driver(metric, direction="up", run=None, **kwargs):
    spec = SymptomSpec(
        name="t",
        event_type="bid",
        metric=metric,
        direction=direction,
        dimensions=("exchange_id", "city"),
        window_seconds=10.0,
        slide_seconds=5.0,
    )
    return RootCauseDriver(
        run or (lambda queries: []), spec, trace_seconds=100.0, **kwargs
    )


def test_query_texts():
    driver = _driver(CountMetric())
    assert driver.confirmation_query() == (
        "SELECT COUNT(*) AS n FROM bid START 0 DURATION 100 "
        "WINDOW 10s SLIDE 5s;"
    )
    # Count scans carry no HAVING; quantile scans prune tiny groups.
    assert "HAVING" not in driver.scan_query("city")
    quantile_driver = _driver(QuantileMetric("latency_ms", 0.99))
    text = quantile_driver.scan_query("city", where="exchange_id = 7")
    assert text == (
        "SELECT city, COUNT(*) AS n, QUANTILE(latency_ms, 0.99) AS m "
        "FROM bid WHERE exchange_id = 7 START 0 DURATION 100 "
        "WINDOW 10s GROUP BY city HAVING COUNT(*) >= 5;"
    )


def test_literal_rendering():
    assert _literal(42) == "42"
    assert _literal(1.5) == "1.5"
    assert _literal("Unknown") == "'Unknown'"
    assert _literal("O'Hare") == "'O''Hare'"
    assert _literal(True) == "TRUE"


# -- localization --------------------------------------------------------------


def test_localize_finds_step_and_snaps_to_grid():
    driver = _driver(CountMetric())
    series = [(float(t), 20.0 if t < 60 else 70.0) for t in range(0, 95, 5)]
    cp, confirmed, good, bad = driver._localize(series)
    assert cp == 60.0
    assert confirmed
    assert good == 20.0
    assert bad == 70.0


def test_localize_flat_series_not_confirmed():
    driver = _driver(CountMetric())
    series = [(float(t), 20.0) for t in range(0, 95, 5)]
    _, confirmed, good, bad = driver._localize(series)
    assert not confirmed
    assert good == bad == 20.0


def test_localize_honors_pinned_fault_time():
    driver = _driver(CountMetric(), fault_time=40.0)
    series = [(float(t), 20.0 if t < 60 else 70.0) for t in range(0, 95, 5)]
    cp, confirmed, _, _ = driver._localize(series)
    assert cp == 40.0
    assert confirmed  # contrast survives a slightly-early split


# -- scoring through a hand-built diagnose ------------------------------------


def _window(start, end, columns, rows):
    return WindowResult(
        query_id="q",
        window_start=start,
        window_end=end,
        columns=columns,
        rows=[ResultRow(tuple(r)) for r in rows],
    )


def _count_fixture():
    """A synthetic surge: value 'bot' appears only after t=50, tripling
    the global rate; 'human' stays flat."""
    confirm = ResultSet("q0", ("n",))
    for start in range(0, 95, 5):
        rate = 100 if start < 50 else 300
        confirm.add(_window(start, start + 10.0, ("n",), [(rate,)]))

    scan = ResultSet("q1", ("exchange_id", "n"))
    for start in range(0, 100, 10):
        rows = [("human", 100)]
        if start >= 50:
            rows.append(("bot", 200))
        scan.add(_window(start, start + 10.0, ("exchange_id", "n"), rows))

    city = ResultSet("q2", ("city", "n"))
    for start in range(0, 100, 10):
        n = 100 if start < 50 else 300
        city.add(_window(start, start + 10.0, ("city", "n"), [("X", n)]))
    return [confirm, scan, city]


def test_diagnose_ranks_injected_surge_first():
    fixtures = _count_fixture()
    calls = []

    def run(queries):
        calls.append(list(queries))
        return fixtures

    driver = _driver(CountMetric(), run=run, drill_down=False)
    report = driver.diagnose()
    assert report.confirmed
    assert report.change_point == 50.0
    top = report.candidates[0]
    assert (top.dimension, top.value) == ("exchange_id", "bot")
    assert top.confidence == pytest.approx(1.0)
    # Support is the bot rows' share of the bad-phase scan population.
    assert top.support == pytest.approx(1000 / 1500)
    # 'X' (the single city) absorbs the whole surge too but with low
    # confidence; it must rank below the isolated new value.
    assert report.rank_of("city", "X") > 1
    assert len(calls) == 1 and len(calls[0]) == 3


def test_unconfirmed_symptom_short_circuits():
    confirm = ResultSet("q0", ("n",))
    for start in range(0, 95, 5):
        confirm.add(_window(start, start + 10.0, ("n",), [(100,)]))
    empty_scan = ResultSet("q1", ("exchange_id", "n"))
    empty_city = ResultSet("q2", ("city", "n"))

    driver = _driver(
        CountMetric(), run=lambda q: [confirm, empty_scan, empty_city]
    )
    report = driver.diagnose()
    assert not report.confirmed
    assert report.candidates == []
    assert "NOT CONFIRMED" in report.render()


# -- report helpers ------------------------------------------------------------


def _candidate(dim, value, score):
    return Candidate(
        dimension=dim,
        value=value,
        score=score,
        support=0.5,
        confidence=0.9,
        lift=2.0,
        good_value=1.0,
        bad_value=3.0,
    )


def test_report_ranking_helpers():
    report = RootCauseReport(
        symptom=SymptomSpec(name="s", event_type="bid"),
        confirmed=True,
        change_point=60.0,
        good_span=(0.0, 60.0),
        bad_span=(60.0, 120.0),
        good_metric=10.0,
        bad_metric=30.0,
        candidates=[
            _candidate("city", "Unknown", 1.0),
            _candidate("exchange_id", 7, 0.4),
        ],
    )
    assert report.rank_of("city", "Unknown") == 1
    assert report.rank_of("exchange_id", 7) == 2
    assert report.rank_of("exchange_id", 8) is None
    assert report.best_rank([("exchange_id", 7), ("city", "Unknown")]) == 1
    assert report.best_rank([("country", "US")]) is None
    rendered = report.render()
    assert "city='Unknown'" in rendered
    assert "confirmed: metric 10.000 -> 30.000" in rendered
