"""End-to-end RCA: seeded fault in, ranked root cause out.

For each fault in the library the driver must place the injected cause
at the top of the report, going through the full stack: scenario →
SimCluster → query language (sliding windows, GROUP BY, HAVING,
QUANTILE) → population contrast.  These are the PR's acceptance tests.
"""

from __future__ import annotations

import pytest

from repro.adplatform.workload import RCA_SCENARIOS
from repro.rca import RootCauseDriver, ScenarioRunner, symptom_from_extras

FAULT = 60.0
TRACE = 120.0


def _diagnose(name, *, drill_down=False):
    builder = RCA_SCENARIOS[name]
    extras = builder(fault_time=FAULT).extras
    runner = ScenarioRunner(lambda: builder(fault_time=FAULT), trace_seconds=TRACE)
    driver = RootCauseDriver(
        runner,
        symptom_from_extras(extras, name=name),
        trace_seconds=TRACE,
        drill_down=drill_down,
    )
    return driver.diagnose(), extras, runner


def test_misconfigured_campaign_ranked_first():
    report, extras, _ = _diagnose("misconfigured_campaign")
    assert report.confirmed
    assert report.change_point == FAULT
    assert report.best_rank(extras["truth"]) == 1


def test_bot_surge_ranked_first_with_drill_down():
    report, extras, runner = _diagnose("bot_surge", drill_down=True)
    assert report.confirmed
    assert report.change_point == FAULT
    assert report.best_rank(extras["truth"]) == 1
    # Drill-down fixed the top candidate in a WHERE clause and re-ran the
    # other dimensions against a fresh replay of the same seeded trace.
    assert runner.replays == 2
    assert any("WHERE" in q for q in report.queries)
    # The cause is one-dimensional: no pair should beat its parent.
    assert report.itemsets == []


def test_bad_exchange_ranked_top3():
    report, extras, _ = _diagnose("bad_exchange")
    assert report.confirmed
    # Sliding windows partially overlapping the fault already read the
    # degraded p95, so tail-metric localization may land early — never
    # late (the baseline stays uncontaminated).
    assert report.change_point <= FAULT
    rank = report.best_rank(extras["truth"])
    assert rank is not None and rank <= 3


def test_reports_render_and_keep_transcripts():
    report, _, _ = _diagnose("misconfigured_campaign")
    text = report.render()
    assert "confirmed" in text
    assert "ranked causes:" in text
    # One confirmation query + one scan per candidate dimension.
    expected = 1 + len(report.symptom.dimensions)
    assert len(report.queries) == expected
    assert all(q.endswith(";") for q in report.queries)


@pytest.mark.parametrize("name", sorted(RCA_SCENARIOS))
def test_truth_contract_is_well_formed(name):
    scenario = RCA_SCENARIOS[name](fault_time=FAULT)
    assert scenario.extras["fault_time"] == FAULT
    spec = symptom_from_extras(scenario.extras, name=name)
    # Truth lists *acceptable* answers; at least one must live in a
    # dimension the driver actually scans, or best_rank can never hit.
    assert any(
        dimension in spec.dimensions
        for dimension, _value in scenario.extras["truth"]
    )
