"""Tests for targeting models and the internal auction."""

import pytest

from repro.adplatform.auction import PRICE_BAND, InternalAuction
from repro.adplatform.entities import LineItem, Targeting, User
from repro.adplatform.models import BaselineModel, ImprovedModel, TargetingModel


def user(uid=1):
    return User(uid, "Porto", "PT", frozenset({1}))


def li(lid, price):
    return LineItem(line_item_id=lid, campaign_id=1, advisory_price=price)


class TestModels:
    def test_scores_in_unit_interval(self):
        model = TargetingModel("m")
        for uid in range(50):
            s = model.score(user(uid), li(10, 1.0))
            assert 0.0 <= s <= 1.0

    def test_deterministic(self):
        a = TargetingModel("m", seed=7)
        b = TargetingModel("m", seed=7)
        assert a.score(user(3), li(10, 1.0)) == b.score(user(3), li(10, 1.0))

    def test_improved_model_tracks_affinity_better(self):
        """Model B's scores correlate with true affinity more than A's —
        the mechanism behind Fig. 15's CTR gap."""
        base, improved = BaselineModel("A"), ImprovedModel("B")
        item = li(10, 1.0)

        def corr(model):
            pairs = [
                (model.score(user(u), item), model.affinity(user(u), item))
                for u in range(300)
            ]
            mean_s = sum(s for s, _ in pairs) / len(pairs)
            mean_a = sum(a for _, a in pairs) / len(pairs)
            cov = sum((s - mean_s) * (a - mean_a) for s, a in pairs)
            var_s = sum((s - mean_s) ** 2 for s, _ in pairs)
            var_a = sum((a - mean_a) ** 2 for _, a in pairs)
            return cov / (var_s * var_a) ** 0.5

        assert corr(improved) > corr(base) + 0.3

    def test_click_probability_bounded(self):
        model = ImprovedModel("B")
        for uid in range(100):
            p = model.click_probability(user(uid), li(10, 1.0))
            assert 0.0 <= p <= 1.0

    def test_affinity_model_independent(self):
        a, b = BaselineModel("A"), ImprovedModel("B")
        assert a.affinity(user(5), li(9, 1.0)) == b.affinity(user(5), li(9, 1.0))


class TestInternalAuction:
    def test_price_stays_in_band(self):
        """Bid prices move in a narrow band around the advisory price
        (paper Section 8.5)."""
        auction = InternalAuction(TargetingModel("m"))
        item = li(10, 2.0)
        for uid in range(100):
            result = auction.run(user(uid), [item])
            price = result.winner.bid_price
            assert 2.0 * (1 - PRICE_BAND) <= price <= 2.0 * (1 + PRICE_BAND)

    def test_winner_has_max_price(self):
        auction = InternalAuction(TargetingModel("m"))
        items = [li(i, 1.0 + 0.1 * i) for i in range(5)]
        result = auction.run(user(1), items)
        assert result.winner.bid_price == max(result.bid_prices)

    def test_disjoint_bands_guarantee_cannibalization(self):
        """If A's band floor exceeds λ's band ceiling, λ can never win."""
        auction = InternalAuction(TargetingModel("m"))
        lam = li(1, 1.0)
        rival = li(2, 4.0)
        assert 4.0 * (1 - PRICE_BAND) > 1.0 * (1 + PRICE_BAND)
        for uid in range(200):
            result = auction.run(user(uid), [lam, rival])
            assert result.winner.line_item is rival

    def test_empty_auction(self):
        auction = InternalAuction(TargetingModel("m"))
        assert auction.run(user(1), []) is None

    def test_result_vectors_aligned(self):
        auction = InternalAuction(TargetingModel("m"))
        items = [li(i, 1.0) for i in range(3)]
        result = auction.run(user(1), items)
        assert len(result.line_item_ids) == len(result.bid_prices) == 3
        assert set(result.line_item_ids) == {0, 1, 2}

    def test_deterministic_tiebreak(self):
        """Equal prices break ties toward the lower line-item id."""
        class ConstantModel(TargetingModel):
            def score(self, _user, _li):
                return 0.5

        auction = InternalAuction(ConstantModel("c"))
        result = auction.run(user(1), [li(7, 1.0), li(3, 1.0)])
        assert result.winner.line_item.line_item_id == 3
