"""Tests for platform entities, targeting filter, and the profile store."""

import pytest

from repro.adplatform.entities import (
    BidRequest,
    Campaign,
    Exchange,
    LineItem,
    Publisher,
    Targeting,
    User,
)
from repro.adplatform.ids import IdSpace, RequestIdGenerator
from repro.adplatform.profilestore import ProfileStore
from repro.adplatform.targeting import ExclusionReason, TargetingFilter


@pytest.fixture
def profiles():
    return ProfileStore()


@pytest.fixture
def tfilter(profiles):
    return TargetingFilter(profiles, seconds_per_day=100.0)


def request(user=None, exchange_id=1, ts=5.0):
    user = user or User(1, "Porto", "PT", frozenset({1, 2}))
    return BidRequest(
        request_id=1,
        user=user,
        exchange=Exchange(exchange_id, "X"),
        publisher=Publisher(1, "pub"),
        timestamp=ts,
    )


def line_item(**kwargs):
    defaults = dict(line_item_id=10, campaign_id=20, advisory_price=1.0)
    defaults.update(kwargs)
    return LineItem(**defaults)


class TestIdSpace:
    def test_disjoint_blocks(self):
        ids = IdSpace()
        user = ids.next("user")
        li = ids.next("line_item")
        assert IdSpace.kind_of(user) == "user"
        assert IdSpace.kind_of(li) == "line_item"
        assert user != li

    def test_monotone(self):
        ids = IdSpace()
        assert ids.next("campaign") < ids.next("campaign")

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            IdSpace().next("widget")

    def test_request_ids_unique(self):
        gen = RequestIdGenerator()
        seen = {gen.next() for _ in range(1000)}
        assert len(seen) == 1000


class TestEntities:
    def test_exchange_activation(self):
        ex = Exchange(1, "D", active_from=550.0)
        assert not ex.is_active(549.0)
        assert ex.is_active(550.0)

    def test_line_item_budget(self):
        li = line_item(daily_budget=10.0)
        assert li.has_budget(5.0)
        li.record_spend(8.0)
        assert li.budget_remaining() == pytest.approx(2.0)
        assert not li.has_budget(5.0)

    def test_line_item_no_budget_limit(self):
        li = line_item()
        assert li.budget_remaining() is None
        assert li.has_budget(1e9)

    def test_campaign_membership_check(self):
        c = Campaign(20, "adv")
        c.add(line_item())
        with pytest.raises(ValueError):
            c.add(line_item(campaign_id=99))

    def test_targeting_describe(self):
        t = Targeting(countries=frozenset({"US"}))
        assert "US" in t.describe()
        assert Targeting().describe() == "any"


class TestTargetingFilter:
    def test_passes_open_targeting(self, tfilter):
        assert tfilter.exclusion_reason(line_item(), request()) is None

    def test_geo_mismatch(self, tfilter):
        li = line_item(targeting=Targeting(countries=frozenset({"US"})))
        assert tfilter.exclusion_reason(li, request()) is ExclusionReason.GEO_MISMATCH

    def test_geo_match(self, tfilter):
        li = line_item(targeting=Targeting(countries=frozenset({"PT", "ES"})))
        assert tfilter.exclusion_reason(li, request()) is None

    def test_segment_mismatch(self, tfilter):
        li = line_item(targeting=Targeting(segments=frozenset({99})))
        assert (
            tfilter.exclusion_reason(li, request())
            is ExclusionReason.SEGMENT_MISMATCH
        )

    def test_segment_overlap_passes(self, tfilter):
        li = line_item(targeting=Targeting(segments=frozenset({2, 77})))
        assert tfilter.exclusion_reason(li, request()) is None

    def test_exchange_not_allowed(self, tfilter):
        li = line_item(targeting=Targeting(exchanges=frozenset({42})))
        assert (
            tfilter.exclusion_reason(li, request(exchange_id=1))
            is ExclusionReason.EXCHANGE_NOT_ALLOWED
        )

    def test_budget_exhausted(self, tfilter):
        li = line_item(daily_budget=1.0, advisory_price=2.0)
        assert (
            tfilter.exclusion_reason(li, request())
            is ExclusionReason.BUDGET_EXHAUSTED
        )

    def test_inactive(self, tfilter):
        li = line_item(active=False)
        assert tfilter.exclusion_reason(li, request()) is ExclusionReason.INACTIVE

    def test_frequency_cap(self, tfilter, profiles):
        li = line_item(frequency_cap=2)
        user = User(7, "Porto", "PT", frozenset({1}))
        req = request(user=user, ts=150.0)  # day 1 at 100 s/day
        assert tfilter.exclusion_reason(li, req) is None
        profiles.record_impression(7, li.line_item_id, day=1, now=150.0)
        profiles.record_impression(7, li.line_item_id, day=1, now=151.0)
        assert tfilter.exclusion_reason(li, req) is ExclusionReason.FREQUENCY_CAP

    def test_frequency_cap_resets_next_day(self, tfilter, profiles):
        li = line_item(frequency_cap=1)
        user = User(7, "Porto", "PT", frozenset({1}))
        profiles.record_impression(7, li.line_item_id, day=1, now=150.0)
        assert (
            tfilter.exclusion_reason(li, request(user=user, ts=150.0))
            is ExclusionReason.FREQUENCY_CAP
        )
        assert tfilter.exclusion_reason(li, request(user=user, ts=250.0)) is None

    def test_reason_priority_deterministic(self, tfilter):
        """Exchange check precedes geo (evaluation order is fixed)."""
        li = line_item(
            targeting=Targeting(
                countries=frozenset({"US"}), exchanges=frozenset({42})
            )
        )
        assert (
            tfilter.exclusion_reason(li, request())
            is ExclusionReason.EXCHANGE_NOT_ALLOWED
        )

    def test_split(self, tfilter):
        items = [
            line_item(line_item_id=1),
            line_item(line_item_id=2, targeting=Targeting(countries=frozenset({"US"}))),
        ]
        passing, excluded = tfilter.split(items, request())
        assert [li.line_item_id for li in passing] == [1]
        assert [(li.line_item_id, r) for li, r in excluded] == [
            (2, ExclusionReason.GEO_MISMATCH)
        ]


class TestProfileStore:
    def test_record_impression_increments(self, profiles):
        assert profiles.record_impression(1, 10, day=0, now=5.0) == 1
        assert profiles.record_impression(1, 10, day=0, now=6.0) == 2
        assert profiles.frequency(1, 10, day=0) == 2
        assert profiles.frequency(1, 10, day=1) == 0
        assert profiles.frequency(99, 10, day=0) == 0

    def test_update_hook_fires(self, profiles):
        calls = []
        profiles.on_update(lambda *a: calls.append(a))
        profiles.record_impression(1, 10, day=0, now=5.0)
        assert calls == [(1, 10, 1, 0, "impression")]

    def test_feed_write_healthy(self, profiles):
        profiles.apply_feed_write(1, 10, count=5, day=0, now=1.0)
        assert profiles.frequency(1, 10, day=0) == 5
        assert profiles.corrupted_writes == 0

    def test_feed_write_corruption(self, profiles):
        profiles.install_corruption(1.0, seed=1)  # always corrupt
        stored = profiles.apply_feed_write(1, 10, count=5, day=0, now=1.0)
        assert stored == 0
        assert profiles.frequency(1, 10, day=0) == 0
        assert profiles.corrupted_writes == 1

    def test_corruption_rate_partial(self, profiles):
        profiles.install_corruption(0.5, seed=3)
        for i in range(200):
            profiles.apply_feed_write(i, 10, count=3, day=0, now=1.0)
        assert 60 <= profiles.corrupted_writes <= 140

    def test_clear_corruption(self, profiles):
        profiles.install_corruption(1.0)
        profiles.clear_corruption()
        assert profiles.apply_feed_write(1, 10, count=5, day=0, now=1.0) == 5

    def test_invalid_rate(self, profiles):
        with pytest.raises(ValueError):
            profiles.install_corruption(1.5)

    def test_user_count(self, profiles):
        profiles.record_impression(1, 10, 0, 0.0)
        profiles.record_impression(2, 10, 0, 0.0)
        assert profiles.user_count == 2
