"""Tests for the workload scenario builders and the presentation path."""

import pytest

from repro.adplatform import (
    AdPlatform,
    BidRequest,
    Exchange,
    IdSpace,
    LineItem,
    PodSpec,
    Publisher,
    Targeting,
    TargetingModel,
    User,
    ab_test_scenario,
    cannibalization_scenario,
    exclusion_scenario,
    frequency_cap_scenario,
    make_line_items,
    new_exchange_scenario,
    perf_scenario,
    spam_scenario,
)
from repro.adplatform.presentation import EXTERNAL_WIN_PROBABILITY


class TestScenarioBuilders:
    @pytest.mark.parametrize(
        "factory",
        [spam_scenario, new_exchange_scenario, ab_test_scenario,
         exclusion_scenario, cannibalization_scenario,
         frequency_cap_scenario, perf_scenario],
    )
    def test_scenarios_assemble(self, factory):
        scenario = factory()
        assert scenario.platform.bidservers
        assert scenario.platform.adservers
        assert scenario.cluster.hosts()
        assert scenario.description

    def test_spam_scenario_bots_flagged(self):
        scenario = spam_scenario(bot_count=3)
        bots = scenario.extras["bots"]
        assert len(bots) == 3
        assert all(b.is_bot for b in bots)
        assert len(scenario.traffic.bots) == 3

    def test_new_exchange_inactive_until_activation(self):
        scenario = new_exchange_scenario(activation_time=123.0)
        new_ex = scenario.extras["new_exchange"]
        assert not new_ex.is_active(122.9)
        assert new_ex.is_active(123.0)

    def test_ab_scenario_two_pods_disjoint_hosts(self):
        scenario = ab_test_scenario()
        a = set(scenario.extras["model_a_hosts"])
        b = set(scenario.extras["model_b_hosts"])
        assert a and b and a.isdisjoint(b)
        models = {pod.spec.model.name for pod in scenario.platform.pods}
        assert models == {"model-A", "model-B"}

    def test_cannibalization_price_geometry(self):
        from repro.adplatform.auction import PRICE_BAND

        scenario = cannibalization_scenario()
        lam = scenario.extras["lam"]
        rivals = scenario.extras["rivals"]
        lam_ceiling = lam.advisory_price * (1 + PRICE_BAND)
        for rival in rivals:
            assert rival.advisory_price * (1 - PRICE_BAND) > lam_ceiling

    def test_frequency_cap_scenario_corruption_installed(self):
        scenario = frequency_cap_scenario(corruption_rate=1.0)
        profiles = scenario.platform.profiles
        stored = profiles.apply_feed_write(1, 2, count=9, day=0, now=0.0)
        assert stored == 0

    def test_make_line_items_targeting_mix(self):
        ids = IdSpace()
        items, campaigns = make_line_items(ids, 100, seed=5)
        assert len(items) == 100
        geo = sum(1 for li in items if li.targeting.countries is not None)
        seg = sum(1 for li in items if li.targeting.segments is not None)
        assert 15 <= geo <= 60
        assert 15 <= seg <= 60
        assert all(any(li in c.line_items for c in campaigns) for li in items)

    def test_scenario_deterministic(self):
        a = spam_scenario(seed=42)
        b = spam_scenario(seed=42)
        assert [li.advisory_price for li in a.platform.line_items] == [
            li.advisory_price for li in b.platform.line_items
        ]


class TestPresentationPath:
    def _platform(self, cap=None):
        ids = IdSpace()
        item = LineItem(
            line_item_id=ids.next("line_item"), campaign_id=1,
            advisory_price=2.0, targeting=Targeting(), frequency_cap=cap,
        )
        platform = AdPlatform(
            pods=[PodSpec("main", TargetingModel("m"), 1, 1, 1)],
            line_items=[item],
            seconds_per_day=100.0,
        )
        return platform, ids, item

    def _request(self, platform, ids, user):
        return BidRequest(
            request_id=platform.request_ids.next(),
            user=user,
            exchange=Exchange(ids.next("exchange"), "X"),
            publisher=Publisher(ids.next("publisher"), "p"),
            timestamp=platform.cluster.loop.now,
        )

    def test_external_win_rate_approximates_constant(self):
        platform, ids, _item = self._platform()
        user_pool = [
            User(ids.next("user"), "P", "PT", frozenset({1})) for _ in range(50)
        ]
        bids = 0
        for i in range(400):
            outcome = platform.handle_bid_request(
                self._request(platform, ids, user_pool[i % 50])
            )
            bids += outcome.did_bid
        platform.cluster.run_until(20.0)
        impressions = platform.total_impressions()
        assert bids == 400
        rate = impressions / bids
        assert abs(rate - EXTERNAL_WIN_PROBABILITY) < 0.1

    def test_serve_time_cap_recheck_blocks_races(self):
        """Several slots of one page view pass bid-time filtering before
        any impression lands; the serve-time recheck enforces the cap."""
        platform, ids, item = self._platform(cap=1)
        user = User(ids.next("user"), "P", "PT", frozenset({1}))
        # Burst of simultaneous requests (all pass bid-time cap check).
        for _ in range(20):
            platform.handle_bid_request(self._request(platform, ids, user))
        platform.cluster.run_until(50.0)
        day0 = platform.profiles.frequency(user.user_id, item.line_item_id, 0)
        assert day0 == 1  # exactly the cap, despite ~10 external wins

    def test_clicks_track_model_ctr(self):
        platform, ids, _item = self._platform()
        users = [
            User(ids.next("user"), "P", "PT", frozenset({1})) for _ in range(100)
        ]
        for i in range(1000):
            platform.handle_bid_request(
                self._request(platform, ids, users[i % 100])
            )
        platform.cluster.run_until(30.0)
        impressions = platform.total_impressions()
        clicks = platform.total_clicks()
        assert impressions > 300
        # The low-discrepancy click accumulator keeps realized CTR within
        # one click of the expected sum of probabilities.
        model = platform.pods[0].presentationservers[0].model
        assert 0.0 < clicks / impressions < 0.2
        assert clicks >= 1

    def test_spend_recorded_against_budget(self):
        platform, ids, item = self._platform()
        item.daily_budget = 10_000.0
        user = User(ids.next("user"), "P", "PT", frozenset({1}))
        for _ in range(50):
            platform.handle_bid_request(self._request(platform, ids, user))
        platform.cluster.run_until(20.0)
        assert 0 < item.spent_today <= 50 * item.advisory_price * 1.15

    def test_budget_exhaustion_stops_bidding(self):
        platform, ids, item = self._platform()
        item.daily_budget = item.advisory_price * 2  # room for ~2 impressions
        user = User(ids.next("user"), "P", "PT", frozenset({1}))
        outcomes = []
        for _ in range(100):
            outcomes.append(
                platform.handle_bid_request(self._request(platform, ids, user))
            )
            platform.cluster.run_for(1.0)
        # Once spend exceeds budget, filtering excludes the item and the
        # platform stops bidding (no other line items exist).
        assert not outcomes[-1].did_bid
        assert any(o.did_bid for o in outcomes[:5])
