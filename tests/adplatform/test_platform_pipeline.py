"""Tests for the assembled platform: servers, event flow, traffic, pods."""

import pytest

from repro.adplatform import (
    AdPlatform,
    BidRequest,
    BotSpec,
    Exchange,
    ExchangeTraffic,
    IdSpace,
    LineItem,
    PodSpec,
    Publisher,
    Targeting,
    TargetingModel,
    User,
    make_exchanges,
    make_publishers,
    make_users,
)
from repro.baselines import LoggingBaseline


def open_line_item(ids, price=2.0):
    return LineItem(
        line_item_id=ids.next("line_item"), campaign_id=1,
        advisory_price=price, targeting=Targeting(),
    )


def tiny_platform(line_items=None, pods=None):
    ids = IdSpace()
    items = line_items if line_items is not None else [open_line_item(ids)]
    platform = AdPlatform(
        pods=pods or [PodSpec("main", TargetingModel("m"), 1, 1, 1)],
        line_items=items,
    )
    platform.record_outcomes = True
    return platform, ids


def send_request(platform, ids, rid=None, user=None, ts=None):
    req = BidRequest(
        request_id=rid if rid is not None else platform.request_ids.next(),
        user=user or User(ids.next("user"), "Porto", "PT", frozenset({1})),
        exchange=Exchange(ids.next("exchange"), "X"),
        publisher=Publisher(ids.next("publisher"), "pub"),
        timestamp=ts if ts is not None else platform.cluster.loop.now,
    )
    return platform.handle_bid_request(req)


class TestBidPipeline:
    def test_bid_emitted_for_winning_auction(self):
        platform, ids = tiny_platform()
        baseline = LoggingBaseline(platform.cluster)
        baseline.install()
        outcome = send_request(platform, ids)
        assert outcome.did_bid
        platform.cluster.run_until(3.0)
        bids = baseline.store.events_of_type("bid")
        assert len(bids) == 1
        assert bids[0].payload["country"] == "PT"
        assert bids[0].request_id == outcome.request.request_id

    def test_no_bid_when_all_excluded(self):
        ids = IdSpace()
        item = LineItem(
            line_item_id=ids.next("line_item"), campaign_id=1,
            advisory_price=1.0,
            targeting=Targeting(countries=frozenset({"US"})),
        )
        platform, _ = tiny_platform(line_items=[item])
        baseline = LoggingBaseline(platform.cluster)
        baseline.install()
        outcome = send_request(platform, ids)
        assert not outcome.did_bid
        platform.cluster.run_until(3.0)
        assert baseline.store.events_of_type("bid") == []
        exclusions = baseline.store.events_of_type("exclusion")
        assert len(exclusions) == 1
        assert exclusions[0].payload["reason"] == "GEO_MISMATCH"

    def test_auction_event_lists_participants(self):
        ids = IdSpace()
        items = [open_line_item(ids, price=1.0 + i) for i in range(3)]
        platform, _ = tiny_platform(line_items=items)
        baseline = LoggingBaseline(platform.cluster)
        baseline.install()
        send_request(platform, ids)
        platform.cluster.run_until(3.0)
        (auction,) = baseline.store.events_of_type("auction")
        assert len(auction.payload["line_item_ids"]) == 3
        assert auction.payload["winner_price"] == max(auction.payload["bid_prices"])

    def test_impression_and_profile_follow_win(self):
        platform, ids = tiny_platform()
        baseline = LoggingBaseline(platform.cluster)
        baseline.install()
        # Send until one wins the (hash-based) external auction.
        for _ in range(10):
            send_request(platform, ids)
        platform.cluster.run_until(10.0)
        impressions = baseline.store.events_of_type("impression")
        assert impressions
        assert platform.profiles.user_count >= 1
        updates = baseline.store.events_of_type("profile_update")
        assert len(updates) >= len(impressions)

    def test_request_id_threads_through_funnel(self):
        platform, ids = tiny_platform()
        baseline = LoggingBaseline(platform.cluster)
        baseline.install()
        outcomes = [send_request(platform, ids) for _ in range(10)]
        platform.cluster.run_until(10.0)
        bid_rids = {e.request_id for e in baseline.store.events_of_type("bid")}
        imp_rids = {e.request_id for e in baseline.store.events_of_type("impression")}
        assert imp_rids <= bid_rids  # every impression traces to its bid
        assert bid_rids == {o.request.request_id for o in outcomes if o.did_bid}

    def test_latency_recorded(self):
        platform, ids = tiny_platform()
        outcome = send_request(platform, ids)
        assert outcome.latency > 0
        assert platform.bid_latencies() == [outcome.latency]

    def test_budget_spend_recorded(self):
        platform, ids = tiny_platform()
        item = platform.line_items[0]
        for _ in range(20):
            send_request(platform, ids)
        platform.cluster.run_until(10.0)
        assert item.spent_today > 0


class TestPods:
    def test_user_sticky_pod_routing(self):
        pods = [
            PodSpec("A", TargetingModel("A"), 1, 1, 1),
            PodSpec("B", TargetingModel("B"), 1, 1, 1),
        ]
        platform, ids = tiny_platform(pods=pods)
        u = User(ids.next("user"), "Porto", "PT", frozenset({1}))
        req = lambda: BidRequest(
            platform.request_ids.next(), u,
            Exchange(1, "X"), Publisher(1, "p"), platform.cluster.loop.now,
        )
        first = platform.pod_for(req())
        assert all(platform.pod_for(req()) is first for _ in range(10))

    def test_pod_host_lists_disjoint(self):
        pods = [
            PodSpec("A", TargetingModel("A"), 2, 2, 2),
            PodSpec("B", TargetingModel("B"), 2, 2, 2),
        ]
        platform, _ = tiny_platform(pods=pods)
        a, b = platform.pods
        assert set(a.host_names()).isdisjoint(b.host_names())
        assert len(a.host_names()) == 6

    def test_add_line_item_visible_to_adservers(self):
        platform, ids = tiny_platform()
        new = open_line_item(ids, price=9.0)
        platform.add_line_item(new)
        assert new in platform.adservers[0].line_items


class TestExchangeTraffic:
    def _traffic(self, sink, rate=10.0, bots=(), users=None, exchanges=None):
        from repro.cluster.simclock import EventLoop

        loop = EventLoop()
        ids = IdSpace()
        users = users if users is not None else make_users(50, ids, seed=1)
        exchanges = exchanges or make_exchanges(ids)
        traffic = ExchangeTraffic(
            loop=loop, users=users, exchanges=exchanges,
            publishers=make_publishers(ids), sink=sink,
            pageviews_per_second=rate, seed=5, bots=bots,
        )
        return loop, traffic

    def test_rate_roughly_honored(self):
        requests = []
        loop, traffic = self._traffic(requests.append, rate=20.0)
        traffic.start(until=30.0)
        loop.run_until(30.0)
        # 20 pv/s * 30 s * ~2 slots average => wide bounds.
        assert 600 <= len(requests) <= 2000
        assert traffic.pageviews > 0

    def test_request_ids_unique_and_monotone(self):
        requests = []
        loop, traffic = self._traffic(requests.append, rate=10.0)
        traffic.start(until=5.0)
        loop.run_until(5.0)
        rids = [r.request_id for r in requests]
        assert rids == sorted(rids)
        assert len(set(rids)) == len(rids)

    def test_inactive_exchange_gets_no_traffic(self):
        ids = IdSpace()
        exchanges = make_exchanges(ids, names=("A", "D"))
        exchanges[1].active_from = 1e9
        requests = []
        loop, traffic = self._traffic(
            requests.append, rate=10.0, exchanges=exchanges,
        )
        traffic.start(until=5.0)
        loop.run_until(5.0)
        assert requests
        assert all(r.exchange.name == "A" for r in requests)

    def test_bots_send_fixed_batches(self):
        ids = IdSpace()
        bot_user = User(ids.next("user"), "X", "US", frozenset(), is_bot=True)
        requests = []
        loop, traffic = self._traffic(
            requests.append, rate=0.0,
            bots=[BotSpec(bot_user, batch_size=25, period=2.0)],
            users=[],
        )
        traffic.start(until=10.0)
        loop.run_until(10.0)
        assert len(requests) == 5 * 25
        assert all(r.user.is_bot for r in requests)

    def test_deterministic_given_seed(self):
        out1, out2 = [], []
        loop1, t1 = self._traffic(out1.append, rate=15.0)
        t1.start(until=5.0)
        loop1.run_until(5.0)
        loop2, t2 = self._traffic(out2.append, rate=15.0)
        t2.start(until=5.0)
        loop2.run_until(5.0)
        assert [(r.user.user_id, r.exchange.name) for r in out1] == [
            (r.user.user_id, r.exchange.name) for r in out2
        ]

    def test_double_start_rejected(self):
        loop, traffic = self._traffic(lambda r: None)
        traffic.start(until=1.0)
        with pytest.raises(RuntimeError):
            traffic.start(until=2.0)

    def test_user_population_shape(self):
        ids = IdSpace()
        users = make_users(500, ids, seed=2)
        assert len({u.user_id for u in users}) == 500
        assert all(u.segments for u in users)
        countries = {u.country for u in users}
        assert {"US", "GB"} <= countries
