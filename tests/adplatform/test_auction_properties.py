"""Property tests for the internal auction and targeting filter."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adplatform.auction import PRICE_BAND, InternalAuction
from repro.adplatform.entities import (
    BidRequest,
    Exchange,
    LineItem,
    Publisher,
    Targeting,
    User,
)
from repro.adplatform.models import BaselineModel, ImprovedModel, TargetingModel
from repro.adplatform.profilestore import ProfileStore
from repro.adplatform.targeting import TargetingFilter

_prices = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)
_items = st.lists(
    st.tuples(st.integers(min_value=1, max_value=10**6), _prices),
    min_size=1,
    max_size=12,
    unique_by=lambda t: t[0],
)
_models = st.sampled_from(
    [TargetingModel("t"), BaselineModel("a"), ImprovedModel("b")]
)


class TestAuctionProperties:
    @settings(max_examples=100, deadline=None)
    @given(items=_items, uid=st.integers(min_value=1, max_value=10**6), model=_models)
    def test_every_price_in_its_band_and_winner_is_max(self, items, uid, model):
        auction = InternalAuction(model)
        user = User(uid, "P", "PT", frozenset({1}))
        line_items = [LineItem(lid, 1, price) for lid, price in items]
        result = auction.run(user, line_items)
        assert result is not None
        for entry in result.entries:
            advisory = entry.line_item.advisory_price
            assert advisory * (1 - PRICE_BAND) - 1e-9 <= entry.bid_price
            assert entry.bid_price <= advisory * (1 + PRICE_BAND) + 1e-9
        assert result.winner.bid_price == max(result.bid_prices)

    @settings(max_examples=60, deadline=None)
    @given(items=_items, uid=st.integers(min_value=1, max_value=10**6))
    def test_auction_deterministic(self, items, uid):
        model = TargetingModel("t")
        user = User(uid, "P", "PT", frozenset({1}))
        line_items = [LineItem(lid, 1, price) for lid, price in items]
        a = InternalAuction(model).run(user, list(line_items))
        b = InternalAuction(model).run(user, list(line_items))
        assert a.winner.line_item.line_item_id == b.winner.line_item.line_item_id
        assert a.bid_prices == b.bid_prices

    @settings(max_examples=60, deadline=None)
    @given(
        items=_items,
        uid=st.integers(min_value=1, max_value=10**6),
        factor=st.floats(min_value=2.0, max_value=5.0),
    )
    def test_dominant_advisory_price_always_wins(self, items, uid, factor):
        """A band strictly above everyone else's cannot lose — the
        cannibalization mechanism as a universal property."""
        model = TargetingModel("t")
        user = User(uid, "P", "PT", frozenset({1}))
        line_items = [LineItem(lid, 1, price) for lid, price in items]
        top_price = max(price for _lid, price in items)
        dominant = LineItem(
            999_999_999, 1,
            top_price * factor * (1 + PRICE_BAND) / (1 - PRICE_BAND),
        )
        result = InternalAuction(model).run(user, line_items + [dominant])
        assert result.winner.line_item is dominant


class TestTargetingFilterProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        countries=st.one_of(st.none(), st.sets(st.sampled_from(["US", "GB", "PT"]))),
        segments=st.one_of(
            st.none(), st.sets(st.integers(min_value=1, max_value=10), max_size=4)
        ),
        user_segments=st.sets(st.integers(min_value=1, max_value=10), max_size=4),
        country=st.sampled_from(["US", "GB", "PT", "JP"]),
    )
    def test_split_partitions_items(self, countries, segments, user_segments, country):
        tfilter = TargetingFilter(ProfileStore())
        item = LineItem(
            1, 1, 1.0,
            targeting=Targeting(
                countries=frozenset(countries) if countries is not None else None,
                segments=frozenset(segments) if segments is not None else None,
            ),
        )
        request = BidRequest(
            request_id=1,
            user=User(1, "X", country, frozenset(user_segments)),
            exchange=Exchange(1, "E"),
            publisher=Publisher(1, "P"),
            timestamp=0.0,
        )
        passing, excluded = tfilter.split([item], request)
        assert len(passing) + len(excluded) == 1
        # Consistency: passing iff exclusion_reason is None.
        reason = tfilter.exclusion_reason(item, request)
        assert bool(passing) == (reason is None)
        # Empty targeting sets are perverse but must not crash: an empty
        # countries set can never match, an empty segments set never
        # overlaps.
        if countries == set():
            assert not passing
