"""Regression tests for the seeded RCA fault library.

One test per injected fault pins the *symptom*: the fault must move its
metric decisively at ``fault_time`` and nowhere else, and the whole
trace must reproduce bit-identically across rebuilds (everything keys
off the scenario seed and virtual time — no wall clock anywhere).
"""

from __future__ import annotations

from repro.adplatform.workload import (
    rca_bad_exchange_scenario,
    rca_bot_surge_scenario,
    rca_misconfigured_campaign_scenario,
)

FAULT = 60.0
TRACE = 120.0


def test_misconfigured_campaign_click_collapse():
    scenario = rca_misconfigured_campaign_scenario(fault_time=FAULT)
    scenario.start(until=TRACE)
    scenario.cluster.run_until(FAULT)
    pre = scenario.platform.total_clicks()
    scenario.cluster.run_until(TRACE)
    post = scenario.platform.total_clicks() - pre

    assert pre > 50, "focal campaign should dominate clicks before the fault"
    assert post < pre * 0.33, f"clicks must collapse after the fault ({pre} -> {post})"
    # The fault is a targeting edit, not a traffic change: the focal
    # items simply stop passing filtering.
    for item in scenario.extras["focal_items"]:
        assert item.targeting.countries == frozenset({"ZZ"})


def test_bot_surge_request_spike():
    scenario = rca_bot_surge_scenario(fault_time=FAULT)
    scenario.start(until=TRACE)
    scenario.cluster.run_until(FAULT)
    pre = scenario.traffic.requests_sent
    scenario.cluster.run_until(TRACE)
    post = scenario.traffic.requests_sent - pre

    assert post > pre * 2, f"bid volume must surge after the fault ({pre} -> {post})"


def test_bot_surge_is_silent_before_fault():
    """BotSpec.active_from delays the first burst past fault_time."""
    scenario = rca_bot_surge_scenario(fault_time=FAULT)
    bot_ids = {u.user_id for u in scenario.extras["bots"]}
    seen: list[int] = []
    original_sink = scenario.traffic.sink

    def spy(request):
        if request.user.user_id in bot_ids:
            seen.append(request.timestamp)
        original_sink(request)

    scenario.traffic.sink = spy
    scenario.start(until=TRACE)
    scenario.cluster.run_until(TRACE)
    assert seen, "bots must fire after the fault"
    assert min(seen) >= FAULT


def test_bad_exchange_latency_shift():
    scenario = rca_bad_exchange_scenario(fault_time=FAULT)
    bad_id = scenario.extras["bad_exchange"].exchange_id
    latencies: dict[tuple[int, bool], list[float]] = {}
    original_sink = scenario.traffic.sink

    def spy(request):
        key = (request.exchange.exchange_id, request.timestamp >= FAULT)
        latencies.setdefault(key, []).append(request.exchange_latency_ms)
        original_sink(request)

    scenario.traffic.sink = spy
    scenario.start(until=TRACE)
    scenario.cluster.run_until(TRACE)

    from repro.cluster.metrics import percentile

    bad_pre = percentile(latencies[(bad_id, False)], 95.0)
    bad_post = percentile(latencies[(bad_id, True)], 95.0)
    assert bad_post > bad_pre * 3, (bad_pre, bad_post)
    for (exchange_id, is_post), values in latencies.items():
        if exchange_id != bad_id and is_post:
            assert percentile(values, 95.0) < bad_post / 3


def test_fault_scenarios_reproduce_bit_identically():
    """Two independent builds replay the identical trace — the property
    the RCA ScenarioRunner's multi-round querying relies on."""

    def trace_signature(scenario):
        requests = []
        original_sink = scenario.traffic.sink

        def spy(request):
            requests.append(
                (
                    request.request_id,
                    request.user.user_id,
                    request.exchange.exchange_id,
                    round(request.exchange_latency_ms, 9),
                    request.timestamp,
                )
            )
            original_sink(request)

        scenario.traffic.sink = spy
        scenario.start(until=TRACE)
        scenario.cluster.run_until(TRACE)
        return requests

    for builder in (
        rca_misconfigured_campaign_scenario,
        rca_bot_surge_scenario,
        rca_bad_exchange_scenario,
    ):
        first = trace_signature(builder(fault_time=FAULT))
        second = trace_signature(builder(fault_time=FAULT))
        assert first == second
        assert len(first) > 500


def test_latency_rng_does_not_perturb_existing_scenarios():
    """The latency stream is drawn from a dedicated RNG: the pinned
    choice/poisson streams of the pre-existing scenarios must be exactly
    what they were before latency existed."""
    from repro.adplatform.workload import spam_scenario

    scenario = spam_scenario()
    scenario.start(until=30.0)
    scenario.cluster.run_until(30.0)
    # Pinned counts from the seeded spam scenario (seed=101), identical
    # to the values before latency tracking existed: any change here
    # means the shared RNG stream was perturbed.
    assert scenario.traffic.pageviews == 346
    assert scenario.traffic.requests_sent == 2181
