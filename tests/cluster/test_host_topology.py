"""Tests for simulated hosts (CPU accounting) and topology/directory."""

import pytest

from repro.cluster.host import CostModel, SimHost
from repro.cluster.metrics import percentile, summarize_latencies, summarize_overhead
from repro.cluster.topology import ClusterDirectory, Topology
from repro.core.agent import RecordingTransport, ScrubAgent
from repro.core.events import EventRegistry
from repro.core.query import parse_query, plan_query, validate_query


@pytest.fixture
def registry():
    r = EventRegistry()
    r.define("bid", [("exchange_id", "long")])
    return r


def attach_agent(host, registry):
    agent = ScrubAgent(host.name, registry, RecordingTransport())
    host.attach_agent(agent)
    return agent


def install(agent, registry, text="select COUNT(*) from bid;"):
    plan = plan_query(validate_query(parse_query(text), registry), "q1")
    for obj in plan.host_objects:
        agent.install(obj)


class TestSimHostAccounting:
    def test_app_cpu_ledger(self):
        host = SimHost("h1", "dc1")
        host.charge_app(0.5)
        host.charge_app(0.25)
        assert host.app_cpu_seconds == 0.75
        with pytest.raises(ValueError):
            host.charge_app(-1.0)

    def test_scrub_cpu_zero_without_agent(self):
        assert SimHost("h1", "dc1").scrub_cpu_seconds == 0.0

    def test_scrub_cpu_grows_with_agent_work(self, registry):
        host = SimHost("h1", "dc1")
        agent = attach_agent(host, registry)
        install(agent, registry)
        before = host.scrub_cpu_seconds
        for i in range(100):
            agent.log("bid", exchange_id=1, request_id=i)
        assert host.scrub_cpu_seconds > before

    def test_overhead_ratio(self, registry):
        host = SimHost("h1", "dc1")
        agent = attach_agent(host, registry)
        install(agent, registry)
        host.charge_app(1.0)
        for i in range(1000):
            agent.log("bid", exchange_id=1, request_id=i)
        assert 0.0 < host.cpu_overhead() < 0.05

    def test_overhead_zero_without_app_work(self):
        assert SimHost("h1", "dc1").cpu_overhead() == 0.0

    def test_double_agent_attach_rejected(self, registry):
        host = SimHost("h1", "dc1")
        attach_agent(host, registry)
        with pytest.raises(RuntimeError):
            attach_agent(host, registry)

    def test_measure_request_latency(self, registry):
        host = SimHost("h1", "dc1")
        agent = attach_agent(host, registry)
        install(agent, registry)
        with host.measure_request() as m:
            host.charge_app(0.002)
            agent.log("bid", exchange_id=1, request_id=1)
        assert m.app_cost == pytest.approx(0.002)
        assert m.scrub_cost > 0
        assert m.latency == m.app_cost + m.scrub_cost
        assert host.latencies == [m.latency]

    def test_measure_request_without_scrub_activity(self, registry):
        host = SimHost("h1", "dc1")
        with host.measure_request() as m:
            host.charge_app(0.001)
        assert m.scrub_cost == 0.0

    def test_cost_model_monotone(self):
        from repro.core.agent.agent import AgentStats

        model = CostModel()
        light = AgentStats(events_logged=10)
        heavy = AgentStats(events_logged=10, events_examined=10,
                           events_checked=10, events_matched=10,
                           events_shipped=10, bytes_shipped=1000,
                           batches_flushed=1)
        assert model.agent_cost(heavy, 1) > model.agent_cost(light, 1)

    def test_cost_scales_with_per_query_checks(self):
        from repro.core.agent.agent import AgentStats

        model = CostModel()
        one = AgentStats(events_logged=10, events_examined=10, events_checked=10)
        four = AgentStats(events_logged=10, events_examined=10, events_checked=40)
        assert model.agent_cost(four) > model.agent_cost(one)


class TestTopology:
    def test_add_service_names_and_services(self):
        topo = Topology()
        hosts = topo.add_service("BidServers", "dc1", 3)
        assert [h.name for h in hosts] == [
            "bidservers-dc1-0", "bidservers-dc1-1", "bidservers-dc1-2",
        ]
        assert all(h.services == frozenset({"BidServers"}) for h in hosts)

    def test_add_service_twice_continues_numbering(self):
        topo = Topology()
        topo.add_service("BidServers", "dc1", 2)
        more = topo.add_service("BidServers", "dc1", 2)
        assert [h.name for h in more] == ["bidservers-dc1-2", "bidservers-dc1-3"]

    def test_duplicate_host_rejected(self):
        topo = Topology()
        topo.add_host("h1", "dc1")
        with pytest.raises(ValueError):
            topo.add_host("h1", "dc2")

    def test_lookups(self):
        topo = Topology()
        topo.add_service("BidServers", "dc1", 2)
        topo.add_service("AdServers", "dc2", 1)
        assert len(topo.hosts_in_service("bidservers")) == 2
        assert len(topo.hosts_in_datacenter("dc2")) == 1
        assert topo.datacenters() == ("dc1", "dc2")
        assert topo.services() == ("AdServers", "BidServers")
        assert len(topo) == 3
        with pytest.raises(KeyError):
            topo.host("nope")


class TestClusterDirectory:
    def test_resolves_only_hosts_with_agents(self, registry):
        from repro.core.query.ast import TargetAll

        topo = Topology()
        h1 = topo.add_host("h1", "dc1", ["BidServers"])
        topo.add_host("h2", "dc1", ["BidServers"])  # no agent
        attach_agent(h1, registry)
        directory = ClusterDirectory(topo)
        resolved = directory.resolve(TargetAll())
        assert [name for name, _agent in resolved] == ["h1"]

    def test_resolves_target_expression(self, registry):
        topo = Topology()
        for name, dc, svc in [("b1", "dc1", "BidServers"), ("a1", "dc1", "AdServers"),
                              ("b2", "dc2", "BidServers")]:
            attach_agent(topo.add_host(name, dc, [svc]), registry)
        directory = ClusterDirectory(topo)
        target = parse_query(
            "select COUNT(*) from bid @[Service in BidServers and Datacenter = dc1];"
        ).target
        assert [n for n, _a in directory.resolve(target)] == ["b1"]


class TestMetrics:
    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == pytest.approx(50.5)
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100
        assert percentile([42.0], 99) == 42.0
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_latency_summary(self):
        summary = summarize_latencies([0.001, 0.002, 0.003, 0.010])
        assert summary.count == 4
        assert summary.max == 0.010
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.max
        assert "ms" in str(summary)

    def test_overhead_summary(self, registry):
        hosts = []
        for i in range(3):
            host = SimHost(f"h{i}", "dc1")
            host.charge_app(1.0)
            hosts.append(host)
        agent = attach_agent(hosts[0], registry)
        install(agent, registry)
        for i in range(10_000):
            agent.log("bid", exchange_id=1, request_id=i)
        summary = summarize_overhead(hosts)
        assert summary.hosts == 3
        assert summary.max_overhead > summary.mean_overhead > 0
        assert 0 < summary.aggregate_overhead < summary.max_overhead
