"""End-to-end acceptance for closed-loop accuracy-aware sampling.

A ``TARGET CI`` query on a simulated fleet must start wide-open (full
event rate), relax to the cheapest rate whose *measured* CI still meets
the target, and then sit still inside the deadband.  When the impact
budget tightens mid-run, the controller clamps and reports the honest
achievable bound as ``rate_limited`` degradation — without the host
governors ever escalating to shed or quarantine.
"""

import pytest

from repro.cluster.runtime import SimCluster, run_to_completion
from repro.core.agent.governor import (
    STAGE_QUARANTINED,
    STAGE_SHEDDING,
    ImpactBudget,
)
from repro.core.events import EventRegistry

TARGET = 0.10

QUERY = (
    "select SUM(bid_price) from bid @[Service in BidServers] "
    "window 5s duration 120s target ci 10%;"
)


@pytest.fixture
def registry():
    r = EventRegistry()
    r.define("bid", [("exchange_id", "long"), ("bid_price", "double")])
    return r


def priced_traffic(cluster, hosts, per_tick=10, tick=0.1):
    """Steady traffic with a deterministic heavy-tailed price mix (1 in
    20 bids is a 20x whale) so the value dispersion is large enough that
    the CI inversion lands mid-ladder, not at the rate floor."""
    counter = [0]

    def emit():
        for host in hosts:
            for _ in range(per_tick):
                rid = counter[0]
                counter[0] += 1
                host.charge_app(0.002)
                host.agent.log(
                    "bid",
                    exchange_id=1,
                    bid_price=20.0 if rid % 20 == 0 else 1.0,
                    request_id=rid,
                )

    cluster.loop.call_every(tick, emit)


class TestConvergence:
    def test_starts_full_rate_and_relaxes_to_target(self, registry):
        with SimCluster(registry, flush_interval=0.5) as cluster:
            hosts = cluster.add_service("BidServers", "dc1", 8)
            priced_traffic(cluster, hosts)
            handle = cluster.submit(QUERY)
            ctl = cluster.server.controller(handle.query_id)
            assert ctl is not None
            # Wide-open start: the submitted (full) rates apply until
            # telemetry proves a cheaper pair meets the target.
            assert ctl.event_rate == 1.0
            assert ctl.version == 0

            cluster.run_for(60.0)
            mid = ctl.status()
            assert mid["state"] == "tracking"
            assert mid["version"] >= 1
            assert mid["last_update_reason"] == "relax"
            # Cheaper than submitted, but not degenerate: the deadband
            # aims at 90% of the target, not the floor.
            assert 0.05 < mid["event_rate"] <= 0.75
            converged_version = mid["version"]

            # Deadband: with telemetry steady, the pair must sit still —
            # no further retunes over the rest of the run.
            cluster.run_for(50.0)
            assert ctl.status()["version"] == converged_version

            results = run_to_completion(cluster, handle)

        sampling = results.sampling
        assert sampling is not None
        assert sampling["state"] == "tracking"
        assert sampling["rate_limited"] is None

        # The measured CI at the relaxed rates meets the target: both
        # the smoothed controller view and the raw late windows.
        assert sampling["achieved_relative_error"] is not None
        assert sampling["achieved_relative_error"] <= TARGET
        settled = [
            est
            for window in results.windows
            if window.window_start >= 60.0
            for est in (window.estimates or {}).values()
        ]
        assert settled
        for est in settled:
            assert est.relative_error <= TARGET

    def test_estimates_flow_at_full_rate(self, registry):
        # Dispersion telemetry must be well-defined before any sampling
        # happens, otherwise the loop could never take its first step.
        with SimCluster(registry, flush_interval=0.5) as cluster:
            hosts = cluster.add_service("BidServers", "dc1", 4)
            priced_traffic(cluster, hosts, per_tick=5)
            handle = cluster.submit(
                "select SUM(bid_price) from bid @[Service in BidServers] "
                "window 5s duration 10s target ci 10%;"
            )
            cluster.run_for(7.0)
            results = cluster.poll(handle.query_id)
            assert results.windows
            est = next(iter(results.windows[0].estimates.values()))
            assert est.sample_events > 0
            assert est.value_dispersion >= 0.0


class TestBudgetTightening:
    def test_mid_run_clamp_degrades_honestly(self, registry):
        generous = ImpactBudget(max_wall_seconds=0.5)
        with SimCluster(
            registry, flush_interval=0.5, impact_budget=generous
        ) as cluster:
            hosts = cluster.add_service("BidServers", "dc1", 8)
            priced_traffic(cluster, hosts)
            handle = cluster.submit(QUERY)
            ctl = cluster.server.controller(handle.query_id)

            cluster.run_for(50.0)
            assert ctl.status()["state"] == "tracking"
            rate_before = ctl.event_rate

            # Operations tightens the budget mid-run (the controller's
            # copy only — the agents keep their generous governors, so
            # any overload response must come from the control loop).
            ctl.budget = ImpactBudget(max_wall_seconds=1e-7)
            cluster.run_for(30.0)

            sampling = cluster.poll(handle.query_id).sampling
            assert sampling["state"] == "rate_limited"
            assert sampling["last_update_reason"] == "clamp"
            assert sampling["event_rate"] < rate_before
            limited = sampling["rate_limited"]
            assert limited is not None
            assert limited["reason"] == "impact-budget"
            # The reported bound widens to what the clamped rate can
            # actually deliver — never a silent accuracy lie.
            assert limited["achievable_relative_error"] > TARGET
            assert limited["target_relative_error"] == pytest.approx(TARGET)

            # The controller backed off below the clamp line, so the
            # governor ladder never fires: no shed, no quarantine.
            for host in hosts:
                agent = host.agent
                assert agent.stats.events_shed == 0
                assert agent.stats.queries_quarantined == 0
                for snap in agent.governor_state().values():
                    assert snap["stage"] not in (
                        STAGE_SHEDDING,
                        STAGE_QUARANTINED,
                    )

            results = run_to_completion(cluster, handle)
        assert results.sampling["rate_limited"] is not None
