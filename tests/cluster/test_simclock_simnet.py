"""Tests for the discrete-event loop and the simulated network."""

import pytest

from repro.cluster.simclock import EventLoop
from repro.cluster.simnet import LinkSpec, SimNetwork


class TestEventLoop:
    def test_time_advances_to_deadline(self):
        loop = EventLoop()
        loop.run_until(5.0)
        assert loop.now == 5.0

    def test_callbacks_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.call_at(3.0, order.append, "c")
        loop.call_at(1.0, order.append, "a")
        loop.call_at(2.0, order.append, "b")
        loop.run_until(10.0)
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        loop = EventLoop()
        order = []
        for tag in "abc":
            loop.call_at(1.0, order.append, tag)
        loop.run_until(2.0)
        assert order == ["a", "b", "c"]

    def test_now_during_callback(self):
        loop = EventLoop()
        seen = []
        loop.call_at(4.2, lambda: seen.append(loop.now))
        loop.run_until(10.0)
        assert seen == [4.2]

    def test_call_later(self):
        loop = EventLoop(start=10.0)
        fired = []
        loop.call_later(5.0, fired.append, True)
        loop.run_until(14.9)
        assert fired == []
        loop.run_until(15.0)
        assert fired == [True]

    def test_cannot_schedule_in_past(self):
        loop = EventLoop(start=10.0)
        with pytest.raises(ValueError):
            loop.call_at(5.0, lambda: None)
        with pytest.raises(ValueError):
            loop.call_later(-1.0, lambda: None)

    def test_cannot_run_backwards(self):
        loop = EventLoop(start=10.0)
        with pytest.raises(ValueError):
            loop.run_until(5.0)

    def test_cancellation(self):
        loop = EventLoop()
        fired = []
        handle = loop.call_at(1.0, fired.append, True)
        handle.cancel()
        loop.run_until(2.0)
        assert fired == []

    def test_call_every(self):
        loop = EventLoop()
        ticks = []
        loop.call_every(1.0, lambda: ticks.append(loop.now))
        loop.run_until(5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_call_every_until(self):
        loop = EventLoop()
        ticks = []
        loop.call_every(1.0, lambda: ticks.append(loop.now), until=3.0)
        loop.run_until(10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_call_every_cancel(self):
        loop = EventLoop()
        ticks = []
        series = loop.call_every(1.0, lambda: ticks.append(loop.now))
        loop.run_until(2.5)
        series.cancel()
        loop.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_callbacks_scheduling_callbacks(self):
        loop = EventLoop()
        fired = []
        loop.call_at(1.0, lambda: loop.call_later(1.0, lambda: fired.append(loop.now)))
        loop.run_until(5.0)
        assert fired == [2.0]

    def test_call_every_no_float_drift(self):
        loop = EventLoop()
        ticks = []
        loop.call_every(0.1, lambda: ticks.append(loop.now))
        loop.run_until(30.0)
        # Tick 100 lands on 10.0 within one ulp, not 9.999999999999998
        # (repeated now+interval accumulates ~1e-13 by tick 200).
        assert abs(ticks[99] - 10.0) < 1e-12
        assert abs(ticks[199] - 20.0) < 1e-12

    def test_drain(self):
        loop = EventLoop()
        fired = []
        loop.call_at(100.0, fired.append, True)
        loop.drain()
        assert fired == [True]
        assert loop.now == 100.0

    def test_run_for(self):
        loop = EventLoop(start=3.0)
        loop.run_for(2.0)
        assert loop.now == 5.0


class TestLinkSpec:
    def test_transfer_time(self):
        link = LinkSpec(latency_seconds=0.01, bandwidth_bytes_per_second=1000)
        assert link.transfer_time(500) == pytest.approx(0.51)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(-1.0, 100)
        with pytest.raises(ValueError):
            LinkSpec(0.0, 0.0)


class TestSimNetwork:
    def test_intra_vs_inter_dc_latency(self):
        loop = EventLoop()
        net = SimNetwork(loop)
        assert net.transfer_time("dc1", "dc1", 0) < net.transfer_time("dc1", "dc2", 0)

    def test_custom_link(self):
        loop = EventLoop()
        net = SimNetwork(loop)
        net.set_link("dc1", "dc2", LinkSpec(1.0, 1e9))
        assert net.transfer_time("dc1", "dc2", 0) == pytest.approx(1.0)
        assert net.transfer_time("dc2", "dc1", 0) == pytest.approx(1.0)  # symmetric

    def test_asymmetric_link(self):
        loop = EventLoop()
        net = SimNetwork(loop)
        net.set_link("a", "b", LinkSpec(1.0, 1e9), symmetric=False)
        assert net.transfer_time("a", "b", 0) == pytest.approx(1.0)
        assert net.transfer_time("b", "a", 0) != pytest.approx(1.0)

    def test_delivery_pays_latency(self):
        loop = EventLoop()
        net = SimNetwork(loop)
        net.set_link("dc1", "central", LinkSpec(0.5, 1e6))
        received = []
        net.deliver("dc1", "central", 1_000_000, lambda: received.append(loop.now))
        loop.run_until(0.1)
        assert received == []
        loop.run_until(3.0)
        assert received == [pytest.approx(1.5)]  # 0.5 latency + 1.0 transfer

    def test_stats_accounting(self):
        loop = EventLoop()
        net = SimNetwork(loop)
        net.deliver("dc1", "dc1", 100, lambda: None)
        net.deliver("dc1", "dc2", 200, lambda: None)
        assert net.total_bytes() == 300
        assert net.total_bytes(cross_dc_only=True) == 200
        assert net.total_messages() == 2
        assert net.total_messages(cross_dc_only=True) == 1
