"""Failure injection: partitions, silent hosts, install failures.

Scrub's degraded modes must be *graceful and visible*: missing data
shows up as lower counts plus accounting (drops, estimator treating
silent hosts as zero), never as hangs, crashes, or silently wrong
per-window semantics.
"""

import pytest

from repro.cluster import CENTRAL_DATACENTER, SimCluster, run_to_completion
from repro.core.events import EventRegistry
from repro.core.query import ScrubValidationError


@pytest.fixture
def registry():
    r = EventRegistry()
    r.define("bid", [("exchange_id", "long"), ("bid_price", "double")])
    return r


def traffic(cluster, hosts, per_tick=3, tick=0.5):
    counter = [0]

    def emit():
        for host in hosts:
            for _ in range(per_tick):
                counter[0] += 1
                host.charge_app(0.001)
                host.agent.log(
                    "bid", exchange_id=1, bid_price=1.0, request_id=counter[0]
                )

    cluster.loop.call_every(tick, emit)
    return counter


class TestNetworkPartition:
    def test_partitioned_host_contributes_nothing_but_query_completes(
        self, registry
    ):
        cluster = SimCluster(registry, flush_interval=0.5)
        near = cluster.add_service("BidServers", "dc1", 1)
        far = cluster.add_service("BidServers", "dc2", 1)
        traffic(cluster, near + far, per_tick=2)
        cluster.network.partition("dc2", CENTRAL_DATACENTER)

        handle = cluster.submit(
            "select COUNT(*) from bid @[Service in BidServers] "
            "window 10s duration 20s;"
        )
        results = run_to_completion(cluster, handle)
        counts = [w.rows[0][0] for w in results.windows]
        # Only dc1's events arrive: half the fleet's volume, no hang.
        assert sum(counts) > 0
        per_window_one_host = 2 * 20  # 2 events x 20 ticks per 10s window
        assert all(c <= per_window_one_host for c in counts)
        # The loss is visible in link accounting.
        stats = cluster.network.stats[("dc2", CENTRAL_DATACENTER)]
        assert stats.dropped_messages > 0

    def test_partition_heals_mid_query(self, registry):
        cluster = SimCluster(registry, flush_interval=0.5)
        hosts = cluster.add_service("BidServers", "dc2", 1)
        traffic(cluster, hosts, per_tick=2)
        cluster.network.partition("dc2", CENTRAL_DATACENTER)

        handle = cluster.submit(
            "select COUNT(*) from bid window 10s duration 40s;"
        )
        cluster.run_until(20.0)
        cluster.network.heal("dc2", CENTRAL_DATACENTER)
        results = run_to_completion(cluster, handle)
        by_start = {w.window_start: w.rows[0][0] for w in results.windows}
        # Early windows lost their batches (flushes were dropped in
        # flight); post-heal windows are full.
        assert by_start.get(30.0, 0) == 40  # 2/tick x 20 ticks
        assert sum(by_start.values()) < 40 * 4

    def test_is_partitioned_reporting(self, registry):
        cluster = SimCluster(registry)
        cluster.network.partition("a", "b")
        assert cluster.network.is_partitioned("a", "b")
        assert cluster.network.is_partitioned("b", "a")
        cluster.network.heal("a", "b")
        assert not cluster.network.is_partitioned("a", "b")

    def test_asymmetric_partition(self, registry):
        cluster = SimCluster(registry)
        cluster.network.partition("a", "b", symmetric=False)
        assert cluster.network.is_partitioned("a", "b")
        assert not cluster.network.is_partitioned("b", "a")


class TestSilentAndDyingHosts:
    def test_host_dying_mid_query(self, registry):
        """A host that stops emitting mid-span: its windows shrink, the
        query still completes with every other host's data."""
        cluster = SimCluster(registry, flush_interval=0.5)
        stable = cluster.add_service("BidServers", "dc1", 1)
        dying = cluster.add_service("BidServers", "dc1", 1)

        counter = [0]

        def emit():
            now = cluster.now
            for host in stable + (dying if now < 10.0 else []):
                counter[0] += 1
                host.agent.log("bid", exchange_id=1, bid_price=1.0,
                               request_id=counter[0])

        cluster.loop.call_every(0.5, emit)
        handle = cluster.submit(
            "select COUNT(*) from bid window 10s duration 30s;"
        )
        results = run_to_completion(cluster, handle)
        by_start = {w.window_start: w.rows[0][0] for w in results.windows}
        assert by_start[0.0] > by_start[20.0]  # both hosts vs one host
        assert by_start[20.0] > 0              # survivor still reporting

    def test_estimator_counts_silent_hosts_as_zero(self, registry):
        """Under host sampling, a targeted-but-silent host must pull the
        estimate down, not vanish from the population."""
        cluster = SimCluster(registry, flush_interval=0.5)
        hosts = cluster.add_service("BidServers", "dc1", 4)
        # Only half the fleet produces events at all.
        traffic(cluster, hosts[:2], per_tick=5)
        handle = cluster.submit(
            "select COUNT(*) from bid @[Service in BidServers] "
            "sample hosts 100% sample events 50% window 10s duration 10s;"
        )
        results = run_to_completion(cluster, handle)
        window = results.windows[0]
        est = window.estimates["COUNT(*)"]
        # True total in window [0,10): ticks at 0.5..9.5 = 19 ticks x
        # 2 producing hosts x 5 events = 190.  All 4 targeted hosts are in
        # the estimator population, two with M_i = 0 — M_i is exact, so
        # the COUNT estimate is exact despite 50% event sampling.
        assert est.estimate == pytest.approx(190.0)


class TestInstallFailureRollback:
    def test_failed_install_rolls_back_earlier_hosts(self, registry):
        """If installation fails on host k, hosts 0..k-1 must be cleaned
        up — no half-installed query lingers on the fleet."""
        from repro.core import ManualClock, Scrub

        scrub = Scrub(clock=ManualClock(), grace_seconds=0.0)
        scrub.define_event("bid", [("exchange_id", "long")])
        good = scrub.add_host("good", services=["S"])

        # A host whose registry lacks the event type: install will raise.
        from repro.core.agent import RecordingTransport, ScrubAgent

        empty_registry = EventRegistry()
        bad_agent = ScrubAgent("bad", empty_registry, RecordingTransport())
        scrub.directory.add_host("bad", bad_agent, services=["S"])

        with pytest.raises(KeyError):
            scrub.submit("select COUNT(*) from bid @[Service in S];")
        assert good.active_query_ids == ()
        assert bad_agent.active_query_ids == ()
        # The central engine never saw the query either.
        assert scrub.central.registered_queries() == ()

    def test_no_matching_host_is_clean_failure(self, registry):
        from repro.core import ManualClock, Scrub

        scrub = Scrub(clock=ManualClock())
        scrub.define_event("bid", [("exchange_id", "long")])
        scrub.add_host("h1", services=["Other"])
        with pytest.raises(ScrubValidationError):
            scrub.submit("select COUNT(*) from bid @[Service in Nothing];")
        assert scrub.central.registered_queries() == ()
