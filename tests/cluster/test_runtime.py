"""End-to-end tests for the simulated cluster deployment."""

import pytest

from repro.cluster import LinkSpec, SimCluster, run_to_completion
from repro.cluster.metrics import OverheadSampler
from repro.core.events import EventRegistry


@pytest.fixture
def registry():
    r = EventRegistry()
    r.define("bid", [("exchange_id", "long"), ("bid_price", "double")])
    return r


def steady_traffic(cluster, hosts, per_tick=5, tick=0.1, price=1.0):
    counter = [0]

    def emit():
        for host in hosts:
            for _ in range(per_tick):
                counter[0] += 1
                host.charge_app(0.002)
                host.agent.log(
                    "bid", exchange_id=1, bid_price=price,
                    request_id=counter[0],
                )

    cluster.loop.call_every(tick, emit)
    return counter


class TestSimClusterQueries:
    def test_count_matches_traffic(self, registry):
        cluster = SimCluster(registry, flush_interval=0.5)
        hosts = cluster.add_service("BidServers", "dc1", 3)
        steady_traffic(cluster, hosts, per_tick=4, tick=0.1)
        handle = cluster.submit(
            "select COUNT(*) from bid @[Service in BidServers] "
            "window 10s duration 20s;"
        )
        results = run_to_completion(cluster, handle)
        counts = [w.rows[0][0] for w in results.windows]
        # Ticks at 0.1..9.9 (99) land in window 0; 10.0..19.9 (100) in
        # window 1; 3 hosts x 4 events per tick.
        assert counts == [1188, 1200]
        assert results.total_late_events == 0

    def test_events_pay_network_latency(self, registry):
        """With a slow link, early windows close before batches arrive."""
        cluster = SimCluster(
            registry,
            flush_interval=0.5,
            grace_seconds=0.1,
            inter_dc=LinkSpec(latency_seconds=5.0, bandwidth_bytes_per_second=1e9),
        )
        hosts = cluster.add_service("BidServers", "dc-remote", 1)
        steady_traffic(cluster, hosts, per_tick=2, tick=0.1)
        handle = cluster.submit(
            "select COUNT(*) from bid window 2s duration 10s;"
        )
        results = run_to_completion(cluster, handle)
        assert results.total_late_events > 0

    def test_network_byte_accounting(self, registry):
        cluster = SimCluster(registry, flush_interval=0.5)
        hosts = cluster.add_service("BidServers", "dc1", 2)
        steady_traffic(cluster, hosts)
        handle = cluster.submit("select COUNT(*) from bid duration 5s;")
        run_to_completion(cluster, handle)
        assert cluster.network.total_bytes(cross_dc_only=True) > 0
        assert cluster.scrub_bytes_shipped() > 0

    def test_no_query_no_bytes(self, registry):
        cluster = SimCluster(registry, flush_interval=0.5)
        hosts = cluster.add_service("BidServers", "dc1", 2)
        steady_traffic(cluster, hosts)
        cluster.run_until(10.0)
        assert cluster.scrub_bytes_shipped() == 0

    def test_target_restricts_hosts(self, registry):
        cluster = SimCluster(registry, flush_interval=0.5)
        bid_hosts = cluster.add_service("BidServers", "dc1", 2)
        ad_hosts = cluster.add_service("AdServers", "dc1", 2)
        steady_traffic(cluster, bid_hosts + ad_hosts, per_tick=2)
        handle = cluster.submit(
            "select COUNT(*) from bid @[Service in BidServers] duration 5s;"
        )
        assert set(handle.targeted_hosts) == {h.name for h in bid_hosts}
        run_to_completion(cluster, handle)
        for host in ad_hosts:
            assert host.agent.stats.events_examined == 0

    def test_overhead_summary_small(self, registry):
        cluster = SimCluster(registry, flush_interval=0.5)
        hosts = cluster.add_service("BidServers", "dc1", 2)
        steady_traffic(cluster, hosts)
        handle = cluster.submit("select COUNT(*) from bid duration 10s;")
        run_to_completion(cluster, handle)
        summary = cluster.overhead_summary("BidServers")
        assert 0 < summary.max_overhead < 0.05  # well under 5%

    def test_overhead_sampler_series(self, registry):
        cluster = SimCluster(registry, flush_interval=0.5)
        hosts = cluster.add_service("BidServers", "dc1", 2)
        steady_traffic(cluster, hosts)
        sampler = OverheadSampler(cluster.loop, hosts, interval=2.0)
        handle = cluster.submit("select COUNT(*) from bid duration 10s;")
        run_to_completion(cluster, handle)
        assert len(sampler.series) >= 4
        times = [t for t, _mean, _mx in sampler.series]
        assert times == sorted(times)

    def test_two_clusters_are_isolated(self, registry):
        c1 = SimCluster(registry, flush_interval=0.5)
        c2 = SimCluster(registry.copy(), flush_interval=0.5)
        h1 = c1.add_service("BidServers", "dc1", 1)
        c2.add_service("BidServers", "dc1", 1)
        steady_traffic(c1, h1)
        handle = c1.submit("select COUNT(*) from bid duration 3s;")
        results = run_to_completion(c1, handle)
        assert sum(w.rows[0][0] for w in results.windows) > 0
        assert c2.central.stats.events_received == 0
