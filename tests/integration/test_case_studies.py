"""End-to-end case studies (paper Section 8), reduced for test runtime.

Each test drives the full path: workload scenario → platform traffic →
Scrub query over the live simulated cluster → qualitative assertion the
paper's figure shows.  The benchmarks run the same experiments at the
paper's parameters; these tests pin the *shape* at small scale.
"""

import pytest

from repro.adplatform import (
    ab_test_scenario,
    cannibalization_scenario,
    exclusion_scenario,
    frequency_cap_scenario,
    new_exchange_scenario,
    spam_scenario,
)
from repro.cluster import run_to_completion


@pytest.mark.integration
class TestSpamDetection:
    """8.1 / Fig. 9-10: bots stand out in per-user bid counts per window."""

    def test_bots_dominate_every_window(self):
        sc = spam_scenario(users=150, pageview_rate=6.0, bot_batch=40,
                           bot_period=2.0)
        sc.start(until=60.0)
        handle = sc.cluster.submit(
            "Select bid.user_id, COUNT(*) from bid "
            "@[Service in BidServers] window 10s duration 60s "
            "group by bid.user_id;"
        )
        results = run_to_completion(sc.cluster, handle)
        bots = {b.user_id for b in sc.extras["bots"]}
        assert len(results.windows) >= 4
        for window in results.windows[1:-1]:
            by_user = {r[0]: r[1] for r in window.rows}
            bot_counts = [c for u, c in by_user.items() if u in bots]
            human_counts = [c for u, c in by_user.items() if u not in bots]
            assert bot_counts, "bots must appear in every steady window"
            # Every bot's batch is far above any human's page-view burst.
            assert min(bot_counts) > 3 * max(human_counts)

    def test_human_counts_decay_roughly_exponentially(self):
        sc = spam_scenario(users=300, pageview_rate=10.0, bot_count=0)
        sc.start(until=40.0)
        handle = sc.cluster.submit(
            "Select bid.user_id, COUNT(*) from bid window 10s duration 40s "
            "group by bid.user_id;"
        )
        results = run_to_completion(sc.cluster, handle)
        from collections import Counter

        histogram = Counter()
        for window in results.windows:
            for row in window.rows:
                histogram[row[1]] += 1
        # Mass concentrates at small counts: 1-3 requests per window
        # (one page view) dwarfs larger batches.
        small = sum(v for k, v in histogram.items() if k <= 3)
        large = sum(v for k, v in histogram.items() if k > 6)
        assert small > 5 * max(large, 1)


@pytest.mark.integration
class TestNewExchangeValidation:
    """8.2 / Fig. 11-12: impressions from exchange D appear only after
    its activation, under two-level sampling."""

    def test_new_exchange_rampup_visible(self):
        sc = new_exchange_scenario(
            users=200, pageview_rate=12.0, activation_time=30.0,
            presentationservers=10,
        )
        sc.start(until=60.0)
        new_ex = sc.extras["new_exchange"]
        handle = sc.cluster.submit(
            "Select impression.exchange_id, COUNT(*) from impression "
            "@[Service in PresentationServers] "
            "sample hosts 50% sample events 50% "
            "window 10s duration 60s group by impression.exchange_id;"
        )
        results = run_to_completion(sc.cluster, handle)
        assert len(handle.targeted_hosts) == 5  # 50% of 10

        def impressions_for(window, exchange_id):
            for row in window.rows:
                if row[0] == exchange_id:
                    return row[1]
            return 0

        before = sum(
            impressions_for(w, new_ex.exchange_id)
            for w in results.windows if w.window_end <= 30.0
        )
        after = sum(
            impressions_for(w, new_ex.exchange_id)
            for w in results.windows if w.window_start >= 40.0
        )
        other = sum(
            impressions_for(w, sc.extras["exchanges"][0].exchange_id)
            for w in results.windows if w.window_end <= 30.0
        )
        assert before == 0          # inactive exchange: zero impressions
        assert after > 0            # healthy integration after activation
        assert other > 0            # established exchanges always present


@pytest.mark.integration
class TestABTesting:
    """8.3 / Fig. 13-15: model B gets higher CTR at roughly equal CPM."""

    def test_ctr_higher_cpm_flat(self):
        sc = ab_test_scenario(users=500, pageview_rate=25.0)
        sc.start(until=80.0)
        focal = sc.extras["focal_line_item"].line_item_id
        hosts_a = ", ".join(sc.extras["model_a_hosts"])
        hosts_b = ", ".join(sc.extras["model_b_hosts"])

        def submit_all():
            handles = {}
            for tag, hosts in (("A", hosts_a), ("B", hosts_b)):
                handles[f"cpm_{tag}"] = sc.cluster.submit(
                    f"Select 1000*AVG(impression.cost) from impression "
                    f"where impression.line_item_id = {focal} "
                    f"@[Servers in ({hosts})] window 80s duration 80s;"
                )
                for event in ("impression", "click"):
                    handles[f"{event}_{tag}"] = sc.cluster.submit(
                        f"Select COUNT(*) from {event} "
                        f"where {event}.line_item_id = {focal} "
                        f"@[Servers in ({hosts})] window 80s duration 80s;"
                    )
            return handles

        handles = submit_all()
        sc.cluster.run_until(84.0)
        values = {}
        for key, handle in handles.items():
            results = sc.cluster.server.finish(handle.query_id)
            total = [v for v in results.column(results.columns[0]) if v is not None]
            values[key] = sum(total) if total else 0.0

        ctr_a = values["click_A"] / max(values["impression_A"], 1)
        ctr_b = values["click_B"] / max(values["impression_B"], 1)
        assert values["impression_A"] > 20 and values["impression_B"] > 20
        assert ctr_b > ctr_a * 1.3  # B clearly better
        # CPM roughly equal (same advisory price band on both sides).
        assert values["cpm_A"] == pytest.approx(values["cpm_B"], rel=0.25)


@pytest.mark.integration
class TestExclusionDistribution:
    """8.4 / Fig. 16: bid ⋈ exclusion across services, counts by reason."""

    def test_join_across_services_counts_reasons(self):
        sc = exclusion_scenario(users=150, pageview_rate=6.0, line_items=60)
        sc.start(until=30.0)
        exchange = sc.extras["exchanges"][0]
        handle = sc.cluster.submit(
            f"Select exclusion.reason, COUNT(*) from bid, exclusion "
            f"where bid.exchange_id = {exchange.exchange_id} "
            f"@[Service in (BidServers, AdServers)] "
            f"window 30s duration 30s group by exclusion.reason;"
        )
        results = run_to_completion(sc.cluster, handle)
        reasons = {}
        for window in results.windows:
            for row in window.rows:
                reasons[row[0]] = reasons.get(row[0], 0) + row[1]
        # The workload's targeting mix produces at least geo and segment
        # exclusions in volume.
        assert reasons.get("GEO_MISMATCH", 0) > 0
        assert reasons.get("SEGMENT_MISMATCH", 0) > 0
        assert sum(reasons.values()) > 100

    def test_exclusions_only_from_selected_exchange(self):
        sc = exclusion_scenario(users=100, pageview_rate=5.0, line_items=40)
        sc.start(until=20.0)
        exchange = sc.extras["exchanges"][1]
        handle = sc.cluster.submit(
            f"Select exclusion.exchange_id, COUNT(*) from bid, exclusion "
            f"where bid.exchange_id = {exchange.exchange_id} "
            f"window 20s duration 20s group by exclusion.exchange_id;"
        )
        results = run_to_completion(sc.cluster, handle)
        for window in results.windows:
            for row in window.rows:
                assert row[0] == exchange.exchange_id


@pytest.mark.integration
class TestCannibalization:
    """8.5 / Fig. 18-19: λ never wins; winners' prices sit above λ's band."""

    def test_lambda_never_wins_and_prices_explain_it(self):
        sc = cannibalization_scenario(users=150, pageview_rate=8.0)
        sc.start(until=30.0)
        lam = sc.extras["lam"]
        handle = sc.cluster.submit(
            "Select auction.winner_line_item_id, COUNT(*), "
            "AVG(auction.winner_price) from auction "
            "@[Service in AdServers] window 30s duration 30s "
            "group by auction.winner_line_item_id;"
        )
        results = run_to_completion(sc.cluster, handle)
        rows = [row for w in results.windows for row in w.rows]
        assert rows
        winner_ids = {row[0] for row in rows}
        assert lam.line_item_id not in winner_ids  # cannibalized
        # Every winning price clears λ's highest possible bid.
        from repro.adplatform.auction import PRICE_BAND

        lam_ceiling = lam.advisory_price * (1 + PRICE_BAND)
        for row in rows:
            assert row[2] > lam_ceiling

    def test_lambda_wins_after_price_bump(self):
        """The paper's remediation: bump λ's advisory price."""
        sc = cannibalization_scenario(users=150, pageview_rate=8.0)
        lam = sc.extras["lam"]
        lam.advisory_price = 8.0  # the fix
        sc.start(until=30.0)
        handle = sc.cluster.submit(
            "Select auction.winner_line_item_id, COUNT(*) from auction "
            "window 30s duration 30s group by auction.winner_line_item_id;"
        )
        results = run_to_completion(sc.cluster, handle)
        winner_ids = {row[0] for w in results.windows for row in w.rows}
        assert lam.line_item_id in winner_ids


@pytest.mark.integration
class TestFrequencyCap:
    """8.6: corrupt profile-feed writes let ads exceed the frequency cap,
    visible in profile_update events."""

    def test_corrupt_feed_causes_cap_violations(self):
        sc = frequency_cap_scenario(
            users=100, pageview_rate=12.0, cap=1, corruption_rate=0.8,
            seconds_per_day=60.0, feed_period=10.0,
        )
        sc.start(until=120.0)
        capped = sc.extras["capped_line_item"]
        handle = sc.cluster.submit(
            f"Select impression.user_id, COUNT(*) from impression "
            f"where impression.line_item_id = {capped.line_item_id} "
            f"window 60s duration 120s group by impression.user_id;"
        )
        feed_zero = sc.cluster.submit(
            f"Select COUNT(*) from profile_update "
            f"where profile_update.line_item_id = {capped.line_item_id} "
            f"and profile_update.source = 'feed' "
            f"and profile_update.frequency_count = 0 "
            f"window 120s duration 120s;"
        )
        sc.cluster.run_until(125.0)
        impressions = sc.cluster.server.finish(handle.query_id)
        zero_writes = sc.cluster.server.finish(feed_zero.query_id)

        # Some users received more than cap ads within one accelerated day.
        violations = [
            row for w in impressions.windows for row in w.rows if row[1] > 1
        ]
        assert violations, "corruption must produce cap violations"
        # The root cause is visible: feed writes storing frequency 0.
        assert sum(r[0] for r in zero_writes.rows) > 0

    def test_healthy_feed_respects_cap(self):
        sc = frequency_cap_scenario(
            users=100, pageview_rate=12.0, cap=1, corruption_rate=0.0,
            seconds_per_day=60.0, feed_period=10.0,
        )
        sc.start(until=120.0)
        capped = sc.extras["capped_line_item"]
        handle = sc.cluster.submit(
            f"Select impression.user_id, COUNT(*) from impression "
            f"where impression.line_item_id = {capped.line_item_id} "
            f"window 60s duration 120s group by impression.user_id;"
        )
        results = run_to_completion(sc.cluster, handle)
        for window in results.windows:
            for row in window.rows:
                assert row[1] <= 1, "cap must hold without corruption"
