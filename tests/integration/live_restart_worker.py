"""Subprocess worker for the live fault-tolerance integration tests.

Runs a :class:`repro.live.LiveAgent` in its own process, logs a fixed
number of real-time events, drains, and reports ``LOGGED <n>``.  With
``--linger`` it then sleeps forever so the test can SIGKILL it mid-span
— modelling an application process crash, not a clean shutdown.

Run: ``python -m tests.integration.live_restart_worker --port P
--host NAME --count N --rid-base B [--linger]``
"""

from __future__ import annotations

import argparse
import time

from repro.live.client import LiveAgent

PV_FIELDS = [("url", "string"), ("latency_ms", "double")]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--host", default="agent-1")
    parser.add_argument("--count", type=int, default=200)
    parser.add_argument("--rid-base", type=int, default=0)
    parser.add_argument(
        "--linger", action="store_true",
        help="after draining, sleep until killed (crash-test target)",
    )
    args = parser.parse_args(argv)

    agent = LiveAgent(
        ("127.0.0.1", args.port),
        args.host,
        services=["Frontends"],
        flush_batch_size=25,
        heartbeat_interval=0.2,
        reconnect_backoff_base=0.05,
    )
    agent.define_event("pv", PV_FIELDS)
    agent.start()
    try:
        deadline = time.time() + 15.0
        while not agent.installed_query_ids:
            if time.time() > deadline:
                print("INSTALL-TIMEOUT", flush=True)
                return 1
            time.sleep(0.05)

        for i in range(args.count):
            agent.log(
                "pv", url="/w", latency_ms=1.0, request_id=args.rid_base + i
            )
            time.sleep(0.002)
        if not agent.drain(15.0):
            print("DRAIN-FAIL", flush=True)
            return 1
        print(f"LOGGED {args.count}", flush=True)
        if args.linger:
            while True:  # hold the span open until the test kills us
                time.sleep(0.5)
        return 0
    finally:
        if not args.linger:
            agent.close()


if __name__ == "__main__":
    raise SystemExit(main())
