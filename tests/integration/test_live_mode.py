"""Multi-process live mode, end to end over localhost TCP.

Two acceptance properties of ``repro.live``:

1. **Equivalence** — a real ``scrubd`` subprocess fed by two agent
   subprocesses produces *exactly* the results an in-process
   ``DirectTransport`` run produces for the identical deterministic
   scenario (same query text, hosts, events, timestamps).  Everything
   that could diverge — planning, event sampling, window assignment,
   float arithmetic — is deterministic across processes by construction.

2. **Backpressure** — killing ``scrubd`` mid-span never blocks the
   application: ``log()`` keeps completing within a bounded latency while
   the transport's drop counter rises monotonically and its outbox stays
   bounded.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.api import ManualClock, Scrub
from repro.live.client import ControlClient, LiveAgent

from .live_agent_worker import PV_FIELDS, QUERY, events_for

REPO_ROOT = Path(__file__).resolve().parents[2]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONUNBUFFERED"] = "1"
    return env


def _spawn_scrubd(extra_args: tuple[str, ...] = ()) -> tuple[subprocess.Popen, int]:
    """Start scrubd on an ephemeral port; parse the port from its banner."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.live.server", "--port", "0", *extra_args],
        cwd=REPO_ROOT,
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    assert proc.stdout is not None
    seen = []
    while True:  # skip interpreter noise (e.g. runpy warnings) before the banner
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(f"scrubd exited before its banner:\n{''.join(seen)}")
        seen.append(line)
        match = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
        if match:
            return proc, int(match.group(1))


def _stop(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=10.0)
    if proc.stdout is not None:
        proc.stdout.close()


def _wait_for_hosts(ctl: ControlClient, count: int, timeout: float = 15.0) -> None:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if len(ctl.stats()["hosts"]) >= count:
            return
        time.sleep(0.05)
    raise AssertionError(f"{count} hosts never registered with scrubd")


def _normalize(results) -> list[tuple[float, tuple]]:
    """Window-order-and-row-order independent view of a ResultSet."""
    return sorted(
        (w.window_start, tuple(sorted(row.values for row in w.rows)))
        for w in results.windows
    )


def _reference_run(base: float):
    """The identical scenario through DirectTransport on a manual clock."""
    scrub = Scrub(clock=ManualClock(base - 1.0))
    scrub.define_event("pv", PV_FIELDS)
    agents = [
        scrub.add_host(f"agent-{i}", services=["Frontends"]) for i in range(2)
    ]
    handle = scrub.submit(QUERY)  # first query in both runs: q00001
    for index, agent in enumerate(agents):
        for event in events_for(index, base):
            agent.log(
                "pv",
                url=event["url"],
                latency_ms=event["latency_ms"],
                request_id=event["request_id"],
                timestamp=event["timestamp"],
            )
        agent.flush()
    return scrub.finish(handle.query_id)


@pytest.mark.integration
def test_live_matches_in_process_reference():
    daemon, port = _spawn_scrubd()
    workers: list[subprocess.Popen] = []
    ctl = ControlClient(("127.0.0.1", port))
    try:
        # Events are stamped in the near future so they land inside the
        # query span no matter how long registration takes.
        base = time.time() + 20.0
        for index in range(2):
            workers.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "tests.integration.live_agent_worker",
                        "--port", str(port),
                        "--index", str(index),
                        "--base", repr(base),
                    ],
                    cwd=REPO_ROOT,
                    env=_env(),
                    stdout=subprocess.PIPE,
                    stderr=subprocess.STDOUT,
                    text=True,
                )
            )
        _wait_for_hosts(ctl, 2)

        handle = ctl.submit(QUERY)
        assert handle["query_id"] == "q00001"
        assert sorted(handle["targeted_hosts"]) == ["agent-0", "agent-1"]

        for worker in workers:
            out, _ = worker.communicate(timeout=60.0)
            assert worker.returncode == 0, f"worker failed:\n{out}"
            assert "DONE" in out

        live = ctl.finish("q00001")
        reference = _reference_run(base)

        assert live.columns == reference.columns
        assert _normalize(live) == _normalize(reference)
        assert len(live.windows) >= 3  # timestamps span several windows
        for window in live.windows:
            assert window.contributing_hosts == 2
        assert live.total_host_dropped == reference.total_host_dropped == 0
    finally:
        ctl.close()
        for worker in workers:
            _stop(worker)
        _stop(daemon)


@pytest.mark.integration
def test_killing_scrubd_mid_span_never_blocks_logging():
    daemon, port = _spawn_scrubd()
    agent = LiveAgent(
        ("127.0.0.1", port),
        "bp-agent",
        services=["Frontends"],
        flush_batch_size=1,
        outbox_capacity=8,
    )
    agent.define_event("pv", PV_FIELDS)
    ctl = ControlClient(("127.0.0.1", port))
    try:
        agent.start()
        qid = ctl.submit(QUERY)["query_id"]
        deadline = time.time() + 15.0
        while qid not in agent.installed_query_ids:
            assert time.time() < deadline, "install push never arrived"
            time.sleep(0.05)

        # Healthy path first: the link demonstrably works...
        agent.log("pv", url="/warm", latency_ms=5.0, request_id=1)
        assert agent.drain(15.0)
        assert agent.transport.dropped_events == 0

        # ...then central dies mid-span.
        _stop(daemon)

        bound = 1.0  # seconds; log+flush must stay far from any network wait
        previous_dropped = 0
        for i in range(300):
            started = time.perf_counter()
            agent.log("pv", url="/x", latency_ms=5.0, request_id=100 + i)
            if i % 3 == 0:
                agent.flush()
            elapsed = time.perf_counter() - started
            assert elapsed < bound, f"log blocked for {elapsed:.2f}s after kill"
            dropped = agent.transport.dropped_events
            assert dropped >= previous_dropped  # monotone, never reset
            previous_dropped = dropped
            assert agent.transport.outbox_depth <= 8  # memory stays bounded
        agent.flush()
        assert agent.transport.dropped_events > 0
    finally:
        ctl.close()
        agent.close()
        _stop(daemon)
