"""Subprocess worker for the live-mode integration test.

Runs a real :class:`repro.live.LiveAgent` in its own process: registers
with ``scrubd`` over TCP, waits for the query install push, logs a
deterministic event stream, drains, and prints ``DONE``.

The test process imports :data:`QUERY` and :func:`events_for` from this
module so the in-process reference run replays the *identical* scenario.

Run: ``python -m tests.integration.live_agent_worker --port P --index I --base B``
"""

from __future__ import annotations

import argparse
import time

from repro.live.client import LiveAgent

#: The exact query both the live daemon and the in-process reference run.
#: Windowed GROUP BY with event sampling — the sampler is deterministic
#: in (query_id, request_id), so both runs keep the same events.
QUERY = (
    "select pv.url, COUNT(*), AVG(pv.latency_ms) from pv "
    "@[Service in Frontends] window 10s sample events 50% "
    "group by pv.url duration 600s;"
)

PV_FIELDS = [("url", "string"), ("latency_ms", "double")]

URLS = ("/home", "/search", "/checkout")


def events_for(index: int, base: float, count: int = 120) -> list[dict]:
    """Worker *index*'s event stream: request ids disjoint across workers,
    timestamps spread over ~3 windows, latencies exactly representable so
    float sums are order-independent."""
    return [
        {
            "request_id": index * 10_000 + i,
            "timestamp": base + (i % 30),
            "url": URLS[(index + i) % len(URLS)],
            "latency_ms": 5.0 + (i % 7) * 3.0,
        }
        for i in range(count)
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--index", type=int, required=True)
    parser.add_argument("--base", type=float, required=True)
    args = parser.parse_args(argv)

    agent = LiveAgent(
        ("127.0.0.1", args.port),
        f"agent-{args.index}",
        services=["Frontends"],
        flush_batch_size=25,
    )
    agent.define_event("pv", PV_FIELDS)
    agent.start()
    try:
        deadline = time.time() + 15.0
        while not agent.installed_query_ids:
            if time.time() > deadline:
                print("INSTALL-TIMEOUT", flush=True)
                return 1
            time.sleep(0.05)

        for event in events_for(args.index, args.base):
            agent.log(
                "pv",
                url=event["url"],
                latency_ms=event["latency_ms"],
                request_id=event["request_id"],
                timestamp=event["timestamp"],
            )
        if not agent.drain(15.0):
            print("DRAIN-FAIL", flush=True)
            return 1
        print("DONE", flush=True)
        return 0
    finally:
        agent.close()


if __name__ == "__main__":
    raise SystemExit(main())
