"""Live mode under faults, end to end: the ISSUE's three chaos scenarios.

1. **Agent crash + restart mid-span** (through a delay-injecting chaos
   proxy): the healthy host keeps the span alive, the gap windows are
   flagged degraded *naming the dead host*, the restarted process takes
   its registration over and resumes contributing, and the final counts
   conserve exactly — every logged event is either in a window count or
   in the host-side loss counters.
2. **scrubd crash + journalled restart**: a ``--journal`` daemon killed
   mid-span and restarted on the same port resumes the open span, the
   agent re-attaches automatically (no new process, no re-submit), and
   POLL returns post-restart windows.
3. **Rolling partition**: links to two agents are severed and healed in
   turn; ``log()`` latency stays bounded, loss counters stay monotone,
   and the delivered counts + host loss conserve once the links heal.
"""

from __future__ import annotations

import os
import re
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.live.chaos import ChaosProxy, FaultPlan
from repro.live.client import ControlClient, LiveAgent

REPO_ROOT = Path(__file__).resolve().parents[2]

PV_FIELDS = [("url", "string"), ("latency_ms", "double")]

#: No event sampling: COUNT is exact, so conservation can be asserted
#: to the event.
QUERY = (
    "select pv.url, COUNT(*) from pv @[Service in Frontends] "
    "window 2s group by pv.url duration 600s;"
)

#: scrubd tuned for fault tests: fast ticks, a sub-second-ish lease, and
#: enough grace that proxy-delayed batches still make their window.
SCRUBD_ARGS = (
    "--tick", "0.05", "--grace", "1.0", "--lease", "0.8", "--shards", "2"
)


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONUNBUFFERED"] = "1"
    return env


def _spawn_scrubd(*extra_args: str) -> tuple[subprocess.Popen, int]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.live.server", *extra_args],
        cwd=REPO_ROOT,
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    assert proc.stdout is not None
    seen = []
    while True:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(f"scrubd exited before its banner:\n{''.join(seen)}")
        seen.append(line)
        match = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
        if match:
            return proc, int(match.group(1))


def _spawn_worker(port: int, host: str, count: int, rid_base: int, linger: bool):
    args = [
        sys.executable, "-m", "tests.integration.live_restart_worker",
        "--port", str(port), "--host", host,
        "--count", str(count), "--rid-base", str(rid_base),
    ]
    if linger:
        args.append("--linger")
    return subprocess.Popen(
        args, cwd=REPO_ROOT, env=_env(),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def _await_logged(proc: subprocess.Popen, timeout: float = 30.0) -> int:
    """Read worker stdout until its LOGGED line; return the count."""
    assert proc.stdout is not None
    deadline = time.time() + timeout
    seen = []
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(f"worker exited early:\n{''.join(seen)}")
        seen.append(line)
        match = re.match(r"LOGGED (\d+)", line)
        if match:
            return int(match.group(1))
    raise AssertionError(f"worker never drained:\n{''.join(seen)}")


def _stop(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=10.0)
    if proc.stdout is not None:
        proc.stdout.close()


def _wait(predicate, timeout: float = 15.0, interval: float = 0.05) -> bool:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return bool(predicate())


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _total_count(results) -> int:
    """Sum of every COUNT(*) cell across every window."""
    return sum(int(row[1]) for w in results.windows for row in w.rows)


class _SteadyLogger(threading.Thread):
    """A background application thread: logs continuously, records the
    worst log() latency it ever saw, never stops until told."""

    def __init__(self, agent: LiveAgent, rid_base: int, period: float = 0.01):
        super().__init__(name=f"steady-{agent.host}", daemon=True)
        self.agent = agent
        self.rid = rid_base
        self.period = period
        self.count = 0
        self.max_latency = 0.0
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.is_set():
            started = time.perf_counter()
            self.agent.log("pv", url="/s", latency_ms=1.0, request_id=self.rid)
            self.max_latency = max(
                self.max_latency, time.perf_counter() - started
            )
            self.rid += 1
            self.count += 1
            self._halt.wait(self.period)

    def halt(self) -> int:
        self._halt.set()
        self.join(timeout=10.0)
        assert not self.is_alive()
        return self.count


@pytest.mark.integration
@pytest.mark.chaos
def test_agent_kill_and_restart_mid_span_under_chaos():
    daemon, port = _spawn_scrubd("--port", "0", *SCRUBD_ARGS)
    # agent-1's traffic crosses a chaos proxy injecting per-frame delay.
    # Delay-only on purpose: it perturbs timing without destroying
    # frames, so the host-side loss counters remain the exact ground
    # truth and conservation can be asserted to the event.
    proxy = ChaosProxy(
        ("127.0.0.1", port),
        plan=FaultPlan(delay_range=(0.0, 0.02)),
        seed=7,
    )
    steady = LiveAgent(
        ("127.0.0.1", port), "agent-0", services=["Frontends"],
        flush_batch_size=10, heartbeat_interval=0.2,
        reconnect_backoff_base=0.05,
    )
    steady.define_event("pv", PV_FIELDS)
    ctl = ControlClient(("127.0.0.1", port))
    logger = _SteadyLogger(steady, rid_base=1_000_000)
    victim = None
    try:
        steady.start()
        victim = _spawn_worker(
            proxy.address[1], "agent-1", count=300, rid_base=0, linger=True
        )
        assert _wait(lambda: len(ctl.stats()["hosts"]) == 2)

        qid = ctl.submit(QUERY)["query_id"]
        # Don't log before the INSTALL frame arms agent-0 — SUBMIT_OK
        # can win that race, and a pre-arming event is unmatched (never
        # shipped, not a "drop"), which would break exact conservation.
        assert _wait(lambda: qid in steady.installed_query_ids)
        logger.start()
        count1 = _await_logged(victim)  # phase 1 fully drained

        # Crash the worker process mid-span; its phase-1 events are all
        # accounted (it drained), but the host goes dark.
        kill_time = time.time()
        _stop(victim)
        victim = None
        assert _wait(
            lambda: [h["host"] for h in ctl.stats()["hosts"]] == ["agent-0"]
        )
        time.sleep(6.0)  # several whole windows with agent-1 dark

        # Restart: same host name, fresh process and epoch.
        restart_time = time.time()
        restarted = _spawn_worker(
            proxy.address[1], "agent-1", count=200, rid_base=10_000, linger=False
        )
        count2 = _await_logged(restarted)
        out, _ = restarted.communicate(timeout=30.0)
        assert restarted.returncode == 0, f"restarted worker failed:\n{out}"

        steady_count = logger.halt()
        assert steady.drain(15.0)
        results = ctl.finish(qid)

        # The application never stalled, dead daemon-side host or not.
        assert logger.max_latency < 1.0

        # Gap windows are degraded and name the dead host.
        gap_windows = [
            w for w in results.windows
            if w.coverage is not None
            and "agent-1" in w.coverage.missing
            and kill_time < w.window_start < restart_time
        ]
        assert gap_windows, "no degraded window named the crashed host"
        for w in gap_windows:
            # Coverage states are read when the window *closes*: a gap
            # window usually closes while the host is still down
            # ("disconnected"/"lease-expired", then "stale" once the
            # fleet ages it out at 2x the lease), but the last one can
            # close just after the reconnect — the host is back yet
            # contributed nothing to that window, which reads "silent".
            assert w.coverage.missing["agent-1"] in (
                "disconnected", "lease-expired", "stale", "silent"
            )
            assert w.coverage.reporting == ("agent-0",)

        # The reconnected agent resumed contributing after restart.
        resumed = [
            w for w in results.windows
            if w.coverage is not None
            and "agent-1" in w.coverage.reporting
            and w.window_start > kill_time
        ]
        assert resumed, "restarted agent never contributed to a window"

        # Exact conservation: every logged event is either counted in a
        # window or sits in the loss counters the results carry —
        # host-side drops, or arrivals past window close + grace
        # (`late_events`, possible when proxy delay + scheduler stalls
        # push a batch past the grace period).
        total_logged = steady_count + count1 + count2
        late = sum(w.late_events for w in results.windows)
        assert (
            _total_count(results) + results.total_host_dropped + late
            == total_logged
        )
    finally:
        logger._halt.set()
        ctl.close()
        steady.close()
        if victim is not None:
            _stop(victim)
        proxy.close()
        _stop(daemon)


@pytest.mark.integration
@pytest.mark.chaos
def test_scrubd_restart_with_journal_resumes_span():
    port = _free_port()
    journal = str(REPO_ROOT / "tests" / "integration" / f".journal-{port}.tmp")
    if os.path.exists(journal):
        os.unlink(journal)
    daemon, _ = _spawn_scrubd(
        "--port", str(port), "--journal", journal, *SCRUBD_ARGS
    )
    agent = LiveAgent(
        ("127.0.0.1", port), "agent-0", services=["Frontends"],
        flush_batch_size=10, heartbeat_interval=0.2,
        reconnect_backoff_base=0.05,
    )
    agent.define_event("pv", PV_FIELDS)
    ctl = ControlClient(("127.0.0.1", port))
    daemon2 = None
    try:
        agent.start()
        qid = ctl.submit(QUERY)["query_id"]
        assert _wait(lambda: qid in agent.installed_query_ids)
        for i in range(50):
            agent.log("pv", url="/a", latency_ms=1.0, request_id=i)
        assert agent.drain(15.0)

        # scrubd dies hard mid-span.  The application keeps logging: the
        # transport drops at the host and counts, never blocks.
        ctl.close()
        _stop(daemon)
        for i in range(50, 70):
            agent.log("pv", url="/a", latency_ms=1.0, request_id=i)
        agent.flush()

        # Restart on the same port with the same journal.
        restart_time = time.time()
        daemon2, _ = _spawn_scrubd(
            "--port", str(port), "--journal", journal, *SCRUBD_ARGS
        )
        ctl2 = ControlClient(("127.0.0.1", port))

        # The span resumed from the journal and the agent re-attached on
        # its own — same process, no re-submit, no manual intervention.
        assert qid in ctl2.stats()["running"]
        assert _wait(
            lambda: [h["host"] for h in ctl2.stats()["hosts"]] == ["agent-0"]
        )
        assert _wait(lambda: agent.control_reconnects >= 1)
        assert qid in agent.installed_query_ids  # replayed INSTALL, still live

        # Recovery marked the not-yet-reattached host, then the reconnect
        # flipped it back to connected.
        assert ctl2.stats()["queries"][qid]["delivery"]["agent-0"] == "connected"

        for i in range(70, 120):
            agent.log("pv", url="/a", latency_ms=1.0, request_id=i)
        assert _wait(lambda: agent.drain(5.0), timeout=30.0)

        # POLL (not finish) already shows post-restart windows once the
        # real clock closes them.
        assert _wait(
            lambda: any(
                w.window_start >= restart_time - 2.0 and w.rows
                for w in ctl2.poll(qid).windows
            ),
            timeout=15.0,
        )

        results = ctl2.finish(qid)
        post = [w for w in results.windows if w.rows]
        assert post, "no windows survived the restart"
        # Everything delivered after the restart is counted.  Events from
        # the outage window split between host-side loss counters (failed
        # ships, carried forward) and the TCP black hole — batches written
        # into the dead socket's buffer before the RST arrived, which is
        # the documented crash loss (like windows open at crash time).
        # So: at least the post-restart events, never more than logged.
        assert _total_count(results) >= 50
        assert _total_count(results) + results.total_host_dropped <= 120

        # The recovered sequence floor: new queries never reuse q00001.
        assert ctl2.submit(QUERY)["query_id"] != qid
        ctl2.close()
    finally:
        agent.close()
        if daemon2 is not None:
            _stop(daemon2)
        _stop(daemon)
        if os.path.exists(journal):
            os.unlink(journal)


@pytest.mark.integration
@pytest.mark.chaos
def test_rolling_partition_bounded_latency_and_conservation():
    daemon, port = _spawn_scrubd("--port", "0", *SCRUBD_ARGS)
    proxies = [
        ChaosProxy(("127.0.0.1", port), seed=i) for i in range(2)
    ]
    agents = []
    for i, proxy in enumerate(proxies):
        agent = LiveAgent(
            proxy.address, f"part-{i}", services=["Frontends"],
            flush_batch_size=5, outbox_capacity=32,
            heartbeat_interval=0.2, reconnect_backoff_base=0.05,
        )
        agent.define_event("pv", PV_FIELDS)
        agents.append(agent)
    ctl = ControlClient(("127.0.0.1", port))
    loggers = [
        _SteadyLogger(agent, rid_base=(i + 1) * 1_000_000)
        for i, agent in enumerate(agents)
    ]
    try:
        for agent in agents:
            agent.start()
        assert _wait(lambda: len(ctl.stats()["hosts"]) == 2)
        qid = ctl.submit(QUERY)["query_id"]
        for agent in agents:
            assert _wait(lambda: qid in agent.installed_query_ids)
        for logger in loggers:
            logger.start()

        # Roll the partition across the fleet, twice around.
        drops_before = [a.transport.dropped_events for a in agents]
        for _round in range(2):
            for index, proxy in enumerate(proxies):
                proxy.partition()
                time.sleep(1.2)  # > lease: the daemon notices
                proxy.heal()
                time.sleep(1.0)
                # Loss counters are monotone through the churn.
                now_dropped = agents[index].transport.dropped_events
                assert now_dropped >= drops_before[index]
                drops_before[index] = now_dropped

        # Both sides must come back: registration and data link.
        assert _wait(lambda: len(ctl.stats()["hosts"]) == 2, timeout=20.0)
        counts = [logger.halt() for logger in loggers]
        # One more flush after healing folds any carried loss into a
        # delivered batch; drain proves the link is live again.
        for agent in agents:
            assert _wait(lambda: agent.drain(5.0), timeout=30.0)

        results = ctl.finish(qid)
        for logger in loggers:
            assert logger.max_latency < 1.0, "log() stalled during partition"
        for agent in agents:
            assert agent.transport.outbox_depth <= 32

        # Degraded windows only ever name the partitioned hosts.
        for w in results.degraded_windows:
            assert set(w.coverage.missing) <= {"part-0", "part-1"}
        # Accounting never *invents* events: counted + counted-lost stays
        # within what was logged.  (Equality is not a property of
        # partitions: frames written into a socket buffer the instant
        # before the link is severed are acked by TCP yet never arrive —
        # the documented black-hole loss.  The delay-only chaos test
        # above is the exact-conservation check.)
        delivered = _total_count(results)
        assert 0 < delivered + results.total_host_dropped <= sum(counts)
    finally:
        for logger in loggers:
            logger._halt.set()
        ctl.close()
        for agent in agents:
            agent.close()
        for proxy in proxies:
            proxy.close()
        _stop(daemon)
