"""The live wire protocol: framing over real sockets, the control-message
codec, and the schema / result-set payload forms."""

import asyncio
import socket
import struct

import pytest

from repro.core.agent.transport import EventBatch, decode_full_batch
from repro.core.approx.sampling_theory import ApproxEstimate
from repro.core.central.results import ResultRow, ResultSet, WindowResult
from repro.core.events import Event, EventSchema
from repro.core.events.encoding import encode_value
from repro.live.protocol import (
    MAX_FRAME_BYTES,
    MsgType,
    ProtocolError,
    decode_message,
    encode_batch_frame,
    encode_batch_frame_into,
    encode_frame,
    encode_message_frame,
    read_frame,
    recv_frame,
    resultset_from_payload,
    resultset_to_payload,
    schema_from_payload,
    schema_to_payload,
)


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_message_frame_round_trip(self, pair):
        a, b = pair
        a.sendall(encode_message_frame(MsgType.SUBMIT, {"query": "select ✓;"}))
        frame = recv_frame(b)
        assert frame is not None
        msg_type, payload = frame
        assert msg_type == MsgType.SUBMIT
        assert decode_message(payload) == {"query": "select ✓;"}

    def test_back_to_back_frames(self, pair):
        a, b = pair
        a.sendall(
            encode_message_frame(MsgType.PING, {"token": 1})
            + encode_message_frame(MsgType.PONG, {"token": 1})
            + encode_frame(MsgType.STATS)
        )
        types = [recv_frame(b)[0] for _ in range(3)]
        assert types == [MsgType.PING, MsgType.PONG, MsgType.STATS]

    def test_batch_frame_round_trip(self, pair):
        a, b = pair
        batch = EventBatch(
            host="h1",
            query_id="q00001",
            events=[Event("pv", {"url": "/x"}, 7, 1.5, "h1")],
            seen_counts={("pv", 0): 3},
            dropped=1,
            sent_at=2.0,
        )
        a.sendall(encode_batch_frame(batch))
        msg_type, payload = recv_frame(b)
        assert msg_type == MsgType.BATCH
        assert decode_full_batch(payload) == batch

    def test_batch_frame_into_matches_and_patches_length(self):
        """The in-place framer writes identical bytes into a reused
        buffer: the length placeholder is patched after the payload
        lands, shed/quarantine fields included."""
        batch = EventBatch(
            host="h1",
            query_id="q00001",
            events=[Event("pv", {"url": "/x"}, 7, 1.5, "h1")],
            seen_counts={("pv", 0): 3},
            dropped=1,
            sent_at=2.0,
            shed=4,
            quarantined="impact-budget-exceeded: test",
        )
        out = bytearray(b"junk")
        encode_batch_frame_into(out, batch)
        assert bytes(out[4:]) == encode_batch_frame(batch)
        # Two frames back to back in one buffer stay self-delimiting.
        encode_batch_frame_into(out, batch)
        (length,) = struct.unpack_from("<I", out, 4)
        second = out[4 + 4 + length :]
        assert bytes(second) == encode_batch_frame(batch)

    def test_eof_is_none(self, pair):
        a, b = pair
        a.close()
        assert recv_frame(b) is None

    def test_truncated_frame_is_none(self, pair):
        a, b = pair
        a.sendall(struct.pack("<I", 10) + b"\x11oops")
        a.close()
        assert recv_frame(b) is None

    def test_zero_length_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack("<I", 0))
        with pytest.raises(ProtocolError, match="length"):
            recv_frame(b)

    def test_oversized_length_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack("<I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="length"):
            recv_frame(b)

    def test_unknown_type_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack("<I", 1) + b"\x7e")
        with pytest.raises(ProtocolError, match="unknown message type"):
            recv_frame(b)

    def test_non_map_control_payload_rejected(self):
        with pytest.raises(ProtocolError, match="not a map"):
            decode_message(encode_value([1, 2]))

    def test_async_read_frame(self):
        async def read_one(data: bytes):
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return await read_frame(reader)

        frame = asyncio.run(read_one(encode_message_frame(MsgType.STATS, {"a": 1})))
        assert frame == (MsgType.STATS, encode_value({"a": 1}))
        assert asyncio.run(read_one(b"")) is None


class TestPayloads:
    def test_schema_round_trip(self):
        schema = EventSchema(
            "pv",
            [("url", "string"), ("latency_ms", "double"), ("hits", "long")],
            doc="page views",
        )
        restored = schema_from_payload(schema_to_payload(schema))
        assert restored.name == schema.name
        assert restored.doc == schema.doc
        assert [(f.name, f.ftype) for f in restored] == [
            (f.name, f.ftype) for f in schema
        ]

    def test_resultset_round_trip(self):
        results = ResultSet("q00007", ("pv.url", "COUNT(*)"))
        results.add(
            WindowResult(
                query_id="q00007",
                window_start=10.0,
                window_end=20.0,
                columns=results.columns,
                rows=[ResultRow(("/a", 3)), ResultRow(("/b", 1))],
                estimates={
                    "COUNT(*)": ApproxEstimate(
                        estimate=4.0,
                        error_bound=0.5,
                        confidence=0.95,
                        variance=0.1,
                        sampled_machines=2,
                        total_machines=3,
                    )
                },
                host_dropped=2,
                late_events=1,
                contributing_hosts=2,
            )
        )
        results.add(
            WindowResult(
                query_id="q00007",
                window_start=20.0,
                window_end=30.0,
                columns=results.columns,
                rows=[],
            )
        )
        assert resultset_from_payload(resultset_to_payload(results)) == results

    def test_resultset_rows_keep_tuples_and_lists_distinct(self):
        # TOP-K style pair tuples and genuine list values must survive as
        # their own types — the payload tags tuples explicitly.
        results = ResultSet("q1", ("k", "v"))
        results.add(
            WindowResult(
                query_id="q1",
                window_start=0.0,
                window_end=10.0,
                columns=results.columns,
                rows=[ResultRow(((("a", 3), ("b", 1)), ["x", ("y", 2)]))],
            )
        )
        restored = resultset_from_payload(resultset_to_payload(results))
        values = restored.windows[0].rows[0].values
        assert values == ((("a", 3), ("b", 1)), ["x", ("y", 2)])
        assert isinstance(values[0], tuple)
        assert isinstance(values[1], list)
        assert isinstance(values[1][1], tuple)
