"""ChaosProxy: transparent forwarding, seeded frame faults, partitions."""

import socket
import threading

from repro.live.chaos import ChaosProxy, FaultPlan
from repro.live.protocol import MsgType, decode_message, encode_message_frame, recv_frame

from .conftest import wait_for


class _Echo:
    """A frame echo server: answers every PING with a PONG of the same
    payload, so tests can count what survived the proxy."""

    def __init__(self) -> None:
        self.listener = socket.socket()
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.address = self.listener.getsockname()
        self.received = 0
        threading.Thread(target=self._accept, daemon=True).start()

    def _accept(self) -> None:
        while True:
            try:
                conn, _addr = self.listener.accept()
            except OSError:
                return
            threading.Thread(target=self._serve, args=(conn,), daemon=True).start()

    def _serve(self, conn: socket.socket) -> None:
        try:
            while True:
                frame = recv_frame(conn)
                if frame is None:
                    return
                msg_type, payload = frame
                self.received += 1
                if msg_type == MsgType.PING:
                    conn.sendall(
                        encode_message_frame(MsgType.PONG, decode_message(payload))
                    )
        except OSError:
            return
        finally:
            conn.close()

    def close(self) -> None:
        self.listener.close()


def _ping_through(proxy: ChaosProxy, count: int, timeout: float = 5.0) -> int:
    """Send `count` PINGs through the proxy; return how many PONGs came
    back before the link went quiet."""
    answered = 0
    with socket.create_connection(proxy.address, timeout=timeout) as sock:
        sock.settimeout(timeout)
        try:
            for token in range(count):
                sock.sendall(encode_message_frame(MsgType.PING, {"token": token}))
            for _ in range(count):
                frame = recv_frame(sock)
                if frame is None:
                    break
                answered += 1
        except (OSError, TimeoutError):
            pass
    return answered


class TestForwarding:
    def test_transparent_without_faults(self):
        echo = _Echo()
        with ChaosProxy(echo.address) as proxy:
            assert _ping_through(proxy, 20) == 20
            assert proxy.frames_dropped == 0
            assert proxy.frames_duplicated == 0
            # Both directions count; the pump increments just after the
            # write, so allow it a beat to catch up with the last PONG.
            assert wait_for(lambda: proxy.frames_forwarded >= 40)
        echo.close()

    def test_seeded_runs_are_deterministic(self):
        echo = _Echo()
        plan = FaultPlan(drop_rate=0.3)
        outcomes = []
        for _ in range(2):
            with ChaosProxy(echo.address, plan=plan, seed=42) as proxy:
                # One request-response at a time so a dropped PING stalls
                # only its own response (read timeout), not later ones.
                got = 0
                with socket.create_connection(proxy.address, timeout=2.0) as sock:
                    sock.settimeout(0.2)
                    for token in range(30):
                        sock.sendall(
                            encode_message_frame(MsgType.PING, {"token": token})
                        )
                        try:
                            if recv_frame(sock) is not None:
                                got += 1
                        except (OSError, TimeoutError):
                            continue
                outcomes.append((got, proxy.frames_dropped))
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][1] > 0  # the plan did bite
        echo.close()

    def test_fault_plan_filters_by_type(self):
        echo = _Echo()
        # Drop every HEARTBEAT; PINGs must sail through untouched.
        plan = FaultPlan.only([MsgType.HEARTBEAT], drop_rate=1.0)
        with ChaosProxy(echo.address, plan=plan) as proxy:
            with socket.create_connection(proxy.address, timeout=2.0) as sock:
                sock.settimeout(2.0)
                for token in range(5):
                    sock.sendall(
                        encode_message_frame(MsgType.HEARTBEAT, {"host": "h"})
                    )
                    sock.sendall(encode_message_frame(MsgType.PING, {"token": token}))
                for _ in range(5):
                    assert recv_frame(sock) is not None
            assert proxy.frames_dropped == 5
        assert echo.received == 5  # only the PINGs arrived
        echo.close()

    def test_concurrent_links_conserve_counter_totals(self):
        # Many pump threads increment the shared counters at once; they
        # do so under the proxy lock, so stats() totals are exact — not
        # "roughly 2*links*pings" with lost updates.
        echo = _Echo()
        links, pings = 8, 50
        with ChaosProxy(echo.address) as proxy:
            answered = [0] * links

            def run(i: int) -> None:
                answered[i] = _ping_through(proxy, pings)

            threads = [
                threading.Thread(target=run, args=(i,)) for i in range(links)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert answered == [pings] * links
            # Every PING and every PONG is forwarded exactly once.
            total = 2 * links * pings
            assert wait_for(lambda: proxy.stats()["frames_forwarded"] == total)
            stats = proxy.stats()
            assert stats["frames_dropped"] == 0
            assert stats["frames_duplicated"] == 0
            assert stats["connections_accepted"] == links
        echo.close()

    def test_duplicates_are_injected(self):
        echo = _Echo()
        plan = FaultPlan.only([MsgType.PING], dup_rate=1.0)
        with ChaosProxy(echo.address, plan=plan) as proxy:
            _ping_through(proxy, 10)
            assert proxy.frames_duplicated == 10
        assert echo.received == 20
        echo.close()


class TestPartition:
    def test_partition_severs_and_refuses_then_heals(self):
        echo = _Echo()
        with ChaosProxy(echo.address) as proxy:
            sock = socket.create_connection(proxy.address, timeout=2.0)
            sock.settimeout(2.0)
            sock.sendall(encode_message_frame(MsgType.PING, {"token": 1}))
            assert recv_frame(sock) is not None
            assert proxy.active_links == 1

            proxy.partition()
            # The live link dies...
            assert wait_for(lambda: proxy.active_links == 0)
            try:
                sock.sendall(encode_message_frame(MsgType.PING, {"token": 2}))
                assert recv_frame(sock) is None
            except OSError:
                pass  # reset instead of EOF: equally severed
            sock.close()
            # ...and new connections are cut off before reaching scrubd.
            with socket.create_connection(proxy.address, timeout=2.0) as probe:
                probe.settimeout(2.0)
                try:
                    probe.sendall(encode_message_frame(MsgType.PING, {"token": 3}))
                    assert recv_frame(probe) is None
                except OSError:
                    pass
            assert wait_for(lambda: proxy.connections_refused >= 1)

            proxy.heal()
            assert _ping_through(proxy, 3) == 3
        echo.close()
