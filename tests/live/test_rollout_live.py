"""Fleet lifecycle against a real daemon: canary rollout widening to
completion, the auto-abort acceptance story (a quarantined canary stops
the rollout with zero installs on the untouched fleet), journal-recovered
queries installing on late-joining hosts, and silent hosts aging out of
coverage as ``stale`` then rejoining with an epoch bump."""

import socket
import time

from repro.core.agent.transport import EventBatch
from repro.live.client import ControlClient, LiveAgent
from repro.live.protocol import (
    MsgType,
    decode_message,
    encode_batch_frame_into,
    encode_message_frame,
    recv_frame,
)

from .conftest import DaemonHarness, wait_for

QUERY = (
    "select pv.url, COUNT(*) from pv @[Service in Frontends] "
    "window 10s group by pv.url duration 600s;"
)

QUERY_1S = (
    "select pv.url, COUNT(*) from pv @[Service in Frontends] "
    "window 1s group by pv.url duration 600s;"
)

PV_FIELDS = [("url", "string"), ("latency_ms", "double")]

PV_SCHEMA_PAYLOAD = {
    "name": "pv",
    "fields": [["url", "string"], ["latency_ms", "double"]],
    "doc": "",
}


def _agent(harness, name, **kwargs) -> LiveAgent:
    kwargs.setdefault("services", ["Frontends"])
    kwargs.setdefault("heartbeat_interval", 0.1)
    kwargs.setdefault("reconnect_backoff_base", 0.05)
    agent = LiveAgent(harness.address, name, **kwargs)
    agent.define_event("pv", PV_FIELDS)
    agent.start()
    return agent


def _raw_register(address, name, epoch=1):
    """Register a host the hard way: a bare socket that never heartbeats.
    Returns ``(sock, installs)`` — the query ids whose INSTALL pushes
    arrived before the post-hello SYNC (a rejoin mid-span replays them)."""
    sock = socket.create_connection(address, timeout=5.0)
    sock.settimeout(5.0)
    sock.sendall(
        encode_message_frame(
            MsgType.AGENT_HELLO,
            {
                "host": name,
                "epoch": epoch,
                "services": ["Frontends"],
                "datacenter": "dc1",
                "schemas": [PV_SCHEMA_PAYLOAD],
            },
        )
    )
    frame = recv_frame(sock)
    assert frame is not None and frame[0] == MsgType.HELLO_OK
    installs = []
    while True:
        frame = recv_frame(sock)
        assert frame is not None, f"{name}: daemon closed before SYNC"
        if frame[0] == MsgType.SYNC:
            break
        assert frame[0] == MsgType.INSTALL
        installs.append(decode_message(frame[1])["query_id"])
    return sock, installs


def _drain_frames(sock, window=0.2):
    """Read whatever frames arrive on *sock* within *window* seconds."""
    frames = []
    sock.settimeout(window)
    try:
        while True:
            frame = recv_frame(sock)
            if frame is None:
                break
            frames.append(frame[0])
    except (TimeoutError, socket.timeout):
        pass
    return frames


def _inject_quarantine(address, host, query_id):
    """What a governor quarantine looks like on the wire: the host's
    final flush carries the structured reason.  Injecting it straight on
    a data channel makes the abort trigger deterministic — the governor
    ladder itself is pinned by tests/core/test_governor.py."""
    batch = EventBatch(
        host=host, query_id=query_id, events=[],
        quarantined="impact-budget-exceeded: injected by test",
    )
    buf = bytearray()
    encode_batch_frame_into(buf, batch)
    with socket.create_connection(address, timeout=5.0) as sock:
        sock.settimeout(5.0)
        sock.sendall(encode_message_frame(MsgType.DATA_HELLO, {"host": host}))
        sock.sendall(bytes(buf))
        # The PONG barrier proves the shard workers ingested the batch.
        sock.sendall(encode_message_frame(MsgType.PING, {"token": 1}))
        frame = recv_frame(sock)
        assert frame is not None and frame[0] == MsgType.PONG


class TestCanaryWidening:
    def test_rollout_widens_to_completion_over_healthy_canaries(self):
        harness = DaemonHarness().start()
        agents, ctl = [], ControlClient(harness.address)
        try:
            agents = [_agent(harness, f"web-{i}") for i in range(5)]
            handle = ctl.submit(
                QUERY,
                rollout={"canary_hosts": 1, "widen_factor": 2.0,
                         "bake_intervals": 2},
            )
            qid = handle["query_id"]
            ro = handle["rollout"]
            assert ro["state"] == "canary" and ro["stage"] == 0
            assert len(ro["installed"]) == 1
            assert sorted(ro["order"]) == [f"web-{i}" for i in range(5)]
            assert handle["targeted_hosts"] == ro["installed"]

            assert wait_for(
                lambda: ctl.stats()["rollouts"].get(qid, {}).get("state")
                == "complete",
                timeout=10.0,
            )
            final = ctl.stats()["rollouts"][qid]
            # Geometric widening over 5 hosts: 1 -> 2 -> 4 -> 5.
            assert final["stage"] == 3
            assert final["abort"] is None
            # Install order is exactly the rendezvous rank order.
            assert final["installed"] == final["order"] == ro["order"]
            for agent in agents:
                assert wait_for(lambda a=agent: qid in a.installed_query_ids)
            # Conservation: one effective install per host, no replays.
            assert [a.installs_applied for a in agents] == [1] * 5
        finally:
            for agent in agents:
                agent.close()
            ctl.close()
            harness.stop()


class TestCanaryAbort:
    def test_quarantined_canary_aborts_with_zero_installs_elsewhere(self):
        """The E2E acceptance story: a hot query canaries onto 2 of 20
        registered agents; one canary's governor quarantines it; the
        rollout auto-aborts with the canaries uninstalled and not one
        INSTALL ever reaching the other 18 hosts."""
        harness = DaemonHarness().start()
        socks, ctl = {}, ControlClient(harness.address)
        try:
            for i in range(20):
                sock, installs = _raw_register(harness.address, f"raw-{i:02d}")
                assert installs == []
                socks[f"raw-{i:02d}"] = sock

            handle = ctl.submit(
                QUERY,
                rollout={"canary_hosts": 2, "widen_factor": 2.0,
                         "bake_intervals": 10_000},  # bake forever: no widen
            )
            qid = handle["query_id"]
            canaries = handle["rollout"]["installed"]
            assert len(canaries) == 2
            assert len(handle["rollout"]["order"]) == 20
            bystanders = [n for n in socks if n not in canaries]

            # The canaries (and only they) got the INSTALL push.
            for name in canaries:
                assert MsgType.INSTALL in _drain_frames(socks[name], 1.0)

            _inject_quarantine(harness.address, canaries[0], qid)
            assert wait_for(
                lambda: ctl.stats()["rollouts"].get(qid, {}).get("state")
                == "aborted",
                timeout=5.0,
            )

            # STATS carries the structured abort and the frozen placement.
            stats = ctl.stats()
            ro = stats["rollouts"][qid]
            assert ro["abort"]["reason"] == "canary-quarantined"
            assert ro["abort"]["host"] == canaries[0]
            assert ro["abort"]["stage"] == 0
            assert ro["installed"] == canaries
            assert sorted(stats["queries"][qid]["targeted"]) == sorted(canaries)

            # ... and POLL surfaces the same abort to the troubleshooter.
            results = ctl.poll(qid)
            assert results.rollout["state"] == "aborted"
            assert results.rollout["abort"]["reason"] == "canary-quarantined"

            # The canaries were uninstalled; the other 18 heard *nothing*.
            for name in canaries:
                assert MsgType.UNINSTALL in _drain_frames(socks[name], 1.0)
            for name in bystanders:
                assert MsgType.INSTALL not in _drain_frames(socks[name], 0.1)
        finally:
            for sock in socks.values():
                sock.close()
            ctl.close()
            harness.stop()


class TestRecoveryLateJoin:
    def test_recovered_query_stays_pending_then_installs_on_late_join(
        self, tmp_path
    ):
        """A journalled query whose hosts never came back resolves to
        zero live hosts on recovery; it must stay pending (running, all
        delivery ``never-seen``) and install the moment a matching agent
        registers — even one the crashed daemon never met."""
        journal = str(tmp_path / "scrubd.journal")
        first = DaemonHarness(journal_path=journal).start()
        ctl = ControlClient(first.address)
        agent = _agent(first, "web-0", reconnect=False)
        try:
            qid = ctl.submit(QUERY)["query_id"]
            assert wait_for(lambda: qid in agent.installed_query_ids)
        finally:
            agent.close()
            ctl.close()
            first.stop()

        second = DaemonHarness(journal_path=journal).start()
        ctl2 = ControlClient(second.address)
        late = None
        try:
            stats = ctl2.stats()
            assert qid in stats["running"]
            assert stats["hosts"] == []
            assert stats["queries"][qid]["delivery"] == {"web-0": "never-seen"}

            late = _agent(second, "web-9", reconnect=False)
            assert wait_for(lambda: qid in late.installed_query_ids, timeout=5.0)
            assert late.installs_applied == 1
            stats = ctl2.stats()
            assert "web-9" in stats["queries"][qid]["targeted"]
            assert stats["queries"][qid]["delivery"]["web-9"] == "connected"
        finally:
            if late is not None:
                late.close()
            ctl2.close()
            second.stop()


class TestStaleAgeOut:
    def test_partitioned_host_ages_out_as_stale_then_rejoins_with_epoch_bump(
        self,
    ):
        """The stale age-out acceptance story: a host silent past the
        (lease-derived) age-out threshold leaves WindowCoverage as
        ``missing: stale`` — a named state, not silently widened bounds —
        and a later re-registration with a bumped epoch rejoins cleanly
        while the other hosts' membership is untouched."""
        harness = DaemonHarness(
            lease_seconds=0.5, grace_seconds=0.5, tick_interval=0.05
        ).start()
        ctl = ControlClient(harness.address)
        agent = _agent(harness, "web-0")
        raw_sock = raw_rejoin = None
        try:
            stale_after = ctl.stats()["stale_after"]
            assert stale_after == 1.0  # one clock: 2x the 0.5s lease

            raw_sock, _ = _raw_register(harness.address, "raw-1", epoch=1)
            qid = ctl.submit(QUERY_1S)["query_id"]
            assert wait_for(lambda: qid in agent.installed_query_ids)
            web0_epoch = agent.epoch

            # raw-1 never heartbeats: lease expiry, then the age-out.
            def fleet_state(name):
                rows = {r["host"]: r for r in ctl.stats()["fleet"]}
                return rows.get(name, {}).get("state")

            assert wait_for(lambda: fleet_state("raw-1") == "stale", timeout=5.0)
            stats = ctl.stats()
            assert stats["queries"][qid]["delivery"]["raw-1"] == "stale"
            assert fleet_state("web-0") == "live"

            # Events logged *after* the age-out land in a window that can
            # only close after it — so its coverage must name the state.
            t0 = time.time()
            for rid in range(4):
                agent.log("pv", url="/a", latency_ms=1.0, request_id=rid,
                          timestamp=t0)
            assert agent.drain(10.0)

            # The window closing after the age-out names the state.
            def stale_window():
                for w in ctl.poll(qid).windows:
                    if w.coverage and w.coverage.missing.get("raw-1") == "stale":
                        return w
                return None

            assert wait_for(lambda: stale_window() is not None, timeout=10.0)
            window = stale_window()
            assert window.coverage.reporting == ("web-0",)
            assert window.degraded

            # Rejoin with a bumped epoch: HELLO_OK, INSTALL replay, live.
            raw_rejoin, installs = _raw_register(
                harness.address, "raw-1", epoch=2
            )
            assert installs == [qid]
            assert wait_for(lambda: fleet_state("raw-1") == "live", timeout=5.0)
            rows = {r["host"]: r for r in ctl.stats()["fleet"]}
            assert rows["raw-1"]["epoch"] == 2
            assert ctl.stats()["queries"][qid]["delivery"]["raw-1"] == "connected"
            # The bystander's session was untouched by the churn.
            assert rows["web-0"]["state"] == "live"
            assert rows["web-0"]["epoch"] == web0_epoch
        finally:
            for sock in (raw_sock, raw_rejoin):
                if sock is not None:
                    sock.close()
            agent.close()
            ctl.close()
            harness.stop()
